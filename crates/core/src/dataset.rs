//! The dataset: flattened entity rows extracted from a simulation run
//! (optionally restricted to a time range or a selection).
//!
//! This is the root of the paper's entity tree (Fig. 2a): one table per
//! entity kind, each row exposing its attributes/metrics via [`Field`].
//!
//! Datasets are constructed through [`DataSetBuilder`] (time-range
//! restriction, terminal brushing and idle filtering composed in one
//! place); the per-kind **field tables** ([`FieldCol`]) are the single
//! source of truth tying a [`Field`] to its row accessor, so
//! [`DataSet::value`], [`DataSet::has_field`] and the columnar re-backing
//! in [`crate::columnar`] can never disagree about which fields a kind
//! carries.

use crate::entity::{EntityKind, Field};
use hrviz_network::{LinkRecord, RunData, TerminalRecord, NO_JOB};
use hrviz_pdes::SimTime;
use std::collections::HashSet;

/// A router row.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RouterRow {
    /// Router id.
    pub router: u32,
    /// Group.
    pub group: u32,
    /// Rank within group.
    pub rank: u32,
    /// Dominant job among attached terminals (proxy index when none).
    pub job: u32,
    /// Outgoing global-link bytes.
    pub global_traffic: f64,
    /// Outgoing global-link saturation ns.
    pub global_sat: f64,
    /// Outgoing local-link bytes.
    pub local_traffic: f64,
    /// Outgoing local-link saturation ns.
    pub local_sat: f64,
}

/// A directed link row (local or global).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkRow {
    /// Source router id.
    pub src_router: u32,
    /// Source group.
    pub src_group: u32,
    /// Source rank.
    pub src_rank: u32,
    /// Source class-local port.
    pub src_port: u32,
    /// Destination router id.
    pub dst_router: u32,
    /// Destination group.
    pub dst_group: u32,
    /// Destination rank.
    pub dst_rank: u32,
    /// Destination class-local port.
    pub dst_port: u32,
    /// Source-side job (router-dominant).
    pub src_job: u32,
    /// Destination-side job.
    pub dst_job: u32,
    /// Bytes carried.
    pub traffic: f64,
    /// Saturation ns.
    pub sat: f64,
}

/// A terminal row.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TerminalRow {
    /// Terminal id.
    pub terminal: u32,
    /// Owning router.
    pub router: u32,
    /// Group.
    pub group: u32,
    /// Router rank.
    pub rank: u32,
    /// Port on the router.
    pub port: u32,
    /// Job (proxy index when idle).
    pub job: u32,
    /// Bytes injected.
    pub data_size: f64,
    /// Bytes received.
    pub recv_bytes: f64,
    /// Injection busy ns.
    pub busy: f64,
    /// Terminal-link saturation ns.
    pub sat: f64,
    /// Packets received.
    pub packets_finished: f64,
    /// Packets sent.
    pub packets_sent: f64,
    /// Mean packet latency ns.
    pub avg_latency: f64,
    /// Mean hops.
    pub avg_hops: f64,
}

/// One column of an entity table: the field, how to read it from a row,
/// and — for *stored* fields — how to write it back. Derived fields
/// (aliases and roll-ups such as [`Field::TotalTraffic`]) carry no setter
/// and are recomputed from stored columns, never persisted.
pub struct FieldCol<R: 'static> {
    /// The field this column exposes.
    pub field: Field,
    /// Read the field from a row.
    pub get: fn(&R) -> f64,
    /// Write the field back into a row (`None` for derived fields).
    pub set: Option<fn(&mut R, f64)>,
}

/// The router field table (single source of truth; see module docs).
pub const ROUTER_COLS: &[FieldCol<RouterRow>] = &[
    FieldCol {
        field: Field::GroupId,
        get: |r| r.group as f64,
        set: Some(|r, v| r.group = v as u32),
    },
    FieldCol {
        field: Field::RouterId,
        get: |r| r.router as f64,
        set: Some(|r, v| r.router = v as u32),
    },
    FieldCol {
        field: Field::RouterRank,
        get: |r| r.rank as f64,
        set: Some(|r, v| r.rank = v as u32),
    },
    FieldCol { field: Field::Workload, get: |r| r.job as f64, set: Some(|r, v| r.job = v as u32) },
    FieldCol {
        field: Field::GlobalTraffic,
        get: |r| r.global_traffic,
        set: Some(|r, v| r.global_traffic = v),
    },
    FieldCol {
        field: Field::GlobalSatTime,
        get: |r| r.global_sat,
        set: Some(|r, v| r.global_sat = v),
    },
    FieldCol {
        field: Field::LocalTraffic,
        get: |r| r.local_traffic,
        set: Some(|r, v| r.local_traffic = v),
    },
    FieldCol {
        field: Field::LocalSatTime,
        get: |r| r.local_sat,
        set: Some(|r, v| r.local_sat = v),
    },
    FieldCol { field: Field::TotalTraffic, get: |r| r.global_traffic + r.local_traffic, set: None },
    FieldCol { field: Field::TotalSatTime, get: |r| r.global_sat + r.local_sat, set: None },
    FieldCol { field: Field::Traffic, get: |r| r.global_traffic + r.local_traffic, set: None },
    FieldCol { field: Field::SatTime, get: |r| r.global_sat + r.local_sat, set: None },
];

/// The link field table (shared by local and global links).
pub const LINK_COLS: &[FieldCol<LinkRow>] = &[
    FieldCol {
        field: Field::GroupId,
        get: |l| l.src_group as f64,
        set: Some(|l, v| l.src_group = v as u32),
    },
    FieldCol {
        field: Field::RouterId,
        get: |l| l.src_router as f64,
        set: Some(|l, v| l.src_router = v as u32),
    },
    FieldCol {
        field: Field::RouterRank,
        get: |l| l.src_rank as f64,
        set: Some(|l, v| l.src_rank = v as u32),
    },
    FieldCol {
        field: Field::RouterPort,
        get: |l| l.src_port as f64,
        set: Some(|l, v| l.src_port = v as u32),
    },
    FieldCol {
        field: Field::Workload,
        get: |l| l.src_job as f64,
        set: Some(|l, v| l.src_job = v as u32),
    },
    FieldCol {
        field: Field::DstGroupId,
        get: |l| l.dst_group as f64,
        set: Some(|l, v| l.dst_group = v as u32),
    },
    FieldCol {
        field: Field::DstRouterId,
        get: |l| l.dst_router as f64,
        set: Some(|l, v| l.dst_router = v as u32),
    },
    FieldCol {
        field: Field::DstRouterRank,
        get: |l| l.dst_rank as f64,
        set: Some(|l, v| l.dst_rank = v as u32),
    },
    FieldCol {
        field: Field::DstRouterPort,
        get: |l| l.dst_port as f64,
        set: Some(|l, v| l.dst_port = v as u32),
    },
    FieldCol {
        field: Field::DstWorkload,
        get: |l| l.dst_job as f64,
        set: Some(|l, v| l.dst_job = v as u32),
    },
    FieldCol { field: Field::Traffic, get: |l| l.traffic, set: Some(|l, v| l.traffic = v) },
    FieldCol { field: Field::SatTime, get: |l| l.sat, set: Some(|l, v| l.sat = v) },
];

/// The terminal field table.
pub const TERMINAL_COLS: &[FieldCol<TerminalRow>] = &[
    FieldCol {
        field: Field::GroupId,
        get: |t| t.group as f64,
        set: Some(|t, v| t.group = v as u32),
    },
    FieldCol {
        field: Field::RouterId,
        get: |t| t.router as f64,
        set: Some(|t, v| t.router = v as u32),
    },
    FieldCol {
        field: Field::RouterRank,
        get: |t| t.rank as f64,
        set: Some(|t, v| t.rank = v as u32),
    },
    FieldCol {
        field: Field::RouterPort,
        get: |t| t.port as f64,
        set: Some(|t, v| t.port = v as u32),
    },
    FieldCol {
        field: Field::TerminalId,
        get: |t| t.terminal as f64,
        set: Some(|t, v| t.terminal = v as u32),
    },
    FieldCol { field: Field::Workload, get: |t| t.job as f64, set: Some(|t, v| t.job = v as u32) },
    FieldCol { field: Field::DataSize, get: |t| t.data_size, set: Some(|t, v| t.data_size = v) },
    FieldCol { field: Field::Traffic, get: |t| t.data_size, set: None },
    FieldCol { field: Field::SatTime, get: |t| t.sat, set: Some(|t, v| t.sat = v) },
    FieldCol { field: Field::RecvBytes, get: |t| t.recv_bytes, set: Some(|t, v| t.recv_bytes = v) },
    FieldCol { field: Field::BusyTime, get: |t| t.busy, set: Some(|t, v| t.busy = v) },
    FieldCol {
        field: Field::PacketsFinished,
        get: |t| t.packets_finished,
        set: Some(|t, v| t.packets_finished = v),
    },
    FieldCol {
        field: Field::PacketsSent,
        get: |t| t.packets_sent,
        set: Some(|t, v| t.packets_sent = v),
    },
    FieldCol {
        field: Field::AvgLatency,
        get: |t| t.avg_latency,
        set: Some(|t, v| t.avg_latency = v),
    },
    FieldCol { field: Field::AvgHops, get: |t| t.avg_hops, set: Some(|t, v| t.avg_hops = v) },
];

fn col_of<R>(cols: &'static [FieldCol<R>], kind: EntityKind, field: Field) -> fn(&R) -> f64 {
    match cols.iter().find(|c| c.field == field) {
        Some(c) => c.get,
        None => panic!("{kind} rows have no field {field}"),
    }
}

/// The flattened dataset the analytics operate on.
#[derive(Clone, Debug, Default)]
pub struct DataSet {
    /// Job names; the index one past the end is the idle/"proxy" class.
    pub jobs: Vec<String>,
    /// Router rows.
    pub routers: Vec<RouterRow>,
    /// Local-link rows.
    pub local_links: Vec<LinkRow>,
    /// Global-link rows.
    pub global_links: Vec<LinkRow>,
    /// Terminal rows.
    pub terminals: Vec<TerminalRow>,
    /// The time range this dataset covers (whole run when `None`).
    pub time_range: Option<(SimTime, SimTime)>,
}

fn ranged(v: u64, bins: &Option<hrviz_network::Bins>, range: Option<(SimTime, SimTime)>) -> f64 {
    match (range, bins) {
        (Some((s, e)), Some(b)) => b.sum_range(s, e) as f64,
        _ => v as f64,
    }
}

/// A borrowed terminal-brushing predicate (see [`DataSetBuilder::brush`]).
type BrushPredicate<'a> = Box<dyn Fn(&TerminalRow) -> bool + 'a>;

/// Builder for [`DataSet`]s: the one construction path combining whole-run
/// extraction, time-range restriction, terminal brushing (§IV-C) and idle
/// filtering (§V-C).
///
/// ```
/// # use hrviz_core::DataSet;
/// # use hrviz_network::{DragonflyConfig, NetworkSpec, Simulation};
/// # let run = Simulation::new(NetworkSpec::new(DragonflyConfig::canonical(2))).run();
/// let ds = DataSet::builder(&run).drop_idle().build();
/// ```
pub struct DataSetBuilder<'a> {
    run: &'a RunData,
    range: Option<(SimTime, SimTime)>,
    brush: Option<BrushPredicate<'a>>,
    drop_idle: bool,
}

impl<'a> DataSetBuilder<'a> {
    /// Restrict to `[start, end)`. Requires the run to have been sampled
    /// ([`hrviz_network::NetworkSpec::with_sampling`]); metrics without
    /// bins fall back to whole-run values.
    pub fn range(mut self, start: SimTime, end: SimTime) -> Self {
        self.range = Some((start, end));
        self
    }

    /// Keep only terminals satisfying `pred` plus the links touching a
    /// router that hosts a selected terminal (interactive brushing).
    pub fn brush(mut self, pred: impl Fn(&TerminalRow) -> bool + 'a) -> Self {
        self.brush = Some(Box::new(pred));
        self
    }

    /// Drop idle terminals (the paper filters unused terminals out when a
    /// job is smaller than the machine).
    pub fn drop_idle(mut self) -> Self {
        self.drop_idle = true;
        self
    }

    /// Materialize the dataset.
    pub fn build(self) -> DataSet {
        let ds = DataSet::extract(self.run, self.range);
        let proxy = ds.jobs.len() as u32;
        match (self.brush, self.drop_idle) {
            (Some(pred), true) => ds.filter_terminals(|t| t.job != proxy && pred(t)),
            (Some(pred), false) => ds.filter_terminals(pred),
            (None, true) => ds.filter_terminals(|t| t.job != proxy),
            (None, false) => ds,
        }
    }
}

impl DataSet {
    /// Start building a dataset from a run. The builder's range / brush /
    /// drop-idle steps are the only extraction path — the old per-variant
    /// constructors are gone.
    pub fn builder(run: &RunData) -> DataSetBuilder<'_> {
        DataSetBuilder { run, range: None, brush: None, drop_idle: false }
    }

    /// Build directly from entity tables. This is how non-Dragonfly
    /// substrates (e.g. the Fat-Tree model, one of the paper's named
    /// future-work targets) feed the analytics: any topology that can
    /// express itself as groups/ranks/ports produces the same views.
    pub fn from_tables(
        jobs: Vec<String>,
        routers: Vec<RouterRow>,
        local_links: Vec<LinkRow>,
        global_links: Vec<LinkRow>,
        terminals: Vec<TerminalRow>,
    ) -> DataSet {
        DataSet { jobs, routers, local_links, global_links, terminals, time_range: None }
    }

    fn extract(run: &RunData, range: Option<(SimTime, SimTime)>) -> DataSet {
        let topo = run.topology();
        let num_jobs = run.jobs.len() as u32;
        let proxy = num_jobs;

        // Dominant job per router (most attached terminals; proxy if none).
        let mut router_job = vec![proxy; run.routers.len()];
        for (r, counts) in router_job.iter_mut().enumerate() {
            let mut tally = vec![0u32; num_jobs as usize];
            let p = run.spec.topology.terminals_per_router;
            for k in 0..p {
                let t = topo.terminal_of(hrviz_network::RouterId(r as u32), k);
                let job = run.terminals[t.0 as usize].job;
                if job != NO_JOB {
                    tally[job as usize] += 1;
                }
            }
            if let Some((best, &n)) = tally.iter().enumerate().max_by_key(|(_, &n)| n) {
                if n > 0 {
                    *counts = best as u32;
                }
            }
        }

        let link_row = |l: &LinkRecord| LinkRow {
            src_router: l.src_router.0,
            src_group: topo.group_of_router(l.src_router).0,
            src_rank: topo.rank_of_router(l.src_router),
            src_port: l.src_port,
            dst_router: l.dst_router.0,
            dst_group: topo.group_of_router(l.dst_router).0,
            dst_rank: topo.rank_of_router(l.dst_router),
            dst_port: l.dst_port,
            src_job: router_job[l.src_router.0 as usize],
            dst_job: router_job[l.dst_router.0 as usize],
            traffic: ranged(l.traffic, &l.traffic_bins, range),
            sat: ranged(l.sat_ns, &l.sat_bins, range),
        };
        let local_links: Vec<LinkRow> = run.local_links.iter().map(link_row).collect();
        let global_links: Vec<LinkRow> = run.global_links.iter().map(link_row).collect();

        let term_row = |t: &TerminalRecord| {
            let (latency, hops) = match range {
                Some((s, e)) => {
                    let count = t
                        .count_bins
                        .as_ref()
                        .map(|b| b.sum_range(s, e))
                        .unwrap_or(t.packets_finished);
                    let lat = t.latency_bins.as_ref().map(|b| b.sum_range(s, e) as f64);
                    let hop = t.hops_bins.as_ref().map(|b| b.sum_range(s, e) as f64);
                    match (lat, hop) {
                        (Some(l), Some(h)) if count > 0 => (l / count as f64, h / count as f64),
                        (Some(_), Some(_)) => (0.0, 0.0),
                        _ => (t.avg_latency_ns, t.avg_hops),
                    }
                }
                None => (t.avg_latency_ns, t.avg_hops),
            };
            let packets_in_range = match range {
                Some((s, e)) => t
                    .count_bins
                    .as_ref()
                    .map(|b| b.sum_range(s, e) as f64)
                    .unwrap_or(t.packets_finished as f64),
                None => t.packets_finished as f64,
            };
            TerminalRow {
                terminal: t.terminal.0,
                router: t.router.0,
                group: topo.group_of_router(t.router).0,
                rank: topo.rank_of_router(t.router),
                port: t.port,
                job: if t.job == NO_JOB { proxy } else { t.job as u32 },
                data_size: ranged(t.data_bytes, &t.traffic_bins, range),
                recv_bytes: t.recv_bytes as f64,
                busy: t.busy_ns as f64,
                sat: ranged(t.sat_ns, &t.sat_bins, range),
                packets_finished: packets_in_range,
                packets_sent: t.packets_sent as f64,
                avg_latency: latency,
                avg_hops: hops,
            }
        };
        let terminals: Vec<TerminalRow> = run.terminals.iter().map(term_row).collect();

        // Router roll-ups recomputed from (possibly ranged) link rows so
        // they stay consistent with the links shown.
        let mut routers: Vec<RouterRow> = run
            .routers
            .iter()
            .map(|r| RouterRow {
                router: r.router.0,
                group: r.group,
                rank: r.rank,
                job: router_job[r.router.0 as usize],
                global_traffic: 0.0,
                global_sat: 0.0,
                local_traffic: 0.0,
                local_sat: 0.0,
            })
            .collect();
        for l in &local_links {
            let r = &mut routers[l.src_router as usize];
            r.local_traffic += l.traffic;
            r.local_sat += l.sat;
        }
        for l in &global_links {
            let r = &mut routers[l.src_router as usize];
            r.global_traffic += l.traffic;
            r.global_sat += l.sat;
        }

        DataSet {
            jobs: run.jobs.iter().map(|j| j.name.clone()).collect(),
            routers,
            local_links,
            global_links,
            terminals,
            time_range: range,
        }
    }

    /// Display label for a job value produced by [`Field::Workload`].
    pub fn job_label(&self, job: u32) -> &str {
        self.jobs.get(job as usize).map(String::as_str).unwrap_or("idle/proxy")
    }

    /// Number of rows of a kind.
    pub fn len(&self, kind: EntityKind) -> usize {
        match kind {
            EntityKind::Router => self.routers.len(),
            EntityKind::LocalLink => self.local_links.len(),
            EntityKind::GlobalLink => self.global_links.len(),
            EntityKind::Terminal => self.terminals.len(),
        }
    }

    /// `true` when the dataset has no rows at all.
    pub fn is_empty(&self) -> bool {
        EntityKind::ALL.iter().all(|&k| self.len(k) == 0)
    }

    /// Field value of row `idx` of `kind`, resolved through the per-kind
    /// field table. Panics on fields the entity does not carry (script
    /// validation rejects those earlier).
    pub fn value(&self, kind: EntityKind, idx: usize, field: Field) -> f64 {
        match kind {
            EntityKind::Router => col_of(ROUTER_COLS, kind, field)(&self.routers[idx]),
            EntityKind::LocalLink => col_of(LINK_COLS, kind, field)(&self.local_links[idx]),
            EntityKind::GlobalLink => col_of(LINK_COLS, kind, field)(&self.global_links[idx]),
            EntityKind::Terminal => col_of(TERMINAL_COLS, kind, field)(&self.terminals[idx]),
        }
    }

    /// Whether `kind` rows carry `field` — answered from the same field
    /// table [`DataSet::value`] dispatches through, so the two can never
    /// desync when a field is added.
    pub fn has_field(kind: EntityKind, field: Field) -> bool {
        match kind {
            EntityKind::Router => ROUTER_COLS.iter().any(|c| c.field == field),
            EntityKind::LocalLink | EntityKind::GlobalLink => {
                LINK_COLS.iter().any(|c| c.field == field)
            }
            EntityKind::Terminal => TERMINAL_COLS.iter().any(|c| c.field == field),
        }
    }

    /// Every field `kind` rows carry, in field-table order.
    pub fn fields_of(kind: EntityKind) -> Vec<Field> {
        match kind {
            EntityKind::Router => ROUTER_COLS.iter().map(|c| c.field).collect(),
            EntityKind::LocalLink | EntityKind::GlobalLink => {
                LINK_COLS.iter().map(|c| c.field).collect()
            }
            EntityKind::Terminal => TERMINAL_COLS.iter().map(|c| c.field).collect(),
        }
    }

    /// Restrict to terminals satisfying `pred`, keeping links that touch a
    /// router hosting a selected terminal (backs [`DataSetBuilder::brush`]
    /// and [`DataSetBuilder::drop_idle`]).
    pub(crate) fn filter_terminals(&self, pred: impl Fn(&TerminalRow) -> bool) -> DataSet {
        let terminals: Vec<TerminalRow> =
            self.terminals.iter().filter(|t| pred(t)).copied().collect();
        let routers_kept: HashSet<u32> = terminals.iter().map(|t| t.router).collect();
        let keep_link = |l: &&LinkRow| {
            routers_kept.contains(&l.src_router) || routers_kept.contains(&l.dst_router)
        };
        DataSet {
            jobs: self.jobs.clone(),
            routers: self
                .routers
                .iter()
                .filter(|r| routers_kept.contains(&r.router))
                .copied()
                .collect(),
            local_links: self.local_links.iter().filter(keep_link).copied().collect(),
            global_links: self.global_links.iter().filter(keep_link).copied().collect(),
            terminals,
            time_range: self.time_range,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_network::{
        DragonflyConfig, JobMeta, MsgInjection, NetworkSpec, Simulation, TerminalId,
    };

    fn toy_run(sampling: bool) -> RunData {
        let mut spec = NetworkSpec::new(DragonflyConfig::canonical(2));
        if sampling {
            spec = spec.with_sampling(SimTime::micros(1), 512);
        }
        let mut sim = Simulation::new(spec);
        let job = sim
            .add_job(JobMeta { name: "toy".into(), terminals: (0..16).map(TerminalId).collect() });
        for src in 0..16u32 {
            sim.inject(MsgInjection {
                time: SimTime::ZERO,
                src: TerminalId(src),
                dst: TerminalId((src + 8) % 16),
                bytes: 8192,
                job,
            });
        }
        sim.run()
    }

    #[test]
    fn dataset_row_counts_match_run() {
        let run = toy_run(false);
        let ds = DataSet::builder(&run).build();
        assert_eq!(ds.terminals.len(), run.terminals.len());
        assert_eq!(ds.local_links.len(), run.local_links.len());
        assert_eq!(ds.global_links.len(), run.global_links.len());
        assert_eq!(ds.routers.len(), run.routers.len());
        assert_eq!(ds.len(EntityKind::Terminal), 72);
        assert!(!ds.is_empty());
    }

    #[test]
    fn values_are_consistent_across_entities() {
        let run = toy_run(false);
        let ds = DataSet::builder(&run).build();
        // Router local traffic equals the sum of its local-link rows.
        let r0_local: f64 =
            ds.local_links.iter().filter(|l| l.src_router == 0).map(|l| l.traffic).sum();
        assert_eq!(ds.value(EntityKind::Router, 0, Field::LocalTraffic), r0_local);
        // Terminal data_size matches the injected volume.
        let injected: f64 =
            (0..16).map(|i| ds.value(EntityKind::Terminal, i, Field::DataSize)).sum();
        assert_eq!(injected, 16.0 * 8192.0);
    }

    #[test]
    fn job_stamping_and_proxy_label() {
        let run = toy_run(false);
        let ds = DataSet::builder(&run).build();
        assert_eq!(ds.terminals[0].job, 0);
        assert_eq!(ds.terminals[40].job, 1); // proxy index
        assert_eq!(ds.job_label(0), "toy");
        assert_eq!(ds.job_label(1), "idle/proxy");
        // Routers hosting job terminals get the job; far routers are proxy.
        assert_eq!(ds.routers[0].job, 0);
        assert_eq!(ds.routers[20].job, 1);
    }

    #[test]
    fn time_range_restriction_reduces_traffic() {
        let run = toy_run(true);
        let full = DataSet::builder(&run).build();
        let early = DataSet::builder(&run).range(SimTime::ZERO, SimTime::micros(1)).build();
        let total_full: f64 = full.terminals.iter().map(|t| t.data_size).sum();
        let total_early: f64 = early.terminals.iter().map(|t| t.data_size).sum();
        assert!(total_early <= total_full);
        assert!(total_early > 0.0, "injections happen at t=0");
        // The full range via bins reproduces the whole-run totals.
        let all = DataSet::builder(&run).range(SimTime::ZERO, SimTime::millis(100)).build();
        let total_all: f64 = all.terminals.iter().map(|t| t.data_size).sum();
        assert_eq!(total_all, total_full);
    }

    #[test]
    fn brushing_keeps_touching_links() {
        let run = toy_run(false);
        let brushed = DataSet::builder(&run).brush(|t| t.terminal < 2).build();
        assert_eq!(brushed.terminals.len(), 2);
        assert!(brushed.local_links.iter().all(|l| l.src_router == 0 || l.dst_router == 0));
        assert!(!brushed.local_links.is_empty());
        assert_eq!(brushed.routers.len(), 1);
    }

    #[test]
    fn idle_filtering_drops_unused_terminals() {
        let run = toy_run(false);
        let ds = DataSet::builder(&run).drop_idle().build();
        assert_eq!(ds.terminals.len(), 16);
        // Brushing and idle filtering compose in one pass.
        let both = DataSet::builder(&run).brush(|t| t.terminal < 4).drop_idle().build();
        assert_eq!(both.terminals.len(), 4);
    }

    #[test]
    fn has_field_matrix() {
        assert!(DataSet::has_field(EntityKind::Terminal, Field::AvgLatency));
        assert!(!DataSet::has_field(EntityKind::Router, Field::AvgLatency));
        assert!(DataSet::has_field(EntityKind::GlobalLink, Field::DstGroupId));
        assert!(!DataSet::has_field(EntityKind::Terminal, Field::DstGroupId));
        assert!(DataSet::has_field(EntityKind::Router, Field::TotalSatTime));
    }

    #[test]
    fn field_table_is_the_single_source_of_truth() {
        // Every field the table lists is readable through value(); derived
        // fields (no setter) are consistent with their stored parts.
        let run = toy_run(false);
        let ds = DataSet::builder(&run).build();
        for kind in EntityKind::ALL {
            for field in DataSet::fields_of(kind) {
                assert!(DataSet::has_field(kind, field));
                let v = ds.value(kind, 0, field);
                assert!(v.is_finite(), "{kind}/{field} yields a finite value");
            }
        }
        let total = ds.value(EntityKind::Router, 0, Field::TotalTraffic);
        let parts = ds.value(EntityKind::Router, 0, Field::GlobalTraffic)
            + ds.value(EntityKind::Router, 0, Field::LocalTraffic);
        assert_eq!(total, parts);
    }

    #[test]
    #[should_panic(expected = "have no field")]
    fn wrong_field_panics() {
        let run = toy_run(false);
        let ds = DataSet::builder(&run).build();
        ds.value(EntityKind::Router, 0, Field::AvgLatency);
    }
}
