//! # hrviz-serve — the analytics stack as a long-running service
//!
//! Turns a [`RunStore`](hrviz_sweep::RunStore) + projection-view pipeline
//! into a concurrent HTTP/1.1 server, the serving layer the interactive
//! workflow of the paper implies: analysts iterate on Fig.-5 scripts
//! against stored sweep output without re-running the CLI per view.
//!
//! * `GET /runs` — manifest listing (`?state=` filters by lifecycle).
//! * `GET /runs/{id}/columns/{field}` — raw columnar slices.
//! * `GET /runs/{id}/progress` — live slice watermark, bounded
//!   long-poll via `?since=N&wait_ms=M`.
//! * `GET /runs/{id}/stream` — SSE: sealed slices replayed from
//!   `?since=`, then a live tail on a shared hub thread.
//! * `POST /views?run={id}` — script body → paged projection-graph
//!   envelope (schema 2), the legacy monolithic payload via `?schema=1`
//!   (answered with a `Deprecation` header), or SVG when
//!   `Accept: image/svg+xml`.
//! * `POST /compare?runs={a},{b}` — shared-scale comparison, same
//!   schema/paging contract.
//! * `GET /healthz`, `GET /metricsz` — liveness + hrviz-obs snapshot.
//!
//! View and compare requests parse through one typed path
//! ([`hrviz_core::ViewRequest`] + [`hrviz_core::RenderPolicy`]), shared
//! with the CLI; malformed parameters answer structured 400s naming the
//! field and a stable machine code. Paging uses signed opaque cursors
//! bound to the graph fingerprint and store generation — a mid-walk
//! generation bump answers a structured `409` rather than silently mixing
//! generations.
//!
//! Responses are deterministic, so they are cacheable by content identity:
//! `ETag = fnv1a(store generation ‖ script fingerprint ‖ run ids ‖ policy
//! ‖ page)`, with `If-None-Match` answered `304` before any store or
//! simulator work. Warm requests never re-aggregate — the body cache is
//! keyed by the same fingerprint, aggregation under it is memoized per
//! store generation through [`AggregateCache`](hrviz_core::AggregateCache),
//! and cold fills are single-flighted ([`singleflight`]): concurrent
//! identical requests elect one leader to build while the rest share its
//! result.
//!
//! The server core is a bounded worker pool ([`pool`]) with explicit load
//! shedding: a full queue answers `503` + `Retry-After` instead of growing
//! memory, a connection cap bounds sockets, per-connection read/write
//! timeouts bound slow clients, and SIGINT drains in-flight requests
//! before exit. Connections are keep-alive by default (HTTP/1.1), with a
//! per-connection request cap and the read timeout doubling as the idle
//! timeout. The request path is panic-free (enforced by hrviz-lint's
//! panic scope plus `clippy::unwrap_used`); a worker-level unwind guard
//! converts any residual panic into a `500` and a `serve/panics` counter
//! rather than a dead worker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod handlers;
pub mod http;
pub mod pool;
pub mod router;
pub mod server;
pub mod singleflight;
pub mod stream;

pub use cache::ResponseCache;
pub use handlers::App;
pub use http::{Request, Response};
pub use pool::{SubmitError, WorkerPool};
pub use router::Route;
pub use server::{install_signal_shutdown, ServeConfig, ServeReport, Server, ServerHandle};
pub use stream::StreamHub;
