//! Lock-order and blocking-under-lock analysis.
//!
//! Per function, the pass finds every lock acquisition (`.lock()`,
//! `.read()` / `.write()` with empty argument lists — the empty parens
//! discriminate `RwLock` from `io::Read`/`io::Write` — and their `try_`
//! variants), derives the *guard scope* from the token tree:
//!
//! * `let guard = m.lock()…;` — the guard lives to the end of the
//!   enclosing block, or to an explicit `drop(guard)`;
//! * `if let` / `while let` / `match` heads — the guard lives to the end
//!   of the construct's brace block;
//! * an unbound temporary (`m.lock().unwrap().field = x;`) — the guard
//!   dies at the end of the statement.
//!
//! Lock *identity* is `Type.field` for `self.…` receivers (the enclosing
//! impl type qualifies the field next to the call) and `filestem.name`
//! otherwise — precise enough to distinguish every Mutex in the
//! workspace without type inference.
//!
//! Inside a live scope the pass then flags:
//!
//! * re-acquisition of the same lock (guaranteed self-deadlock with
//!   std's non-reentrant `Mutex`) — `lock_order_cycle`;
//! * nested acquisition of a *different* lock — recorded as a directed
//!   edge for the workspace-global acquisition graph, where
//!   [`cycle_findings`] flags any cycle (the classic AB/BA inversion) —
//!   `lock_order_cycle`;
//! * blocking calls (file I/O, fsync, socket accept/connect, channel
//!   recv, `WorkerPool::submit`, sleeps) — `blocking_under_lock`. A
//!   `Condvar::wait(guard)` releases the guard it is handed, so it only
//!   fires when *another* lock is still held.
//!
//! Calls to same-file functions (`self.method()`, `helper()`,
//! `Type::assoc()`) propagate the callee's acquisitions and blocking
//! calls into the caller's scope (transitively, cycle-safe), so moving
//! the I/O one function away does not hide it. Propagation is
//! deliberately restricted to names resolvable *within the file* —
//! cross-file name matching would misattribute common method names like
//! `get` or `write`.

use crate::facts::LockEdge;
use crate::rules::Finding;
use crate::source::SourceFile;
use crate::tokens::{TokKind, TokenFile};
use std::collections::{BTreeMap, BTreeSet};

/// Methods that acquire a lock. `(name, needs_empty_args, is_try)`.
const ACQUIRES: &[(&str, bool, bool)] = &[
    ("lock", true, false),
    ("read", true, false),
    ("write", true, false),
    ("try_lock", true, true),
    ("try_read", true, true),
    ("try_write", true, true),
];

/// Method calls that block: file and socket I/O, fsync, channel receives,
/// queue submission, durable persists.
const BLOCKING_METHODS: &[(&str, &str)] = &[
    ("sync_all", "fsync"),
    ("sync_data", "fsync"),
    ("write_all", "file/socket write"),
    ("write_line", "trace write"),
    ("flush", "I/O flush"),
    ("read_exact", "file/socket read"),
    ("read_to_end", "file/socket read"),
    ("read_to_string", "file/socket read"),
    ("read_dir", "directory scan"),
    ("metadata", "file stat"),
    ("accept", "socket accept"),
    ("connect", "socket connect"),
    ("recv", "channel recv"),
    ("recv_timeout", "channel recv"),
    ("submit", "worker-pool submit"),
    ("persist", "durable persist"),
];

/// `module::fn(` style blocking calls: `(module, fn, what)`.
const BLOCKING_PATHS: &[(&str, &str, &str)] = &[
    ("fs", "metadata", "file stat"),
    ("fs", "read", "file read"),
    ("fs", "read_to_string", "file read"),
    ("fs", "read_dir", "directory scan"),
    ("fs", "write", "file write"),
    ("fs", "copy", "file copy"),
    ("fs", "rename", "file rename"),
    ("fs", "create_dir_all", "mkdir"),
    ("fs", "remove_file", "file delete"),
    ("fs", "remove_dir_all", "recursive delete"),
    ("File", "open", "file open"),
    ("File", "create", "file create"),
    ("TcpStream", "connect", "socket connect"),
    ("thread", "sleep", "sleep"),
];

/// One lock acquisition with its derived scope.
struct LockSite {
    /// `Type.field` / `filestem.name` identity.
    id: String,
    /// Token index of the acquiring method-call dot.
    tok: usize,
    line: usize,
    /// Exclusive token index where the guard dies.
    scope_end: usize,
    is_try: bool,
    /// Bound guard name (named bindings only).
    guard: Option<String>,
}

/// What a function does, for same-file call propagation.
struct FnSummary {
    /// Lock ids acquired anywhere in the body.
    acquires: Vec<String>,
    /// Blocking calls anywhere in the body: `(what, line)`.
    blocking: Vec<(String, usize)>,
    /// Same-file callees by summary key.
    calls: Vec<String>,
}

/// Per-file lock analysis: emits local findings and returns the lock
/// acquisition edges for the global cycle pass.
pub fn analyze(src: &SourceFile, tf: &TokenFile, findings: &mut Vec<Finding>) -> Vec<LockEdge> {
    let stem = file_stem(&src.path);
    let mut edges = Vec::new();

    // Pass 1: raw per-fn facts.
    let mut sites_by_fn: Vec<Vec<LockSite>> = Vec::new();
    let mut summaries: BTreeMap<String, FnSummary> = BTreeMap::new();
    let mut fn_keys: Vec<Option<String>> = Vec::new();
    for f in &tf.fns {
        let Some((open, close)) = f.body else {
            sites_by_fn.push(Vec::new());
            fn_keys.push(None);
            continue;
        };
        let sites = lock_sites(src, tf, &stem, &f.qualified, open, close);
        let blocking = blocking_sites(src, tf, open, close);
        let calls = call_sites(src, tf, &f.qualified, open, close);
        summaries.insert(
            f.qualified.clone(),
            FnSummary {
                acquires: sites.iter().map(|s| s.id.clone()).collect(),
                blocking: blocking.iter().map(|b| (b.what.clone(), b.line)).collect(),
                calls: calls.iter().map(|c| c.key.clone()).collect(),
            },
        );
        sites_by_fn.push(sites);
        fn_keys.push(Some(f.qualified.clone()));

        // Blocking-in-scope and nesting checks, direct.
        for a in sites_by_fn.last().into_iter().flatten() {
            for b in sites_by_fn.last().into_iter().flatten() {
                if b.tok <= a.tok || b.tok >= a.scope_end {
                    continue;
                }
                if b.id == a.id {
                    if !a.is_try && !b.is_try {
                        emit(
                            src,
                            "lock_order_cycle",
                            b.line,
                            format!(
                                "`{}` re-acquired while its own guard is still live: \
                                 std Mutex/RwLock are non-reentrant, this self-deadlocks",
                                a.id
                            ),
                            findings,
                        );
                    }
                } else {
                    push_edge(src, &mut edges, &a.id, &b.id, b.line);
                }
            }
            for blk in &blocking {
                if blk.tok <= a.tok || blk.tok >= a.scope_end {
                    continue;
                }
                // Condvar wait releases the guard it consumes: only flag
                // when a *different* lock is held across the wait.
                if let Some(waited) = &blk.waits_on {
                    if a.guard.as_deref() == Some(waited.as_str()) {
                        continue;
                    }
                    emit(
                        src,
                        "blocking_under_lock",
                        blk.line,
                        format!(
                            "condvar wait while `{}` is held: the wait releases only its own \
                             guard, every other waiter on `{}` stalls",
                            a.id, a.id
                        ),
                        findings,
                    );
                } else {
                    emit(
                        src,
                        "blocking_under_lock",
                        blk.line,
                        format!(
                            "{} while `{}` is held: every thread contending for the lock \
                             stalls behind this call",
                            blk.what, a.id
                        ),
                        findings,
                    );
                }
            }
        }
    }

    // Pass 2: transitive closure of the same-file call graph.
    let closed = close_summaries(&summaries);

    // Pass 3: propagate callee effects into held scopes.
    for (fi, f) in tf.fns.iter().enumerate() {
        let Some((open, close)) = f.body else { continue };
        let calls = call_sites(src, tf, &f.qualified, open, close);
        for a in &sites_by_fn[fi] {
            for c in &calls {
                if c.tok <= a.tok || c.tok >= a.scope_end {
                    continue;
                }
                let Some(eff) = closed.get(&c.key) else { continue };
                for acq in &eff.acquires {
                    // A propagated self-edge is the *caller's* guard still
                    // being the same lock — re-entry through a helper is
                    // real, but name-based resolution cannot distinguish
                    // it from a helper that locks after the caller
                    // returns; the direct check above handles the
                    // in-scope case precisely.
                    if acq != &a.id {
                        push_edge(src, &mut edges, &a.id, acq, c.line);
                    }
                }
                for (what, _line) in &eff.blocking {
                    emit(
                        src,
                        "blocking_under_lock",
                        c.line,
                        format!(
                            "call to `{}` does {} while `{}` is held: every thread \
                             contending for the lock stalls behind it",
                            c.key, what, a.id
                        ),
                        findings,
                    );
                }
            }
        }
    }

    edges.sort_by(|a, b| (a.line, &a.held, &a.acquired).cmp(&(b.line, &b.held, &b.acquired)));
    edges.dedup_by(|a, b| a.held == b.held && a.acquired == b.acquired && a.line == b.line);
    edges
}

/// The workspace-global pass: find cycles in the union acquisition graph
/// and report every non-suppressed edge that participates in one.
pub fn cycle_findings(edges: &[LockEdge]) -> Vec<Finding> {
    // Adjacency on lock ids (deterministic order).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.held).or_default().insert(&e.acquired);
        adj.entry(&e.acquired).or_default();
    }
    let scc_of = tarjan(&adj);
    // A component with ≥2 nodes (or a self-loop, which per-file analysis
    // already reported) is a deadlock-capable cycle.
    let mut cyclic: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
    for (node, &c) in &scc_of {
        cyclic.entry(c).or_default().push(node);
    }
    cyclic.retain(|_, nodes| nodes.len() >= 2);

    let mut out = Vec::new();
    for e in edges {
        if e.suppressed {
            continue;
        }
        let (Some(&ca), Some(&cb)) = (scc_of.get(e.held.as_str()), scc_of.get(e.acquired.as_str()))
        else {
            continue;
        };
        if ca != cb {
            continue;
        }
        let Some(members) = cyclic.get(&ca) else { continue };
        out.push(Finding {
            rule: "lock_order_cycle",
            file: e.file.clone(),
            line: e.line,
            snippet: e.snippet.clone(),
            message: format!(
                "acquiring `{}` while holding `{}` participates in a lock cycle {{{}}}: \
                 another thread taking the opposite order deadlocks",
                e.acquired,
                e.held,
                members.join(", ")
            ),
            baselined: false,
        });
    }
    out
}

fn push_edge(src: &SourceFile, edges: &mut Vec<LockEdge>, held: &str, acquired: &str, line: usize) {
    if src.is_test_line(line) {
        return;
    }
    edges.push(LockEdge {
        held: held.to_string(),
        acquired: acquired.to_string(),
        file: src.path.clone(),
        line,
        snippet: src.line_text(line).to_string(),
        suppressed: src.suppressed("lock_order_cycle", line),
    });
}

fn emit(
    src: &SourceFile,
    rule: &'static str,
    line: usize,
    message: String,
    out: &mut Vec<Finding>,
) {
    if src.is_test_line(line) || src.suppressed(rule, line) {
        return;
    }
    let f = Finding {
        rule,
        file: src.path.clone(),
        line,
        snippet: src.line_text(line).to_string(),
        message,
        baselined: false,
    };
    if !out.contains(&f) {
        out.push(f);
    }
}

/// Every lock acquisition in `[open, close]`, with derived scopes.
fn lock_sites(
    src: &SourceFile,
    tf: &TokenFile,
    stem: &str,
    fn_qualified: &str,
    open: usize,
    close: usize,
) -> Vec<LockSite> {
    let impl_type = fn_qualified.split("::").next().filter(|t| *t != fn_qualified);
    let mut sites = Vec::new();
    for i in open + 1..close {
        if !tf.is_method_dot(i) {
            continue;
        }
        let Some((_, needs_empty, is_try)) =
            ACQUIRES.iter().find(|(m, _, _)| tf.is_ident(src, i + 1, m)).copied()
        else {
            continue;
        };
        let Some(paren) = tf.toks.get(i + 2) else { continue };
        if paren.kind != TokKind::Open(b'(') {
            continue;
        }
        if needs_empty && tf.match_of[i + 2] != i + 3 {
            continue; // `.read(buf)` is io::Read, not RwLock
        }
        let segs = receiver_segments(src, tf, i);
        if segs.is_empty() {
            continue;
        }
        let first = segs.last().map(String::as_str).unwrap_or("");
        let field = segs.first().cloned().unwrap_or_default();
        let qualifier =
            if first == "self" { impl_type.unwrap_or(stem).to_string() } else { stem.to_string() };
        let id = format!("{qualifier}.{field}");
        let recv_start = receiver_start(tf, i, segs.len());
        let (scope_end, guard) = guard_scope(src, tf, recv_start, i, close);
        sites.push(LockSite {
            id,
            tok: i,
            line: src.line_of(tf.toks[i].start),
            scope_end,
            is_try,
            guard,
        });
    }
    sites
}

/// Walk the receiver chain backwards from the acquiring dot; returns the
/// path segments innermost-first (`self.a.b.lock()` → `[b, a, self]`).
fn receiver_segments(src: &SourceFile, tf: &TokenFile, dot: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let mut j = dot;
    loop {
        if j == 0 {
            break;
        }
        match tf.toks[j - 1].kind {
            TokKind::Ident => {
                segs.push(tf.text(src, j - 1).to_string());
                j -= 1;
                if j >= 1 && tf.is_method_dot(j - 1) {
                    j -= 1;
                } else if j >= 2 && tf.is_punct(j - 1, b':') && tf.is_punct(j - 2, b':') {
                    j -= 2;
                } else {
                    break;
                }
            }
            TokKind::Close(b')') => {
                // A call in the chain (`self.store().lock()`): hop to its
                // opening paren and keep walking for the method name.
                let m = tf.match_of[j - 1];
                if m == usize::MAX || m == 0 {
                    break;
                }
                j = m;
            }
            _ => break,
        }
    }
    segs
}

/// Token index where the receiver chain starts (approximate: `segs` path
/// segments plus their separators back from the dot).
fn receiver_start(tf: &TokenFile, dot: usize, segs: usize) -> usize {
    let mut j = dot;
    let mut remaining = segs;
    while remaining > 0 && j > 0 {
        if matches!(tf.toks[j - 1].kind, TokKind::Ident) {
            remaining -= 1;
        }
        j -= 1;
    }
    j
}

/// Scope of the guard produced by the acquisition at `dot`, and the bound
/// name if the statement names one.
fn guard_scope(
    src: &SourceFile,
    tf: &TokenFile,
    recv_start: usize,
    dot: usize,
    body_close: usize,
) -> (usize, Option<String>) {
    // Find the statement head: walk back to the previous `;`, `{` or `}`.
    let mut h = recv_start;
    while h > 0 {
        match tf.toks[h - 1].kind {
            TokKind::Punct(b';') | TokKind::Open(b'{') | TokKind::Close(b'}') => break,
            _ => h -= 1,
        }
    }
    let head_is = |w: &str| tf.is_ident(src, h, w);
    if head_is("let") {
        let guard = binding_name(src, tf, h + 1);
        match guard {
            // `let _ = …` drops immediately: treat as a temporary.
            Some(ref g) if g == "_" => (statement_end(tf, dot, body_close), None),
            guard => {
                let block = tf.enclosing_brace[dot];
                let end = if block == usize::MAX { body_close } else { tf.match_of[block] };
                let end = if end == usize::MAX { body_close } else { end };
                (drop_cutoff(src, tf, dot, end, guard.as_deref()), guard)
            }
        }
    } else if head_is("if") || head_is("while") || head_is("match") {
        // Guard bound in a conditional head lives for the construct's
        // brace block.
        let guard = (h + 1..dot)
            .find(|&k| tf.is_ident(src, k, "let"))
            .and_then(|k| binding_name(src, tf, k + 1));
        let mut k = dot;
        while k < body_close && !matches!(tf.toks[k].kind, TokKind::Open(b'{')) {
            k = match tf.toks[k].kind {
                TokKind::Open(_) => tf.after_group(k),
                _ => k + 1,
            };
        }
        let end = if k < body_close && tf.match_of[k] != usize::MAX {
            tf.match_of[k]
        } else {
            statement_end(tf, dot, body_close)
        };
        (drop_cutoff(src, tf, dot, end, guard.as_deref()), guard)
    } else {
        (statement_end(tf, dot, body_close), None)
    }
}

/// The bound identifier after `let` (skipping `mut` and one level of
/// tuple-struct pattern like `Ok(g)` / `Some(g)`).
fn binding_name(src: &SourceFile, tf: &TokenFile, mut i: usize) -> Option<String> {
    if tf.is_ident(src, i, "mut") {
        i += 1;
    }
    if !matches!(tf.toks.get(i)?.kind, TokKind::Ident) {
        return None;
    }
    if matches!(tf.toks.get(i + 1).map(|t| t.kind), Some(TokKind::Open(b'('))) {
        let mut j = i + 2;
        if tf.is_ident(src, j, "mut") {
            j += 1;
        }
        if matches!(tf.toks.get(j).map(|t| t.kind), Some(TokKind::Ident)) {
            return Some(tf.text(src, j).to_string());
        }
    }
    Some(tf.text(src, i).to_string())
}

/// First token past the statement containing `from` (the `;` at this
/// nesting level, skipping nested groups).
fn statement_end(tf: &TokenFile, from: usize, body_close: usize) -> usize {
    let mut i = from;
    while i < body_close {
        match tf.toks[i].kind {
            TokKind::Open(_) => i = tf.after_group(i),
            TokKind::Punct(b';') => return i + 1,
            TokKind::Close(_) => return i,
            _ => i += 1,
        }
    }
    body_close
}

/// Shrink a guard scope at an explicit `drop(guard)`.
fn drop_cutoff(
    src: &SourceFile,
    tf: &TokenFile,
    from: usize,
    end: usize,
    guard: Option<&str>,
) -> usize {
    let Some(g) = guard else { return end };
    for i in from..end.min(tf.toks.len().saturating_sub(3)) {
        if tf.is_ident(src, i, "drop")
            && matches!(tf.toks[i + 1].kind, TokKind::Open(b'('))
            && tf.is_ident(src, i + 2, g)
            && matches!(tf.toks[i + 3].kind, TokKind::Close(b')'))
        {
            return i;
        }
    }
    end
}

struct BlockingSite {
    tok: usize,
    line: usize,
    what: String,
    /// For condvar waits: the guard identifier handed to `wait(…)`.
    waits_on: Option<String>,
}

/// Every blocking call in `[open, close]`.
fn blocking_sites(
    src: &SourceFile,
    tf: &TokenFile,
    open: usize,
    close: usize,
) -> Vec<BlockingSite> {
    let mut out = Vec::new();
    for i in open + 1..close {
        // Method style: `.name(`.
        if tf.is_method_dot(i)
            && matches!(tf.toks.get(i + 2).map(|t| t.kind), Some(TokKind::Open(b'(')))
        {
            if let Some((_, what)) =
                BLOCKING_METHODS.iter().find(|(m, _)| tf.is_ident(src, i + 1, m))
            {
                out.push(BlockingSite {
                    tok: i,
                    line: src.line_of(tf.toks[i].start),
                    what: (*what).to_string(),
                    waits_on: None,
                });
                continue;
            }
            if ["wait", "wait_timeout", "wait_while", "wait_timeout_while"]
                .iter()
                .any(|m| tf.is_ident(src, i + 1, m))
            {
                let arg = (i + 3 < tf.toks.len() && matches!(tf.toks[i + 3].kind, TokKind::Ident))
                    .then(|| tf.text(src, i + 3).to_string());
                out.push(BlockingSite {
                    tok: i,
                    line: src.line_of(tf.toks[i].start),
                    what: "condvar wait".to_string(),
                    waits_on: Some(arg.unwrap_or_default()),
                });
                continue;
            }
        }
        // Path style: `module::name(`.
        if matches!(tf.toks[i].kind, TokKind::Ident)
            && tf.is_punct(i + 1, b':')
            && tf.is_punct(i + 2, b':')
            && matches!(tf.toks.get(i + 3).map(|t| t.kind), Some(TokKind::Ident))
            && matches!(tf.toks.get(i + 4).map(|t| t.kind), Some(TokKind::Open(b'(')))
        {
            let module = tf.text(src, i);
            let name = tf.text(src, i + 3);
            if let Some((_, _, what)) =
                BLOCKING_PATHS.iter().find(|(m, n, _)| *m == module && *n == name)
            {
                out.push(BlockingSite {
                    tok: i,
                    line: src.line_of(tf.toks[i].start),
                    what: (*what).to_string(),
                    waits_on: None,
                });
            }
        }
    }
    out
}

struct CallSite {
    tok: usize,
    line: usize,
    /// Resolution key into the per-file summary map.
    key: String,
}

/// Same-file-resolvable call sites in `[open, close]`: `self.m(…)`,
/// `Type::m(…)` and bare `m(…)`.
fn call_sites(
    src: &SourceFile,
    tf: &TokenFile,
    fn_qualified: &str,
    open: usize,
    close: usize,
) -> Vec<CallSite> {
    let impl_type = fn_qualified.split("::").next().filter(|t| *t != fn_qualified);
    let mut out = Vec::new();
    for i in open + 1..close {
        if !matches!(tf.toks[i].kind, TokKind::Ident) {
            continue;
        }
        if !matches!(tf.toks.get(i + 1).map(|t| t.kind), Some(TokKind::Open(b'('))) {
            continue;
        }
        let name = tf.text(src, i);
        let line = src.line_of(tf.toks[i].start);
        // `self.m(` — resolve through the enclosing impl type.
        if i >= 2 && tf.is_method_dot(i - 1) && tf.is_ident(src, i - 2, "self") {
            if let Some(ty) = impl_type {
                out.push(CallSite { tok: i, line, key: format!("{ty}::{name}") });
            }
            continue;
        }
        // `Type::m(`.
        if i >= 3
            && tf.is_punct(i - 1, b':')
            && tf.is_punct(i - 2, b':')
            && matches!(tf.toks[i - 3].kind, TokKind::Ident)
        {
            let ty = tf.text(src, i - 3);
            out.push(CallSite { tok: i, line, key: format!("{ty}::{name}") });
            continue;
        }
        // Bare `m(` — not a method call on another receiver, not a macro,
        // not a declaration.
        let prev = i.checked_sub(1).map(|p| tf.toks[p].kind);
        let is_decl = i >= 1 && tf.is_ident(src, i - 1, "fn");
        let is_macro = matches!(tf.toks.get(i + 1).map(|t| t.kind), Some(TokKind::Punct(b'!')));
        let dotted = i >= 1 && tf.is_punct(i - 1, b'.');
        if !is_decl && !is_macro && !dotted && !matches!(prev, Some(TokKind::Punct(b':'))) {
            out.push(CallSite { tok: i, line, key: name.to_string() });
        }
    }
    out
}

/// Transitive closure of acquisitions and blocking over same-file calls.
fn close_summaries(summaries: &BTreeMap<String, FnSummary>) -> BTreeMap<String, FnSummary> {
    let keys: Vec<String> = summaries.keys().cloned().collect();
    let mut closed: BTreeMap<String, FnSummary> = BTreeMap::new();
    for key in &keys {
        let mut acquires = BTreeSet::new();
        let mut blocking = Vec::new();
        let mut seen = BTreeSet::new();
        let mut stack = vec![key.clone()];
        while let Some(k) = stack.pop() {
            if !seen.insert(k.clone()) {
                continue;
            }
            let Some(s) = summaries.get(&k) else { continue };
            acquires.extend(s.acquires.iter().cloned());
            blocking.extend(s.blocking.iter().cloned());
            stack.extend(s.calls.iter().cloned());
        }
        blocking.sort();
        blocking.dedup();
        closed.insert(
            key.clone(),
            FnSummary { acquires: acquires.into_iter().collect(), blocking, calls: Vec::new() },
        );
    }
    closed
}

/// Iterative Tarjan SCC; returns node → component id.
fn tarjan<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>) -> BTreeMap<&'a str, usize> {
    struct State<'a> {
        index: BTreeMap<&'a str, usize>,
        low: BTreeMap<&'a str, usize>,
        on_stack: BTreeSet<&'a str>,
        stack: Vec<&'a str>,
        next: usize,
        comp_of: BTreeMap<&'a str, usize>,
        comps: usize,
    }
    let mut st = State {
        index: BTreeMap::new(),
        low: BTreeMap::new(),
        on_stack: BTreeSet::new(),
        stack: Vec::new(),
        next: 0,
        comp_of: BTreeMap::new(),
        comps: 0,
    };
    // Explicit work stack: (node, neighbour iterator position).
    for &root in adj.keys() {
        if st.index.contains_key(root) {
            continue;
        }
        let mut work: Vec<(&str, usize)> = vec![(root, 0)];
        while let Some((v, ni)) = work.pop() {
            if ni == 0 {
                st.index.insert(v, st.next);
                st.low.insert(v, st.next);
                st.next += 1;
                st.stack.push(v);
                st.on_stack.insert(v);
            }
            let neighbours: Vec<&str> =
                adj.get(v).map(|s| s.iter().copied().collect()).unwrap_or_default();
            if let Some(&w) = neighbours.get(ni) {
                work.push((v, ni + 1));
                if !st.index.contains_key(w) {
                    work.push((w, 0));
                } else if st.on_stack.contains(w) {
                    let lw = st.index[w].min(st.low[v]);
                    st.low.insert(v, lw);
                }
            } else {
                // All neighbours done: close the component if v is a root.
                if let Some(&(parent, _)) = work.last() {
                    let lv = st.low[v].min(st.low[parent]);
                    st.low.insert(parent, lv);
                }
                if st.low[v] == st.index[v] {
                    let id = st.comps;
                    st.comps += 1;
                    while let Some(w) = st.stack.pop() {
                        st.on_stack.remove(w);
                        st.comp_of.insert(w, id);
                        if w == v {
                            break;
                        }
                    }
                }
            }
        }
    }
    st.comp_of
}

fn file_stem(path: &str) -> String {
    path.rsplit('/').next().unwrap_or(path).trim_end_matches(".rs").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::TokenFile;

    fn run(text: &str) -> (Vec<Finding>, Vec<LockEdge>) {
        let src = SourceFile::new("crates/serve/src/demo.rs", text);
        let tf = TokenFile::new(&src);
        let mut findings = Vec::new();
        let edges = analyze(&src, &tf, &mut findings);
        (findings, edges)
    }

    #[test]
    fn nested_distinct_locks_record_an_edge() {
        let (f, e) =
            run("struct S { a: Mutex<u8>, b: Mutex<u8> }\nimpl S {\n  fn f(&self) {\n    \
             let g = self.a.lock().unwrap();\n    let h = self.b.lock().unwrap();\n  }\n}");
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(e.len(), 1, "{e:?}");
        assert_eq!(e[0].held, "S.a");
        assert_eq!(e[0].acquired, "S.b");
    }

    #[test]
    fn reacquiring_the_same_lock_is_a_self_deadlock() {
        let (f, _) = run("impl S {\n  fn f(&self) {\n    let g = self.a.lock().unwrap();\n    \
             let h = self.a.lock().unwrap();\n  }\n}");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock_order_cycle");
        assert!(f[0].message.contains("re-acquired"), "{}", f[0].message);
    }

    #[test]
    fn temporary_guard_scope_ends_at_the_statement() {
        let (f, e) = run("impl S {\n  fn f(&self) {\n    self.a.lock().unwrap().push(1);\n    \
             let h = self.b.lock().unwrap();\n  }\n}");
        assert!(f.is_empty(), "{f:?}");
        assert!(e.is_empty(), "temporary died before the second acquisition: {e:?}");
    }

    #[test]
    fn drop_releases_a_named_guard_early() {
        let (f, e) = run(
            "impl S {\n  fn f(&self) {\n    let g = self.a.lock().unwrap();\n    drop(g);\n    \
             let h = self.b.lock().unwrap();\n  }\n}",
        );
        assert!(f.is_empty(), "{f:?}");
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn file_io_under_lock_is_flagged() {
        let (f, _) = run("impl S {\n  fn f(&self) {\n    let g = self.a.lock().unwrap();\n    \
             std::fs::write(\"p\", b\"x\").unwrap();\n  }\n}");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "blocking_under_lock");
    }

    #[test]
    fn condvar_wait_on_its_own_guard_is_fine() {
        let (f, _) =
            run("impl S {\n  fn f(&self) {\n    let mut g = self.m.lock().unwrap();\n    \
             g = self.cv.wait(g).unwrap();\n  }\n}");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn condvar_wait_under_another_lock_is_flagged() {
        let (f, _) =
            run("impl S {\n  fn f(&self) {\n    let o = self.other.lock().unwrap();\n    \
             let mut g = self.m.lock().unwrap();\n    g = self.cv.wait(g).unwrap();\n  }\n}");
        assert!(
            f.iter().any(|f| f.rule == "blocking_under_lock" && f.message.contains("condvar")),
            "{f:?}"
        );
    }

    #[test]
    fn callee_io_propagates_to_the_held_scope() {
        let (f, _) =
            run("impl S {\n  fn save(&self) { std::fs::write(\"p\", b\"x\").unwrap(); }\n  \
             fn f(&self) {\n    let g = self.a.lock().unwrap();\n    self.save();\n  }\n}");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "blocking_under_lock");
        assert!(f[0].message.contains("S::save"), "{}", f[0].message);
    }

    #[test]
    fn read_with_arguments_is_io_not_rwlock() {
        let (f, e) = run(
            "impl S {\n  fn f(&self, buf: &mut [u8]) {\n    let g = self.a.lock().unwrap();\n    \
             let n = self.sock.read(buf);\n  }\n}",
        );
        // `.read(buf)` is io::Read: no second lock edge...
        assert!(e.is_empty(), "{e:?}");
        // ...and it is not in the blocking list either (socket reads show
        // up as read_exact/read_to_end; a bare .read is too ambiguous).
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn opposite_order_across_functions_is_a_cycle() {
        let (f, e) = run("impl S {\n  fn ab(&self) {\n    let g = self.a.lock().unwrap();\n    \
             let h = self.b.lock().unwrap();\n  }\n  fn ba(&self) {\n    \
             let h = self.b.lock().unwrap();\n    let g = self.a.lock().unwrap();\n  }\n}");
        assert!(f.is_empty(), "no local finding: {f:?}");
        let cyc = cycle_findings(&e);
        assert_eq!(cyc.len(), 2, "both edges participate: {cyc:?}");
        assert!(cyc[0].message.contains("cycle"), "{}", cyc[0].message);
    }

    #[test]
    fn consistent_order_is_not_a_cycle() {
        let (_, e) = run("impl S {\n  fn one(&self) {\n    let g = self.a.lock().unwrap();\n    \
             let h = self.b.lock().unwrap();\n  }\n  fn two(&self) {\n    \
             let g = self.a.lock().unwrap();\n    let h = self.b.lock().unwrap();\n  }\n}");
        assert!(cycle_findings(&e).is_empty());
    }
}
