//! The perf-regression gate behind `hrviz bench-gate`.
//!
//! Bench drivers leave one `BENCH_<driver>.json` each under `out/`
//! ([`hrviz_obs::PerfRecord`]). The gate folds those records into
//! `out/PERF_HISTORY.jsonl` — one line per driver per gate run, with a
//! monotone `seq` instead of a timestamp so history files stay
//! byte-deterministic — and compares each tracked metric against the
//! rolling mean of that driver's last [`GateConfig::window`] history
//! entries. A metric that moves past [`GateConfig::tolerance`] in its
//! bad direction is a regression; the CLI turns any regression into
//! [`HrvizError::Gate`] (exit code 7), distinct from "the tool broke".
//!
//! The gate is advisory in CI (`continue-on-error`): its job is to make
//! a slowdown loud and attributable, not to block merges on machine
//! noise. The window-mean baseline tolerates one noisy run; a sustained
//! drop shifts the mean and keeps firing.

use std::fs;
use std::path::Path;

use hrviz_network::HrvizError;
use hrviz_obs::Json;

/// Metrics the gate tracks, with the direction of "good":
/// `true` = higher is better, `false` = lower is better. Counters that
/// are deterministic per driver (event totals, queue depths) are
/// recorded in history but never gated — they cannot regress from noise,
/// only from a code change the functional tests already catch.
const TRACKED: &[(&str, bool)] =
    &[("events_per_sec", true), ("req_per_sec", true), ("wall_time_s", false)];

/// Gate tunables, mirroring the CLI flags.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// Allowed relative move in the bad direction before a metric counts
    /// as regressed (0.2 = 20%).
    pub tolerance: f64,
    /// History entries per driver folded into the rolling baseline.
    pub window: usize,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig { tolerance: 0.2, window: 5 }
    }
}

impl GateConfig {
    /// Reject configurations that cannot gate anything.
    pub fn validate(&self) -> Result<(), HrvizError> {
        if self.tolerance <= 0.0 || !self.tolerance.is_finite() {
            return Err(HrvizError::config("--tolerance must be a positive number"));
        }
        if self.window == 0 {
            return Err(HrvizError::config("--window must be at least 1"));
        }
        Ok(())
    }
}

/// One tracked metric of one driver, judged against its baseline.
#[derive(Clone, Debug)]
pub struct MetricVerdict {
    /// Driver the metric belongs to.
    pub driver: String,
    /// Metric name.
    pub metric: String,
    /// Value from the current `BENCH_*.json`.
    pub current: f64,
    /// Rolling window mean, `None` when the driver has no history yet.
    pub baseline: Option<f64>,
    /// Relative move in the bad direction (positive = worse), 0 without
    /// a baseline.
    pub regression: f64,
    /// Whether the move exceeds the tolerance.
    pub regressed: bool,
}

/// What one gate run measured and recorded.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Every tracked metric found in the current bench records.
    pub verdicts: Vec<MetricVerdict>,
    /// History lines appended this run (one per driver).
    pub appended: usize,
}

impl GateReport {
    /// The metrics that tripped the gate.
    pub fn regressed(&self) -> Vec<&MetricVerdict> {
        self.verdicts.iter().filter(|v| v.regressed).collect()
    }

    /// JSON summary (printed by the CLI and archived by CI).
    pub fn to_json(&self) -> Json {
        let verdicts = self
            .verdicts
            .iter()
            .map(|v| {
                Json::obj([
                    ("driver", Json::Str(v.driver.clone())),
                    ("metric", Json::Str(v.metric.clone())),
                    ("current", Json::F64(v.current)),
                    ("baseline", v.baseline.map(Json::F64).unwrap_or(Json::Null)),
                    ("regression", Json::F64(v.regression)),
                    ("regressed", Json::Bool(v.regressed)),
                ])
            })
            .collect();
        Json::obj([
            ("verdicts", Json::Arr(verdicts)),
            ("appended", Json::U64(self.appended as u64)),
            ("regressed", Json::U64(self.regressed().len() as u64)),
        ])
    }
}

/// One parsed history line: `{"seq":N,"driver":...,"metrics":{...}}`.
struct HistoryEntry {
    seq: u64,
    driver: String,
    metrics: Vec<(String, f64)>,
}

/// Judge the `BENCH_*.json` records under `dir` against
/// `dir/PERF_HISTORY.jsonl`, then append them to the history.
///
/// The append happens even when a metric regressed: the next run's
/// baseline must see the slow run, otherwise a persistent regression
/// would fire once and then hide inside a stale baseline.
pub fn run_gate(dir: &Path, cfg: &GateConfig) -> Result<GateReport, HrvizError> {
    cfg.validate()?;
    let history_path = dir.join("PERF_HISTORY.jsonl");
    let history = read_history(&history_path)?;
    let records = read_bench_records(dir)?;
    if records.is_empty() {
        return Err(HrvizError::config(format!(
            "no BENCH_*.json records under {} — run a bench driver first",
            dir.display()
        )));
    }

    let mut report = GateReport::default();
    for (driver, metrics) in &records {
        for (metric, current) in metrics {
            let Some(&(_, higher_is_better)) = TRACKED.iter().find(|(n, _)| n == metric) else {
                continue;
            };
            let baseline = window_mean(&history, driver, metric, cfg.window);
            let regression = match baseline {
                // Relative move in the bad direction; a zero baseline
                // cannot shrink further, so only treat it as a base
                // when it is meaningful.
                Some(b) if b.abs() > f64::EPSILON => {
                    if higher_is_better {
                        (b - current) / b
                    } else {
                        (current - b) / b
                    }
                }
                _ => 0.0,
            };
            report.verdicts.push(MetricVerdict {
                driver: driver.clone(),
                metric: metric.clone(),
                current: *current,
                baseline,
                regression,
                regressed: regression > cfg.tolerance,
            });
        }
    }

    append_history(&history_path, &history, &records)?;
    report.appended = records.len();
    Ok(report)
}

/// Parse `PERF_HISTORY.jsonl`, skipping nothing: a malformed line is a
/// hard error, because silently dropping history quietly weakens every
/// future baseline.
fn read_history(path: &Path) -> Result<Vec<HistoryEntry>, HrvizError> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text =
        fs::read_to_string(path).map_err(|e| HrvizError::io(path.display().to_string(), e))?;
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line)
            .map_err(|e| HrvizError::parse(format!("{}:{}", path.display(), lineno + 1), e))?;
        let entry = HistoryEntry {
            seq: value.get("seq").and_then(Json::as_u64).unwrap_or(0),
            driver: value
                .get("driver")
                .and_then(Json::as_str)
                .ok_or_else(|| {
                    HrvizError::parse(
                        format!("{}:{}", path.display(), lineno + 1),
                        "history line has no driver",
                    )
                })?
                .to_string(),
            metrics: numeric_fields(value.get("metrics")),
        };
        entries.push(entry);
    }
    Ok(entries)
}

/// Every numeric field of a JSON object, in file order.
fn numeric_fields(value: Option<&Json>) -> Vec<(String, f64)> {
    let Some(Json::Obj(pairs)) = value else { return Vec::new() };
    pairs.iter().filter_map(|(k, v)| v.as_f64().map(|x| (k.clone(), x))).collect()
}

/// One bench driver's record: its name plus `(metric, value)` pairs.
type BenchRecord = (String, Vec<(String, f64)>);

/// Parse every `BENCH_*.json` under `dir`, sorted by file name so runs
/// and their history lines are deterministically ordered.
fn read_bench_records(dir: &Path) -> Result<Vec<BenchRecord>, HrvizError> {
    let mut paths = Vec::new();
    let listing = match fs::read_dir(dir) {
        Ok(l) => l,
        Err(e) => return Err(HrvizError::io(dir.display().to_string(), e)),
    };
    for entry in listing {
        let path = entry.map_err(|e| HrvizError::io(dir.display().to_string(), e))?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            paths.push(path);
        }
    }
    paths.sort();

    let mut records = Vec::new();
    for path in paths {
        let text =
            fs::read_to_string(&path).map_err(|e| HrvizError::io(path.display().to_string(), e))?;
        let value =
            Json::parse(&text).map_err(|e| HrvizError::parse(path.display().to_string(), e))?;
        let driver = value
            .get("driver")
            .and_then(Json::as_str)
            .ok_or_else(|| {
                HrvizError::parse(path.display().to_string(), "bench record has no driver")
            })?
            .to_string();
        records.push((driver, numeric_fields(Some(&value))));
    }
    Ok(records)
}

/// Mean of the last `window` history values of `metric` for `driver`.
fn window_mean(history: &[HistoryEntry], driver: &str, metric: &str, window: usize) -> Option<f64> {
    let values: Vec<f64> = history
        .iter()
        .filter(|e| e.driver == driver)
        .filter_map(|e| e.metrics.iter().find(|(k, _)| k == metric).map(|(_, v)| *v))
        .collect();
    let tail = &values[values.len().saturating_sub(window)..];
    if tail.is_empty() {
        return None;
    }
    Some(tail.iter().sum::<f64>() / tail.len() as f64)
}

/// Append one history line per record, continuing the `seq` series.
fn append_history(
    path: &Path,
    history: &[HistoryEntry],
    records: &[(String, Vec<(String, f64)>)],
) -> Result<(), HrvizError> {
    let mut seq = history.iter().map(|e| e.seq).max().unwrap_or(0);
    let mut lines = String::new();
    for (driver, metrics) in records {
        seq += 1;
        let metric_pairs: Vec<(String, Json)> =
            metrics.iter().map(|(k, v)| (k.clone(), Json::F64(*v))).collect();
        let line = Json::Obj(vec![
            ("seq".into(), Json::U64(seq)),
            ("driver".into(), Json::Str(driver.clone())),
            ("metrics".into(), Json::Obj(metric_pairs)),
        ]);
        lines.push_str(&line.render());
        lines.push('\n');
    }
    let existing = if path.exists() {
        fs::read_to_string(path).map_err(|e| HrvizError::io(path.display().to_string(), e))?
    } else {
        String::new()
    };
    fs::write(path, existing + &lines).map_err(|e| HrvizError::io(path.display().to_string(), e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hrviz-gate-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn write_bench(dir: &Path, driver: &str, eps: f64, wall: f64) {
        let body = Json::obj([
            ("driver", Json::Str(driver.into())),
            ("wall_time_s", Json::F64(wall)),
            ("events_per_sec", Json::F64(eps)),
            ("peak_queue_depth", Json::U64(9)),
        ]);
        fs::write(dir.join(format!("BENCH_{driver}.json")), body.render()).expect("write");
    }

    #[test]
    fn first_run_has_no_baseline_and_seeds_history() {
        let dir = tmp("seed");
        write_bench(&dir, "fig2", 1000.0, 2.0);
        let report = run_gate(&dir, &GateConfig::default()).expect("gate");
        assert!(report.regressed().is_empty(), "nothing to compare against yet");
        assert!(report.verdicts.iter().all(|v| v.baseline.is_none()));
        assert_eq!(report.appended, 1);
        let history = fs::read_to_string(dir.join("PERF_HISTORY.jsonl")).expect("history");
        assert!(history.contains("\"seq\":1"), "{history}");
        assert!(history.contains("\"driver\":\"fig2\""), "{history}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stable_metrics_pass_and_history_grows_monotonically() {
        let dir = tmp("stable");
        for _ in 0..4 {
            write_bench(&dir, "fig2", 1000.0, 2.0);
            let report = run_gate(&dir, &GateConfig::default()).expect("gate");
            assert!(report.regressed().is_empty());
        }
        let history = fs::read_to_string(dir.join("PERF_HISTORY.jsonl")).expect("history");
        assert_eq!(history.lines().count(), 4);
        assert!(history.contains("\"seq\":4"), "{history}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_regression_trips_the_gate_in_both_directions() {
        let dir = tmp("regress");
        for _ in 0..3 {
            write_bench(&dir, "fig2", 1000.0, 2.0);
            run_gate(&dir, &GateConfig::default()).expect("gate");
        }
        // Throughput halves and wall time triples: both directions fire.
        write_bench(&dir, "fig2", 500.0, 6.0);
        let report = run_gate(&dir, &GateConfig::default()).expect("gate");
        let tripped: Vec<&str> = report.regressed().iter().map(|v| v.metric.as_str()).collect();
        assert!(tripped.contains(&"events_per_sec"), "{tripped:?}");
        assert!(tripped.contains(&"wall_time_s"), "{tripped:?}");
        let eps = report.verdicts.iter().find(|v| v.metric == "events_per_sec").expect("verdict");
        assert!((eps.regression - 0.5).abs() < 1e-9, "halved throughput = 50% regression");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_run_still_lands_in_history_so_baselines_track_reality() {
        let dir = tmp("track");
        write_bench(&dir, "fig2", 1000.0, 2.0);
        run_gate(&dir, &GateConfig::default()).expect("gate");
        write_bench(&dir, "fig2", 400.0, 2.0);
        let tripped = run_gate(&dir, &GateConfig::default()).expect("gate");
        assert_eq!(tripped.regressed().len(), 1);
        let history = fs::read_to_string(dir.join("PERF_HISTORY.jsonl")).expect("history");
        assert!(history.contains("400"), "the regressed run is part of history: {history}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_bounds_the_baseline() {
        let dir = tmp("window");
        // Ancient fast runs, then a sustained slower plateau.
        for eps in [4000.0, 4000.0, 4000.0, 1000.0, 1000.0, 1000.0] {
            write_bench(&dir, "fig2", eps, 2.0);
            run_gate(&dir, &GateConfig { tolerance: 1e9, window: 3 }).expect("seed");
        }
        // Against a window-3 baseline (all 1000.0) the same value passes;
        // a full-history mean would still include the 4000s and fire.
        write_bench(&dir, "fig2", 950.0, 2.0);
        let report = run_gate(&dir, &GateConfig { tolerance: 0.2, window: 3 }).expect("gate");
        assert!(report.regressed().is_empty(), "{:?}", report.regressed());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn untracked_and_deterministic_metrics_never_gate() {
        let dir = tmp("untracked");
        write_bench(&dir, "fig2", 1000.0, 2.0);
        run_gate(&dir, &GateConfig::default()).expect("gate");
        write_bench(&dir, "fig2", 1000.0, 2.0);
        let report = run_gate(&dir, &GateConfig::default()).expect("gate");
        assert!(
            report.verdicts.iter().all(|v| v.metric != "peak_queue_depth"),
            "queue depth is recorded but never judged"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn degenerate_configs_and_missing_records_are_config_errors() {
        let dir = tmp("cfg");
        let bad = GateConfig { tolerance: 0.0, window: 5 };
        assert_eq!(run_gate(&dir, &bad).unwrap_err().exit_code(), 3);
        let bad = GateConfig { tolerance: 0.2, window: 0 };
        assert_eq!(run_gate(&dir, &bad).unwrap_err().exit_code(), 3);
        let err = run_gate(&dir, &GateConfig::default()).unwrap_err();
        assert_eq!(err.exit_code(), 3, "empty out dir: {err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_history_is_a_parse_error_not_a_silent_reset() {
        let dir = tmp("corrupt");
        fs::write(dir.join("PERF_HISTORY.jsonl"), "{not json\n").expect("write");
        write_bench(&dir, "fig2", 1000.0, 2.0);
        let err = run_gate(&dir, &GateConfig::default()).unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
