//! Loopback tests for the causal-tracing surfaces: the `X-Request-Id`
//! header, the structured access log, the span tree behind one
//! `POST /views`, the Chrome trace export, and the `/tracez` +
//! `/metricsz` endpoints.

mod common;

use std::sync::OnceLock;

use common::{get, post, start, test_store, SCRIPT};
use hrviz_obs::{Collector, Json};
use hrviz_serve::ServeConfig;

/// The process-global collector every test in this binary shares,
/// installed exactly once (tests run concurrently).
fn obs() -> Collector {
    static C: OnceLock<Collector> = OnceLock::new();
    C.get_or_init(|| {
        let c = Collector::enabled();
        hrviz_obs::install(c.clone());
        c
    })
    .clone()
}

#[test]
fn post_views_request_id_threads_through_log_spans_and_export() {
    let c = obs();
    let (_, runs) = test_store();
    let server = start(ServeConfig::default());
    let path = format!("/views?run={}", runs[0]);

    let reply = post(server.addr, &path, SCRIPT, &[]);
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("X-Cache"), Some("miss"));
    let rid_hex = reply.header("X-Request-Id").expect("request id header").to_string();
    let rid = u64::from_str_radix(&rid_hex, 16).expect("request id is hex");
    assert!(rid > 0);

    // The access log names the same request id, route, and disposition.
    let access: Vec<String> = c
        .recent_events()
        .into_iter()
        .filter(|e| {
            e.contains("\"kind\":\"access\"") && e.contains(&format!("\"request_id\":{rid}"))
        })
        .collect();
    assert_eq!(access.len(), 1, "exactly one access line per request");
    let line = &access[0];
    assert!(line.contains("\"method\":\"POST\""), "{line}");
    assert!(line.contains("\"path\":\"/views\""), "{line}");
    assert!(line.contains("\"status\":200"), "{line}");
    assert!(line.contains("\"cache\":\"miss\""), "{line}");
    assert!(line.contains("\"latency_us\":"), "{line}");
    assert!(line.contains("\"bytes\":"), "{line}");

    // The span tree: serve/request is the root, and the aggregate-cache
    // span the build triggered records it as an ancestor.
    let recs = c.recent_spans();
    let root = recs
        .iter()
        .find(|r| r.label == "serve/request" && r.id == rid)
        .expect("serve/request span with the advertised id");
    let cache_span = recs
        .iter()
        .find(|r| {
            r.label == "core/agg_cache" && {
                // Walk the parent chain up to the root span.
                let mut cur = r.parent;
                loop {
                    if cur == rid {
                        break true;
                    }
                    match recs.iter().find(|p| p.id == cur) {
                        Some(p) if p.parent != 0 => cur = p.parent,
                        _ => break cur == rid,
                    }
                }
            }
        })
        .expect("an aggregate-cache span descends from the request");
    assert_eq!(cache_span.lane.as_deref(), Some("core/agg_cache"));
    assert_eq!(cache_span.tid, root.tid, "built on the same worker thread");

    // Cache disposition ladder: repeat → hit; If-None-Match → revalidated.
    let reply = post(server.addr, &path, SCRIPT, &[]);
    assert_eq!(reply.header("X-Cache"), Some("hit"));
    let tag = reply.header("ETag").expect("etag").to_string();
    let reply = post(server.addr, &path, SCRIPT, &[("If-None-Match", &tag)]);
    assert_eq!(reply.status, 304);
    assert_eq!(reply.header("X-Cache"), Some("revalidated"));

    // The Chrome export parses and carries the serve + core lanes.
    let dir = std::env::temp_dir().join(format!("hrviz-serve-chrome-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace_path = dir.join("serve.chrome.json");
    assert!(hrviz_obs::chrome::export(&c, &trace_path).expect("export"));
    let text = std::fs::read_to_string(&trace_path).expect("read export");
    let parsed = Json::parse(&text).expect("chrome trace is valid JSON");
    let events = parsed.get("traceEvents").and_then(Json::as_array).expect("traceEvents");
    assert!(!events.is_empty());
    assert!(text.contains("\"serve/request\""), "serve lane in export");
    assert!(text.contains("\"core/agg_cache\""), "aggregate-cache lane in export");
    assert!(text.contains("hrviz-serve-"), "worker thread lane is named");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracez_and_metricsz_expose_the_live_state() {
    let c = obs();
    let (_, runs) = test_store();
    let server = start(ServeConfig::default());
    post(server.addr, &format!("/views?run={}", runs[0]), SCRIPT, &[]);

    // /metricsz: JSON by default, Prometheus text under Accept.
    let json = get(server.addr, "/metricsz", &[]);
    assert_eq!(json.status, 200);
    assert_eq!(json.header("Content-Type"), Some("application/json"));
    Json::parse(&json.text()).expect("metrics JSON parses");
    let prom = get(server.addr, "/metricsz", &[("Accept", "text/plain")]);
    assert_eq!(prom.status, 200);
    assert_eq!(prom.header("Content-Type"), Some(hrviz_obs::PROMETHEUS_CONTENT_TYPE));
    let body = prom.text();
    assert!(body.contains("# TYPE hrviz_serve_requests_total counter"), "{body}");
    assert!(body.contains("hrviz_serve_latency_us"), "{body}");

    // /tracez: recent spans, never cached.
    let tz = get(server.addr, "/tracez", &[]);
    assert_eq!(tz.status, 200);
    assert_eq!(tz.header("Cache-Control"), Some("no-store"));
    let parsed = Json::parse(&tz.text()).expect("tracez JSON parses");
    let spans = parsed.get("spans").and_then(Json::as_array).expect("spans array");
    assert!(!spans.is_empty(), "the ring holds the request we just made");
    assert!(tz.text().contains("serve/request"), "{}", tz.text());

    // A captured ring span exposes ids for offline correlation.
    let first = &spans[0];
    assert!(first.get("id").and_then(Json::as_u64).is_some());
    assert!(first.get("label").and_then(Json::as_str).is_some());

    let _ = c; // keep the shared collector alive explicitly
    server.stop();
}
