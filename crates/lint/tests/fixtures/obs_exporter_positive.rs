// Fixture: exporter/ring-buffer code reached from failure handlers
// (flight dumps, worker-panic paths) must not itself panic — unwraps
// and bare indexing here must be flagged.
pub fn export_line(records: &[String], out: &mut Vec<u8>) {
    let first = &records[0];
    let comma = first.find(',').unwrap();
    out.extend_from_slice(first[..comma].as_bytes());
}
