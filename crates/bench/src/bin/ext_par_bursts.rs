//! Extension (paper §V-C): the paper observes that standard adaptive
//! routing reacts too slowly to traffic bursts ("the source router may not
//! been notified immediately") and suggests progressive adaptive routing
//! (PAR), which re-evaluates the minimal-vs-detour decision at every hop
//! in the source group. This driver quantifies that suggestion: an
//! abrupt synchronized burst over adversarial destinations, under
//! adaptive vs progressive adaptive routing.

use hrviz_bench::{
    class_summary, class_summary_header, mean_latency_ns, write_csv, Expectations, SEED,
};
use hrviz_network::{
    DragonflyConfig, LinkClass, MsgInjection, NetworkSpec, RoutingAlgorithm, RunData, Simulation,
    TerminalId,
};
use hrviz_pdes::SimTime;

fn burst(routing: RoutingAlgorithm) -> RunData {
    let n = 2_550u32;
    let spec = NetworkSpec::new(DragonflyConfig::try_paper_scale(n).expect("paper scale"))
        .with_routing(routing)
        .with_seed(SEED);
    let mut sim = Simulation::new(spec);
    // A sudden group-tornado burst: everyone fires 64 KB at t≈0 toward the
    // same relative group offset, so every minimal route shares one global
    // channel per group pair and congestion appears *after* the first
    // packets have already committed minimally.
    let group = 50; // terminals per group at this scale
    for src in 0..n {
        sim.inject(MsgInjection {
            time: SimTime((src as u64 * 37) % 500),
            src: TerminalId(src),
            dst: TerminalId((src + 5 * group) % n),
            bytes: 64 * 1024,
            job: 0,
        });
    }
    sim.run()
}

fn main() {
    hrviz_bench::obs_init("ext_par_bursts");
    println!("Extension: traffic bursts under adaptive vs progressive adaptive routing");
    let ada = burst(RoutingAlgorithm::adaptive_default());
    let par = burst(RoutingAlgorithm::par_default());
    write_csv(
        "ext_par_bursts.csv",
        &[class_summary_header(), class_summary("adaptive", &ada), class_summary("par", &par)],
    );
    println!(
        "  adaptive: latency {:.1} us, makespan {}, global sat {} ns",
        mean_latency_ns(&ada) / 1e3,
        ada.end_time,
        ada.class_sat_ns(LinkClass::Global)
    );
    println!(
        "  PAR     : latency {:.1} us, makespan {}, global sat {} ns",
        mean_latency_ns(&par) / 1e3,
        par.end_time,
        par.class_sat_ns(LinkClass::Global)
    );

    let mut exp = Expectations::new();
    exp.check("both deliver the burst completely", {
        ada.total_delivered() == ada.total_injected()
            && par.total_delivered() == par.total_injected()
    });
    exp.check(
        "PAR reduces mean packet latency on the burst",
        mean_latency_ns(&par) < mean_latency_ns(&ada),
    );
    exp.check(
        "PAR drains the burst no slower than plain adaptive",
        par.end_time <= ada.end_time + SimTime::micros(5),
    );
    std::process::exit(i32::from(!exp.finish("ext_par_bursts")));
}
