//! # hrviz-stream — live run telemetry for in-flight sweeps
//!
//! The batch pipeline (simulate → store → query) answers questions about
//! *finished* runs; the paper's workflow explores large sweep grids where
//! most of the value is in watching configs converge or saturate while
//! they run. This crate is the shared substrate for that live path:
//!
//! * [`Slice`] — one virtual-time window of columnar deltas (delivered /
//!   injected packets and bytes, drops, a log₂ latency histogram, VC
//!   saturation time), emitted by the simulators at absolute window
//!   boundaries so interrupted and straight-through runs slice the same;
//! * [`Progress`] — the per-run watermark (`progress.json`): lifecycle
//!   state, number of sealed slices, virtual time reached;
//! * [`SliceWriter`] / [`read_slices`] / [`read_progress`] — crash-safe
//!   `slices/NNNN.jsonl` segment files inside a run directory, every seal
//!   an atomic rewrite (temp + fsync + rename, [`fsio::atomic_write`]),
//!   so a watcher never observes a torn segment or a watermark ahead of
//!   its data;
//! * [`AbortPolicy`] / [`AbortSpec`] — pluggable early-abort decisions
//!   over the slice stream (e.g. [`SaturationAbort`]: offered/delivered
//!   ratio below a threshold for K consecutive windows), letting a sweep
//!   cancel doomed configs mid-grid;
//! * [`StreamedOutcome`] — how a streamed simulation ended: completed
//!   with its payload, or aborted by policy at a known virtual time.
//!
//! Everything here is deterministic integer math over the simulation's
//! own counters: two replays of the same seed produce byte-identical
//! slice files, which is what lets incremental aggregates downstream
//! (`hrviz_core`) promise byte-identity with a cold batch rebuild.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod abort;
pub mod cursor;
pub mod fsio;
pub mod slice;
pub mod writer;

pub use abort::{AbortPolicy, AbortSpec, SaturationAbort};
pub use cursor::{CumulativeTotals, SliceCursor};
pub use hrviz_faults::HrvizError;
pub use slice::{Progress, Slice, LATENCY_BINS};
pub use writer::{read_progress, read_slices, SliceWriter, SLICES_PER_SEGMENT};

/// What a slice sink tells the simulator after each sealed window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SliceControl {
    /// Keep simulating.
    Continue,
    /// Stop now; the run is recorded as `aborted` with this reason.
    Abort(String),
}

/// Receives each sealed [`Slice`] during a streamed run and decides
/// whether to continue (mirrors `CheckpointSink` in `hrviz_network`).
pub type SliceSink<'a> = &'a mut dyn FnMut(&Slice) -> Result<SliceControl, HrvizError>;

/// How a streamed simulation ended.
pub enum StreamedOutcome<T> {
    /// Ran to completion; the payload is the simulator's normal result.
    Completed(T),
    /// The sink asked to stop mid-run.
    Aborted {
        /// Policy-provided reason, recorded in the run manifest.
        reason: String,
        /// Virtual time at which the run stopped.
        at_ns: u64,
        /// Slices sealed before the abort.
        slices: u64,
    },
}

impl<T> StreamedOutcome<T> {
    /// The completed payload, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            StreamedOutcome::Completed(t) => Some(t),
            StreamedOutcome::Aborted { .. } => None,
        }
    }
}
