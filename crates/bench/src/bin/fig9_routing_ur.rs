//! Fig. 9 — minimal vs adaptive routing for uniform-random traffic on the
//! 9,702-terminal Dragonfly.
//!
//! Paper shapes: adaptive routing roughly doubles global-link usage (the
//! random proxy groups double global bandwidth consumption), raises local
//! traffic in the proxy groups, removes local-link saturation, and —
//! because of the longer paths — *increases* mean hop count and packet
//! latency; minimal routing under-uses local links but saturates them via
//! path conflicts.

use hrviz_bench::{
    class_summary, class_summary_header, inter_group_spec, mean_hops, mean_latency_ns,
    run_synthetic, write_csv, write_out, Expectations,
};
use hrviz_core::{compare_views, DataSet};
use hrviz_network::{LinkClass, RoutingAlgorithm};
use hrviz_pdes::SimTime;
use hrviz_render::{render_radial_row, RadialLayout};
use hrviz_workloads::SyntheticConfig;

fn main() {
    hrviz_bench::obs_init("fig9_routing_ur");
    println!("Fig. 9: minimal vs adaptive routing, uniform random on 9,702 terminals");
    // Load high enough that minimal routing's gateway queues build up but
    // below the bisection limit (override: HRVIZ_F9_PERIOD_US).
    let period_us: u64 =
        std::env::var("HRVIZ_F9_PERIOD_US").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    let traffic = SyntheticConfig::uniform(16 * 1024, 24, SimTime::micros(period_us));
    let minimal = run_synthetic(9_702, traffic, RoutingAlgorithm::Minimal);
    let adaptive = run_synthetic(9_702, traffic, RoutingAlgorithm::adaptive_default());

    let ds_min = DataSet::builder(&minimal).build();
    let ds_ada = DataSet::builder(&adaptive).build();
    let views = compare_views(&[&ds_min, &ds_ada], &inter_group_spec(9)).expect("views build");
    write_out(
        "fig9_routing_ur.svg",
        &render_radial_row(
            &[(&views[0], "Minimal Routing"), (&views[1], "Adaptive Routing")],
            &RadialLayout::default(),
            "Fig 9: uniform random on 9,702 terminals (shared scales)",
        ),
    );
    write_csv(
        "fig9_class_summary.csv",
        &[
            class_summary_header(),
            class_summary("minimal", &minimal),
            class_summary("adaptive", &adaptive),
        ],
    );

    let g_min = minimal.class_traffic(LinkClass::Global) as f64;
    let g_ada = adaptive.class_traffic(LinkClass::Global) as f64;
    let l_min = minimal.class_traffic(LinkClass::Local) as f64;
    let l_ada = adaptive.class_traffic(LinkClass::Local) as f64;

    let mut exp = Expectations::new();
    exp.check("adaptive increases global-link usage", g_ada > 1.2 * g_min);
    exp.check("adaptive increases local-link usage (proxy groups)", l_ada > l_min);
    exp.check(
        "minimal saturates local links more than adaptive",
        minimal.class_sat_ns(LinkClass::Local) > adaptive.class_sat_ns(LinkClass::Local),
    );
    exp.check("adaptive increases mean hop count", mean_hops(&adaptive) > mean_hops(&minimal));
    println!(
        "  hops: minimal {:.2} adaptive {:.2} | latency: minimal {:.1}us adaptive {:.1}us",
        mean_hops(&minimal),
        mean_hops(&adaptive),
        mean_latency_ns(&minimal) / 1e3,
        mean_latency_ns(&adaptive) / 1e3,
    );
    std::process::exit(i32::from(!exp.finish("fig9")));
}
