//! Workspace-level property tests: cross-crate invariants that must hold
//! for arbitrary workloads and arbitrary (valid) specifications.

use hrviz::core::{
    build_view, parse_script, to_script, DataSet, EntityKind, Field, LevelSpec, ProjectionSpec,
    RibbonSpec,
};
use hrviz::network::{
    DragonflyConfig, MsgInjection, NetworkSpec, RoutingAlgorithm, Simulation, TerminalId,
};
use hrviz::pdes::SimTime;
use proptest::prelude::*;

fn routing_strategy() -> impl Strategy<Value = RoutingAlgorithm> {
    prop_oneof![
        Just(RoutingAlgorithm::Minimal),
        Just(RoutingAlgorithm::NonMinimal),
        (0u64..100_000).prop_map(|t| RoutingAlgorithm::Adaptive { threshold: t }),
        (0u64..100_000).prop_map(|t| RoutingAlgorithm::ProgressiveAdaptive { threshold: t }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every injected byte is delivered, under every routing
    /// strategy and arbitrary message sets, and latency/hops stay sane.
    #[test]
    fn traffic_is_conserved(
        routing in routing_strategy(),
        msgs in prop::collection::vec(
            (0u64..50_000, 0u32..72, 0u32..72, 1u64..40_000),
            1..60,
        ),
        seed in 0u64..1_000,
    ) {
        let spec = NetworkSpec::new(DragonflyConfig::canonical(2))
            .with_routing(routing)
            .with_seed(seed);
        let mut sim = Simulation::new(spec);
        let mut expect = 0u64;
        for (t, src, dst, bytes) in msgs {
            if src != dst {
                expect += bytes;
            }
            sim.inject(MsgInjection {
                time: SimTime(t),
                src: TerminalId(src),
                dst: TerminalId(dst),
                bytes,
                job: 0,
            });
        }
        let run = sim.run();
        prop_assert_eq!(run.total_delivered(), expect);
        for t in &run.terminals {
            // Hops on any legal path: 1..=6 routers.
            if t.packets_finished > 0 {
                prop_assert!(t.avg_hops >= 1.0 && t.avg_hops <= 6.0, "hops {}", t.avg_hops);
                prop_assert!(t.avg_latency_ns > 0.0);
            }
        }
        // Saturation can never exceed elapsed time per link.
        let horizon = run.end_time.as_nanos();
        for l in run.local_links.iter().chain(&run.global_links) {
            prop_assert!(l.sat_ns <= horizon, "sat {} > horizon {horizon}", l.sat_ns);
        }
    }

    /// Parallel and sequential engines agree for arbitrary workloads.
    #[test]
    fn parallel_equals_sequential(
        msgs in prop::collection::vec(
            (0u64..20_000, 0u32..72, 0u32..72, 1u64..20_000),
            1..40,
        ),
        parts in 2usize..7,
    ) {
        let build = |m: &[(u64, u32, u32, u64)]| {
            let spec = NetworkSpec::new(DragonflyConfig::canonical(2))
                .with_routing(RoutingAlgorithm::adaptive_default())
                .with_seed(5);
            let mut sim = Simulation::new(spec);
            for &(t, src, dst, bytes) in m {
                sim.inject(MsgInjection {
                    time: SimTime(t),
                    src: TerminalId(src),
                    dst: TerminalId(dst),
                    bytes,
                    job: 0,
                });
            }
            sim
        };
        let seq = build(&msgs).run();
        let par = build(&msgs).run_parallel(parts);
        prop_assert_eq!(seq.events_processed, par.events_processed);
        prop_assert_eq!(seq.end_time, par.end_time);
        for (a, b) in seq.terminals.iter().zip(&par.terminals) {
            prop_assert_eq!(a.packets_finished, b.packets_finished);
            prop_assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
        }
    }
}

fn arb_level() -> impl Strategy<Value = LevelSpec> {
    let entities = prop_oneof![
        Just(EntityKind::Router),
        Just(EntityKind::LocalLink),
        Just(EntityKind::GlobalLink),
        Just(EntityKind::Terminal),
    ];
    (entities, 0usize..3, prop::bool::ANY, prop::option::of(1usize..20)).prop_map(
        |(entity, naggs, border, max_bins)| {
            let attrs: Vec<Field> = [Field::GroupId, Field::RouterId, Field::RouterRank]
                .into_iter()
                .take(naggs)
                .collect();
            let mut lv = LevelSpec::new(entity).aggregate(&attrs).border(border);
            lv.max_bins = max_bins;
            // Every entity kind has traffic + sat_time.
            lv = lv.color(Field::SatTime).size(Field::Traffic);
            lv
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Script serialization round-trips arbitrary valid specs.
    #[test]
    fn script_roundtrip(levels in prop::collection::vec(arb_level(), 1..4),
                        ribbons in prop::bool::ANY) {
        let mut spec = ProjectionSpec::new(levels);
        if ribbons {
            spec = spec.ribbons(RibbonSpec::new(EntityKind::GlobalLink));
        }
        prop_assume!(spec.validate().is_ok());
        let text = to_script(&spec);
        let re = parse_script(&text).expect("serialized script must parse");
        prop_assert_eq!(re.levels.len(), spec.levels.len());
        for (a, b) in re.levels.iter().zip(&spec.levels) {
            prop_assert_eq!(a.entity, b.entity);
            prop_assert_eq!(&a.aggregate, &b.aggregate);
            prop_assert_eq!(a.max_bins, b.max_bins);
            prop_assert_eq!(a.vmap, b.vmap);
            prop_assert_eq!(a.border, b.border);
        }
    }

    /// Views built from arbitrary valid specs keep every normalized
    /// encoding in [0,1], cover every filtered row exactly once, and keep
    /// angular spans within the circle.
    #[test]
    fn views_are_well_formed(levels in prop::collection::vec(arb_level(), 1..4)) {
        let spec = ProjectionSpec::new(levels);
        prop_assume!(spec.validate().is_ok());
        // A small deterministic run to project.
        let net = NetworkSpec::new(DragonflyConfig::canonical(2)).with_seed(1);
        let mut sim = Simulation::new(net);
        for src in 0..72u32 {
            sim.inject(MsgInjection {
                time: SimTime::ZERO,
                src: TerminalId(src),
                dst: TerminalId((src + 36) % 72),
                bytes: 4096,
                job: 0,
            });
        }
        let ds = DataSet::builder(&sim.run()).build();
        let view = build_view(&ds, &spec).expect("valid spec builds");
        for (ring, lv) in view.rings.iter().zip(&spec.levels) {
            let mut covered = 0usize;
            for item in &ring.items {
                covered += item.rows.len();
                for v in [item.color, item.size, item.x, item.y].into_iter().flatten() {
                    prop_assert!((0.0..=1.0).contains(&v));
                }
                prop_assert!(item.span.0 >= -1e-9 && item.span.1 <= 1.0 + 1e-9);
                prop_assert!(item.span.0 <= item.span.1);
            }
            if let Some(cap) = lv.max_bins {
                prop_assert!(ring.items.len() <= cap.max(1));
            }
            prop_assert_eq!(covered, ds.len(lv.entity), "every row appears exactly once");
        }
    }
}
