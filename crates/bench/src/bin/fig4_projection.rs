//! Fig. 4 — the visual-interface example: a 5,256-terminal Dragonfly (73
//! groups × 12 routers × 6 terminals) running three jobs under random
//! router placement, shown as a hierarchical radial view with local-link
//! ribbons, global-link bars, a terminal heatmap, and a terminal scatter
//! (color = workload, size = avg latency, x = avg hops, y = data size).

use hrviz_bench::{run_three_jobs, write_csv, write_out, Expectations};
use hrviz_core::{build_view, DataSet, EntityKind, Field, LevelSpec, ProjectionSpec, RibbonSpec};
use hrviz_network::RoutingAlgorithm;
use hrviz_render::{render_radial, RadialLayout};
use hrviz_workloads::PlacementPolicy;

fn main() {
    hrviz_bench::obs_init("fig4_projection");
    println!("Fig. 4: projection view of three jobs under random-router placement");
    let run = run_three_jobs(
        [PlacementPolicy::RandomRouter; 3],
        RoutingAlgorithm::adaptive_default(),
        None,
    );
    let ds = DataSet::builder(&run).build();

    // The Fig. 4a configuration: aggregate by router rank.
    let spec = ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::GlobalLink)
            .aggregate(&[Field::RouterRank])
            .color(Field::SatTime)
            .size(Field::Traffic)
            .colors(&["white", "purple"]),
        LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::RouterRank, Field::RouterPort])
            .color(Field::BusyTime)
            .colors(&["white", "steelblue"]),
        LevelSpec::new(EntityKind::Terminal)
            .color(Field::Workload)
            .size(Field::AvgLatency)
            .x(Field::AvgHops)
            .y(Field::DataSize)
            .colors(&["green", "orange", "brown"])
            .border(false),
    ])
    .ribbons(
        RibbonSpec::new(EntityKind::LocalLink)
            .size(Field::Traffic)
            .color(Field::SatTime)
            .colors(&["white", "steelblue"]),
    );
    let view = build_view(&ds, &spec).expect("spec validated");
    let svg = render_radial(
        &view,
        &RadialLayout::default(),
        "Fig 4: AMG + AMR Boxlib + MiniFE, random-router placement (agg by router rank)",
    );
    write_out("fig4_projection.svg", &svg);

    // Report the per-ring shapes the caption describes.
    let a = run.spec.topology.routers_per_group as usize;
    let p = run.spec.topology.terminals_per_router as usize;
    let mut rows = vec![vec!["ring".into(), "plot".into(), "entity".into(), "items".into()]];
    for (i, ring) in view.rings.iter().enumerate() {
        rows.push(vec![
            i.to_string(),
            format!("{:?}", ring.plot),
            ring.entity.name().into(),
            ring.items.len().to_string(),
        ]);
    }
    write_csv("fig4_rings.csv", &rows);

    let mut exp = Expectations::new();
    exp.check("inner ring: one bar group per router rank", view.rings[0].items.len() == a);
    exp.check("middle ring: rank x port heatmap cells", view.rings[1].items.len() == a * p);
    exp.check(
        "outer ring: one scatter dot per terminal",
        view.rings[2].items.len() == run.terminals.len(),
    );
    exp.check("ribbons bundle intra-group links between ranks", !view.ribbons.is_empty());
    exp.check("three jobs visible in the scatter colors", {
        let mut jobs: Vec<u64> =
            view.rings[2].items.iter().filter_map(|i| i.raw.color.map(|c| c as u64)).collect();
        jobs.sort_unstable();
        jobs.dedup();
        jobs.len() >= 3
    });
    std::process::exit(i32::from(!exp.finish("fig4")));
}
