//! The detail view (paper §IV-C, Fig. 6b): two link scatter plots (traffic
//! vs saturation for global and local links) and a parallel-coordinates
//! plot over all terminal metrics, with highlighting and axis brushing.

use crate::dataset::{DataSet, TerminalRow};
use crate::entity::{EntityKind, Field};

/// One scatter point, indexed back to its dataset row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScatterPoint {
    /// Row index in the entity's table.
    pub row: usize,
    /// Raw x value.
    pub x: f64,
    /// Raw y value.
    pub y: f64,
    /// Set by [`DetailView::highlight`].
    pub highlighted: bool,
}

/// A scatter plot over link rows.
#[derive(Clone, Debug)]
pub struct LinkScatter {
    /// Which link table.
    pub entity: EntityKind,
    /// X metric.
    pub x_field: Field,
    /// Y metric.
    pub y_field: Field,
    /// Points.
    pub points: Vec<ScatterPoint>,
    /// X extent (0-anchored).
    pub x_max: f64,
    /// Y extent (0-anchored).
    pub y_max: f64,
}

impl LinkScatter {
    fn new(ds: &DataSet, entity: EntityKind) -> LinkScatter {
        let (x_field, y_field) = (Field::Traffic, Field::SatTime);
        let n = ds.len(entity);
        let mut points = Vec::with_capacity(n);
        let (mut x_max, mut y_max) = (0.0f64, 0.0f64);
        for row in 0..n {
            let x = ds.value(entity, row, x_field);
            let y = ds.value(entity, row, y_field);
            x_max = x_max.max(x);
            y_max = y_max.max(y);
            points.push(ScatterPoint { row, x, y, highlighted: false });
        }
        LinkScatter { entity, x_field, y_field, points, x_max, y_max }
    }
}

/// The default parallel-coordinate axes over terminals.
pub const PCP_AXES: [Field; 6] = [
    Field::DataSize,
    Field::BusyTime,
    Field::SatTime,
    Field::PacketsFinished,
    Field::AvgHops,
    Field::AvgLatency,
];

/// One parallel-coordinates axis with its extent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcpAxis {
    /// Metric on this axis.
    pub field: Field,
    /// Minimum over the rows.
    pub min: f64,
    /// Maximum over the rows.
    pub max: f64,
}

/// One terminal's polyline, normalized per axis.
#[derive(Clone, Debug, PartialEq)]
pub struct PcpLine {
    /// Terminal row index.
    pub row: usize,
    /// Normalized value per axis (same order as `axes`).
    pub values: Vec<f64>,
    /// Set by [`DetailView::highlight`].
    pub highlighted: bool,
}

/// Parallel-coordinates plot over the terminals.
#[derive(Clone, Debug)]
pub struct ParallelCoords {
    /// The axes.
    pub axes: Vec<PcpAxis>,
    /// One line per terminal.
    pub lines: Vec<PcpLine>,
}

impl ParallelCoords {
    fn new(ds: &DataSet) -> ParallelCoords {
        let axes: Vec<PcpAxis> = PCP_AXES
            .iter()
            .map(|&field| {
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                for row in 0..ds.terminals.len() {
                    let v = ds.value(EntityKind::Terminal, row, field);
                    min = min.min(v);
                    max = max.max(v);
                }
                if ds.terminals.is_empty() {
                    (min, max) = (0.0, 0.0);
                }
                PcpAxis { field, min, max }
            })
            .collect();
        let lines = (0..ds.terminals.len())
            .map(|row| {
                let values = axes
                    .iter()
                    .map(|a| {
                        let v = ds.value(EntityKind::Terminal, row, a.field);
                        if a.max > a.min {
                            (v - a.min) / (a.max - a.min)
                        } else {
                            0.0
                        }
                    })
                    .collect();
                PcpLine { row, values, highlighted: false }
            })
            .collect();
        ParallelCoords { axes, lines }
    }
}

/// The full detail view.
#[derive(Clone, Debug)]
pub struct DetailView {
    /// Global-link traffic/saturation scatter.
    pub global_links: LinkScatter,
    /// Local-link traffic/saturation scatter.
    pub local_links: LinkScatter,
    /// Terminal parallel coordinates.
    pub terminals: ParallelCoords,
}

impl DetailView {
    /// Build from a dataset.
    pub fn new(ds: &DataSet) -> DetailView {
        DetailView {
            global_links: LinkScatter::new(ds, EntityKind::GlobalLink),
            local_links: LinkScatter::new(ds, EntityKind::LocalLink),
            terminals: ParallelCoords::new(ds),
        }
    }

    /// Highlight the entities behind a selected projection aggregate
    /// (paper §IV-C: "selecting a visual aggregate in the projection view
    /// highlights the corresponding entities in the detail view").
    pub fn highlight(&mut self, entity: EntityKind, rows: &[usize]) {
        let set: std::collections::HashSet<usize> = rows.iter().copied().collect();
        match entity {
            EntityKind::GlobalLink => {
                for p in &mut self.global_links.points {
                    p.highlighted = set.contains(&p.row);
                }
            }
            EntityKind::LocalLink => {
                for p in &mut self.local_links.points {
                    p.highlighted = set.contains(&p.row);
                }
            }
            EntityKind::Terminal => {
                for l in &mut self.terminals.lines {
                    l.highlighted = set.contains(&l.row);
                }
            }
            EntityKind::Router => {}
        }
    }

    /// Clear all highlights.
    pub fn clear_highlight(&mut self) {
        for p in &mut self.global_links.points {
            p.highlighted = false;
        }
        for p in &mut self.local_links.points {
            p.highlighted = false;
        }
        for l in &mut self.terminals.lines {
            l.highlighted = false;
        }
    }

    /// Count of highlighted terminals.
    pub fn highlighted_terminals(&self) -> usize {
        self.terminals.lines.iter().filter(|l| l.highlighted).count()
    }
}

/// Brush one PCP axis: restrict the dataset to terminals whose `field`
/// lies in `[lo, hi]` (the paper's interactive filtering; the projection
/// view is then rebuilt from the result).
pub fn brush_axis(ds: &DataSet, field: Field, lo: f64, hi: f64) -> DataSet {
    assert!(
        DataSet::has_field(EntityKind::Terminal, field),
        "brushing is over terminal axes; {field} is not one"
    );
    let check = move |t: &TerminalRow| {
        // Reuse the dataset accessor by matching on field directly.
        let v = match field {
            Field::DataSize | Field::Traffic => t.data_size,
            Field::BusyTime => t.busy,
            Field::SatTime => t.sat,
            Field::PacketsFinished => t.packets_finished,
            Field::PacketsSent => t.packets_sent,
            Field::AvgHops => t.avg_hops,
            Field::AvgLatency => t.avg_latency,
            Field::RecvBytes => t.recv_bytes,
            Field::Workload => t.job as f64,
            Field::GroupId => t.group as f64,
            Field::RouterId => t.router as f64,
            Field::RouterRank => t.rank as f64,
            Field::RouterPort => t.port as f64,
            Field::TerminalId => t.terminal as f64,
            _ => unreachable!("has_field checked"),
        };
        v >= lo && v <= hi
    };
    ds.filter_terminals(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{LinkRow, TerminalRow};

    fn ds() -> DataSet {
        let mut d = DataSet { jobs: vec!["a".into()], ..DataSet::default() };
        for i in 0..4u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i / 2,
                group: 0,
                rank: i / 2,
                port: i % 2,
                job: 0,
                data_size: (i + 1) as f64,
                recv_bytes: 0.0,
                busy: (i + 1) as f64 * 2.0,
                sat: 0.0,
                packets_finished: 1.0,
                packets_sent: 1.0,
                avg_latency: 100.0 * (i + 1) as f64,
                avg_hops: 2.0,
            });
        }
        d.global_links.push(LinkRow {
            src_router: 0,
            src_group: 0,
            src_rank: 0,
            src_port: 0,
            dst_router: 1,
            dst_group: 1,
            dst_rank: 0,
            dst_port: 0,
            src_job: 0,
            dst_job: 0,
            traffic: 10.0,
            sat: 5.0,
        });
        d
    }

    #[test]
    fn scatters_capture_extents() {
        let view = DetailView::new(&ds());
        assert_eq!(view.global_links.points.len(), 1);
        assert_eq!(view.global_links.x_max, 10.0);
        assert_eq!(view.global_links.y_max, 5.0);
        assert!(view.local_links.points.is_empty());
    }

    #[test]
    fn pcp_normalizes_per_axis() {
        let view = DetailView::new(&ds());
        assert_eq!(view.terminals.axes.len(), PCP_AXES.len());
        let lat_axis =
            view.terminals.axes.iter().position(|a| a.field == Field::AvgLatency).unwrap();
        assert_eq!(view.terminals.lines[0].values[lat_axis], 0.0);
        assert_eq!(view.terminals.lines[3].values[lat_axis], 1.0);
        // Constant axes (sat = 0 everywhere) normalize to 0.
        let sat_axis = view.terminals.axes.iter().position(|a| a.field == Field::SatTime).unwrap();
        assert!(view.terminals.lines.iter().all(|l| l.values[sat_axis] == 0.0));
    }

    #[test]
    fn highlight_roundtrip() {
        let mut view = DetailView::new(&ds());
        view.highlight(EntityKind::Terminal, &[1, 3]);
        assert_eq!(view.highlighted_terminals(), 2);
        assert!(view.terminals.lines[1].highlighted);
        assert!(!view.terminals.lines[0].highlighted);
        view.highlight(EntityKind::GlobalLink, &[0]);
        assert!(view.global_links.points[0].highlighted);
        view.clear_highlight();
        assert_eq!(view.highlighted_terminals(), 0);
        assert!(!view.global_links.points[0].highlighted);
    }

    #[test]
    fn brush_axis_filters_terminals() {
        let d = ds();
        let brushed = brush_axis(&d, Field::AvgLatency, 150.0, 350.0);
        assert_eq!(brushed.terminals.len(), 2);
        assert!(brushed.terminals.iter().all(|t| t.avg_latency >= 150.0));
    }

    #[test]
    #[should_panic(expected = "not one")]
    fn brush_rejects_non_terminal_fields() {
        brush_axis(&ds(), Field::DstGroupId, 0.0, 1.0);
    }
}
