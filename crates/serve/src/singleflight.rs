//! Single-flight coalescing for cold cache fills.
//!
//! When many identical requests arrive while the response cache is cold
//! (the thundering-herd shape: a dashboard with N panels all asking for
//! the same view the moment a sweep finishes), only the first should pay
//! the projection cost. The rest park on a per-key [`Condvar`] and reuse
//! the leader's result.
//!
//! The map holds one [`Flight`] per in-progress key; the leader removes
//! it again when publishing, so entries live exactly as long as the
//! computation. A leader that unwinds without publishing (build panic)
//! still clears the entry via [`LeaderGuard`]'s `Drop` and wakes the
//! followers — they observe "leader failed" and recompute rather than
//! hanging, so one poisoned build can never wedge every future request
//! for that key.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-progress computation.
struct Flight<T> {
    state: Mutex<FlightState<T>>,
    done: Condvar,
}

enum FlightState<T> {
    Running,
    /// Leader finished; `None` means it failed (or panicked) and
    /// followers must compute for themselves.
    Done(Option<T>),
}

struct Inner<T> {
    flights: Mutex<BTreeMap<String, Arc<Flight<T>>>>,
}

impl<T> Inner<T> {
    /// Remove the flight for `key`, publish `result`, wake followers.
    fn publish(&self, key: &str, result: Option<T>) {
        let flight = {
            let mut flights = self.flights.lock().unwrap_or_else(|p| p.into_inner());
            flights.remove(key)
        };
        if let Some(flight) = flight {
            let mut state = flight.state.lock().unwrap_or_else(|p| p.into_inner());
            *state = FlightState::Done(result);
            flight.done.notify_all();
        }
    }
}

/// A keyed single-flight group. `T` is the (cheaply cloneable) result.
pub struct SingleFlight<T> {
    inner: Arc<Inner<T>>,
}

/// What [`SingleFlight::join`] decided for this caller.
pub enum Role<T> {
    /// No flight was in progress: this caller leads and must publish via
    /// [`LeaderGuard::complete`]. Dropping the guard without completing
    /// publishes "failed" (panic safety).
    Leader(LeaderGuard<T>),
    /// Another caller was already computing this key and finished; here
    /// is its result.
    Shared(T),
    /// The leader failed (or panicked); compute independently.
    LeaderFailed,
}

/// The leader's obligation to publish, enforced against panics: dropping
/// it without [`LeaderGuard::complete`] publishes "failed" and wakes the
/// followers.
pub struct LeaderGuard<T> {
    inner: Arc<Inner<T>>,
    key: String,
    armed: bool,
}

impl<T: Clone> Default for SingleFlight<T> {
    fn default() -> SingleFlight<T> {
        SingleFlight::new()
    }
}

impl<T: Clone> SingleFlight<T> {
    /// An empty group.
    pub fn new() -> SingleFlight<T> {
        SingleFlight { inner: Arc::new(Inner { flights: Mutex::new(BTreeMap::new()) }) }
    }

    /// Join the flight for `key`: become the leader, or block until the
    /// current leader publishes and share its result.
    pub fn join(&self, key: &str) -> Role<T> {
        let flight = {
            let mut flights = self.inner.flights.lock().unwrap_or_else(|p| p.into_inner());
            match flights.get(key) {
                Some(f) => Arc::clone(f),
                None => {
                    let f = Arc::new(Flight {
                        state: Mutex::new(FlightState::Running),
                        done: Condvar::new(),
                    });
                    flights.insert(key.to_string(), f);
                    return Role::Leader(LeaderGuard {
                        inner: Arc::clone(&self.inner),
                        key: key.to_string(),
                        armed: true,
                    });
                }
            }
        };
        let mut state = flight.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match &*state {
                FlightState::Running => {
                    state = flight.done.wait(state).unwrap_or_else(|p| p.into_inner());
                }
                FlightState::Done(Some(value)) => return Role::Shared(value.clone()),
                FlightState::Done(None) => return Role::LeaderFailed,
            }
        }
    }
}

impl<T> LeaderGuard<T> {
    /// Publish the leader's result (`None` on failure) and wake every
    /// follower. Consumes the guard so it cannot double-publish.
    pub fn complete(mut self, result: Option<T>) {
        self.armed = false;
        self.inner.publish(&self.key, result);
    }
}

impl<T> Drop for LeaderGuard<T> {
    fn drop(&mut self) {
        if self.armed {
            // The leader unwound without publishing (build panicked):
            // release the followers to recompute.
            self.inner.publish(&self.key, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn followers_share_the_leaders_result() {
        let group = Arc::new(SingleFlight::<u64>::new());
        let computed = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let group = Arc::clone(&group);
            let computed = Arc::clone(&computed);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                match group.join("k") {
                    Role::Leader(guard) => {
                        computed.fetch_add(1, Ordering::SeqCst);
                        // Give followers time to park on the condvar.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        guard.complete(Some(42));
                        42
                    }
                    Role::Shared(v) => v,
                    Role::LeaderFailed => panic!("leader must not fail here"),
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("no panics"), 42);
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one computation");
    }

    #[test]
    fn leader_failure_releases_followers_to_recompute() {
        let group = Arc::new(SingleFlight::<u64>::new());
        let Role::Leader(guard) = group.join("k") else { panic!("first joiner leads") };
        let follower = {
            let group = Arc::clone(&group);
            std::thread::spawn(move || matches!(group.join("k"), Role::LeaderFailed))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        guard.complete(None);
        assert!(follower.join().expect("no panic"), "follower sees the failure");
        // The key is free again: the next joiner leads.
        assert!(matches!(group.join("k"), Role::Leader(_)));
    }

    #[test]
    fn dropping_the_guard_without_completing_frees_the_key() {
        let group = SingleFlight::<u64>::new();
        {
            let Role::Leader(_guard) = group.join("k") else { panic!() };
            // _guard dropped here without complete(): simulated panic.
        }
        assert!(matches!(group.join("k"), Role::Leader(_)), "key released on drop");
    }

    #[test]
    fn distinct_keys_do_not_serialize() {
        let group = SingleFlight::<u64>::new();
        let Role::Leader(a) = group.join("a") else { panic!() };
        let Role::Leader(b) = group.join("b") else { panic!() };
        a.complete(Some(1));
        b.complete(Some(2));
        assert!(matches!(group.join("a"), Role::Leader(_)));
    }
}
