//! Fat-Tree simulation assembly and analytics extraction.

use crate::config::{FatTreeConfig, Layer, UpRouting};
use crate::switch::{FtLinks, SwitchLp};
use hrviz_core::dataset::{DataSet, LinkRow, RouterRow, TerminalRow};
use hrviz_network::config::LinkClass;
use hrviz_network::events::NetEvent;
use hrviz_network::terminal::TerminalLp;
use hrviz_network::topology::TerminalId;
use hrviz_network::traffic::{JobMeta, MsgInjection};
use hrviz_network::NO_JOB;
use hrviz_pdes::{Ctx, Engine, Lp, SimTime};

// Hosts dominate the node population; keep the flat in-place layout rather
// than boxing (same trade-off as `hrviz_network::NetNode`).
#[allow(clippy::large_enum_variant)]
enum FtNode {
    Host(TerminalLp),
    Switch(SwitchLp),
}

impl Lp<NetEvent> for FtNode {
    fn on_init(&mut self, ctx: &mut Ctx<'_, NetEvent>) {
        if let FtNode::Host(h) = self {
            h.on_init(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, NetEvent>, ev: NetEvent) {
        match self {
            FtNode::Host(h) => h.on_event(ctx, ev),
            FtNode::Switch(s) => s.on_event(ctx, ev),
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        match self {
            FtNode::Host(h) => h.on_finish(now),
            FtNode::Switch(s) => s.on_finish(now),
        }
    }
}

/// A configured Fat-Tree simulation.
pub struct FatTreeSim {
    cfg: FatTreeConfig,
    routing: UpRouting,
    links: FtLinks,
    packet_bytes: u32,
    vc_buffer_bytes: u32,
    schedules: Vec<Vec<MsgInjection>>,
    jobs: Vec<JobMeta>,
}

impl FatTreeSim {
    /// New simulation with default link parameters.
    pub fn new(cfg: FatTreeConfig, routing: UpRouting) -> FatTreeSim {
        FatTreeSim {
            cfg,
            routing,
            links: FtLinks::default(),
            packet_bytes: 2048,
            vc_buffer_bytes: 16 * 1024,
            schedules: vec![Vec::new(); cfg.num_hosts() as usize],
            jobs: Vec::new(),
        }
    }

    /// The shape.
    pub fn config(&self) -> FatTreeConfig {
        self.cfg
    }

    /// Register a job.
    pub fn add_job(&mut self, meta: JobMeta) -> u16 {
        let id = self.jobs.len() as u16;
        self.jobs.push(meta);
        id
    }

    /// Queue a message.
    pub fn inject(&mut self, msg: MsgInjection) {
        assert!(msg.src.0 < self.cfg.num_hosts(), "source host out of range");
        assert!(msg.dst.0 < self.cfg.num_hosts(), "destination host out of range");
        self.schedules[msg.src.0 as usize].push(msg);
    }

    /// Queue many messages.
    pub fn inject_all(&mut self, msgs: impl IntoIterator<Item = MsgInjection>) {
        for m in msgs {
            self.inject(m);
        }
    }

    /// Run to completion and extract results.
    pub fn run(mut self) -> FatTreeRun {
        let cfg = self.cfg;
        let mut nodes = Vec::with_capacity(cfg.num_lps() as usize);
        for hst in 0..cfg.num_hosts() {
            let mut lp = TerminalLp::new(
                TerminalId(hst),
                cfg.switch_lp(cfg.edge_of_host(hst)),
                self.links.host,
                self.packet_bytes,
                self.vc_buffer_bytes,
                None,
            );
            let mut sched = std::mem::take(&mut self.schedules[hst as usize]);
            sched.sort_by_key(|m| m.time);
            lp.set_schedule(sched);
            nodes.push(FtNode::Host(lp));
        }
        for sw in 0..cfg.num_switches() {
            nodes.push(FtNode::Switch(SwitchLp::new(
                cfg,
                sw,
                self.routing,
                &self.links,
                1,
                self.vc_buffer_bytes,
                None,
            )));
        }
        for (j, job) in self.jobs.iter().enumerate() {
            for &t in &job.terminals {
                match &mut nodes[t.0 as usize] {
                    FtNode::Host(h) => h.job = j as u16,
                    FtNode::Switch(_) => unreachable!(),
                }
            }
        }
        // Lookahead = min link latency.
        let lookahead =
            self.links.host.latency.min(self.links.pod.latency).min(self.links.core.latency);
        let collector = hrviz_obs::get();
        let span = collector.span("sim/fattree_run");
        let mut engine = Engine::new(nodes, lookahead);
        engine.set_collector(collector);
        engine.run_to_completion();
        let stats = engine.stats();
        span.end();
        FatTreeRun {
            cfg,
            jobs: self.jobs,
            nodes: engine.into_lps(),
            end_time: stats.end_time,
            events_processed: stats.events_processed,
        }
    }
}

/// Results of a Fat-Tree run.
pub struct FatTreeRun {
    cfg: FatTreeConfig,
    jobs: Vec<JobMeta>,
    nodes: Vec<FtNode>,
    /// Simulated end time.
    pub end_time: SimTime,
    /// Events processed.
    pub events_processed: u64,
}

impl FatTreeRun {
    /// Total bytes delivered to hosts.
    pub fn delivered_bytes(&self) -> u64 {
        self.hosts().map(|h| h.stats.recv_bytes).sum()
    }

    /// Total bytes injected.
    pub fn injected_bytes(&self) -> u64 {
        self.hosts().map(|h| h.stats.injected_bytes).sum()
    }

    fn hosts(&self) -> impl Iterator<Item = &TerminalLp> {
        self.nodes.iter().filter_map(|n| match n {
            FtNode::Host(h) => Some(h),
            FtNode::Switch(_) => None,
        })
    }

    fn switches(&self) -> impl Iterator<Item = &SwitchLp> {
        self.nodes.iter().filter_map(|n| match n {
            FtNode::Switch(s) => Some(s),
            FtNode::Host(_) => None,
        })
    }

    /// Mean packet latency (ns) over all delivered packets.
    pub fn mean_latency_ns(&self) -> f64 {
        let (mut sum, mut n) = (0u64, 0u64);
        for h in self.hosts() {
            sum += h.stats.latency_sum_ns;
            n += h.stats.packets_finished;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Flatten into the analytics tables: pods become groups, switch
    /// positions become ranks, pod links the local class and core links
    /// the global class — the *same* projection scripts, detail views and
    /// renderers as the Dragonfly then apply unchanged.
    pub fn to_dataset(&self) -> DataSet {
        let cfg = self.cfg;
        let mut routers = Vec::new();
        let mut local_links = Vec::new();
        let mut global_links = Vec::new();
        // Dominant job per edge switch (for link job attribution).
        let host_job: Vec<u16> = self.hosts().map(|h| h.job).collect();
        let switch_job = |sw: u32| -> u32 {
            match cfg.classify(sw) {
                (Layer::Edge, _, _) => {
                    let h = cfg.half();
                    let mut tally = std::collections::HashMap::new();
                    for p in 0..h {
                        let j = host_job[(sw * h + p) as usize];
                        if j != NO_JOB {
                            *tally.entry(j).or_insert(0u32) += 1;
                        }
                    }
                    tally
                        .into_iter()
                        .max_by_key(|&(_, n)| n)
                        .map(|(j, _)| j as u32)
                        .unwrap_or(self.jobs.len() as u32)
                }
                _ => self.jobs.len() as u32,
            }
        };
        for s in self.switches() {
            let (group, rank) = cfg.analytics_coords(s.id);
            let mut row = RouterRow {
                router: s.id,
                group,
                rank,
                job: switch_job(s.id),
                global_traffic: 0.0,
                global_sat: 0.0,
                local_traffic: 0.0,
                local_sat: 0.0,
            };
            for p in s.ports() {
                let peer_sw = p.peer_lp.0.saturating_sub(cfg.num_hosts());
                let (dst_group, dst_rank) = cfg.analytics_coords(peer_sw);
                let link = LinkRow {
                    src_router: s.id,
                    src_group: group,
                    src_rank: rank,
                    src_port: p.class_idx,
                    dst_router: peer_sw,
                    dst_group,
                    dst_rank,
                    dst_port: p.peer_port,
                    src_job: switch_job(s.id),
                    dst_job: switch_job(peer_sw),
                    traffic: p.traffic as f64,
                    sat: p.sat_ns as f64,
                };
                match p.class {
                    LinkClass::Local => {
                        row.local_traffic += link.traffic;
                        row.local_sat += link.sat;
                        local_links.push(link);
                    }
                    LinkClass::Global => {
                        row.global_traffic += link.traffic;
                        row.global_sat += link.sat;
                        global_links.push(link);
                    }
                    LinkClass::Terminal => {}
                }
            }
            routers.push(row);
        }
        let terminals: Vec<TerminalRow> = self
            .hosts()
            .map(|h| {
                let edge = cfg.edge_of_host(h.id.0);
                let (group, rank) = cfg.analytics_coords(edge);
                TerminalRow {
                    terminal: h.id.0,
                    router: edge,
                    group,
                    rank,
                    port: cfg.host_port(h.id.0),
                    job: if h.job == NO_JOB { self.jobs.len() as u32 } else { h.job as u32 },
                    data_size: h.stats.injected_bytes as f64,
                    recv_bytes: h.stats.recv_bytes as f64,
                    busy: h.stats.busy_ns as f64,
                    sat: h.stats.sat_ns as f64,
                    packets_finished: h.stats.packets_finished as f64,
                    packets_sent: h.stats.packets_sent as f64,
                    avg_latency: h.stats.avg_latency_ns(),
                    avg_hops: h.stats.avg_hops(),
                }
            })
            .collect();
        DataSet::from_tables(
            self.jobs.iter().map(|j| j.name.clone()).collect(),
            routers,
            local_links,
            global_links,
            terminals,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_core::{build_view, EntityKind, Field, LevelSpec, ProjectionSpec, RibbonSpec};
    use rand::{Rng, SeedableRng};

    fn msg(t: u64, src: u32, dst: u32, bytes: u64) -> MsgInjection {
        MsgInjection { time: SimTime(t), src: TerminalId(src), dst: TerminalId(dst), bytes, job: 0 }
    }

    #[test]
    fn single_message_crosses_the_tree() {
        let cfg = FatTreeConfig::new(4);
        let mut sim = FatTreeSim::new(cfg, UpRouting::Ecmp);
        sim.inject(msg(0, 0, 15, 10_000)); // pod 0 → pod 3: full up/down
        let run = sim.run();
        assert_eq!(run.delivered_bytes(), 10_000);
        let ds = run.to_dataset();
        // 5 switch hops: edge, agg, core, agg, edge.
        assert_eq!(ds.terminals[15].avg_hops, 5.0);
        assert!(ds.terminals[15].avg_latency > 0.0);
    }

    #[test]
    fn same_edge_stays_local() {
        let cfg = FatTreeConfig::new(4);
        let mut sim = FatTreeSim::new(cfg, UpRouting::Ecmp);
        sim.inject(msg(0, 0, 1, 4096)); // same edge switch
        let run = sim.run();
        let ds = run.to_dataset();
        assert_eq!(ds.terminals[1].avg_hops, 1.0);
        // No pod or core link carries traffic.
        assert!(ds.local_links.iter().all(|l| l.traffic == 0.0));
        assert!(ds.global_links.iter().all(|l| l.traffic == 0.0));
    }

    #[test]
    fn conservation_under_random_traffic_both_routings() {
        for routing in [UpRouting::Ecmp, UpRouting::Adaptive] {
            let cfg = FatTreeConfig::new(4);
            let mut sim = FatTreeSim::new(cfg, routing);
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            let n = cfg.num_hosts();
            let mut expect = 0u64;
            for src in 0..n {
                for k in 0..20u64 {
                    let dst = (src + 1 + rng.gen_range(0..n - 1)) % n;
                    sim.inject(msg(k * 500, src, dst, 4096));
                    expect += 4096;
                }
            }
            let run = sim.run();
            assert_eq!(run.delivered_bytes(), expect, "{}", routing.name());
        }
    }

    #[test]
    fn adaptive_balances_better_than_ecmp_under_incast_stripes() {
        // All hosts of pod 0 send to pod 1 continuously: ECMP hashing
        // collides on up-links, adaptive levels them.
        let run_with = |routing| {
            let cfg = FatTreeConfig::new(4);
            let mut sim = FatTreeSim::new(cfg, routing);
            for src in 0..4u32 {
                for k in 0..40u64 {
                    sim.inject(msg(k * 100, src, 4 + src, 16 * 1024));
                }
            }
            sim.run()
        };
        let ecmp = run_with(UpRouting::Ecmp);
        let ada = run_with(UpRouting::Adaptive);
        assert!(
            ada.mean_latency_ns() <= ecmp.mean_latency_ns() * 1.05,
            "adaptive {} should not lose to ecmp {}",
            ada.mean_latency_ns(),
            ecmp.mean_latency_ns()
        );
        assert!(ada.end_time <= ecmp.end_time);
    }

    #[test]
    fn dataset_feeds_the_same_analytics_stack() {
        let cfg = FatTreeConfig::new(4);
        let mut sim = FatTreeSim::new(cfg, UpRouting::Adaptive);
        let all: Vec<TerminalId> = (0..cfg.num_hosts()).map(TerminalId).collect();
        sim.add_job(JobMeta { name: "ft".into(), terminals: all });
        for src in 0..16u32 {
            sim.inject(MsgInjection {
                time: SimTime::ZERO,
                src: TerminalId(src),
                dst: TerminalId((src + 8) % 16),
                bytes: 8192,
                job: 0,
            });
        }
        let run = sim.run();
        let ds = run.to_dataset();
        // The Dragonfly projection machinery works unchanged: pods as
        // groups, pod links bundled as ribbons.
        let spec = ProjectionSpec::new(vec![
            LevelSpec::new(EntityKind::Router)
                .aggregate(&[Field::GroupId])
                .color(Field::TotalSatTime)
                .size(Field::TotalTraffic),
            LevelSpec::new(EntityKind::Terminal)
                .aggregate(&[Field::GroupId, Field::RouterRank])
                .color(Field::AvgLatency),
        ])
        .ribbons(RibbonSpec::new(EntityKind::GlobalLink));
        let view = build_view(&ds, &spec).expect("fat-tree dataset builds views");
        // 4 pods + the core pseudo-group.
        assert_eq!(view.rings[0].items.len(), 5);
        assert!(!view.ribbons.is_empty(), "pod-to-core ribbons present");
        // Ribbons connect pods to the core pseudo-group only (all global
        // links have a core endpoint).
        let core_item = 4;
        assert!(view.ribbons.iter().all(|r| r.a == core_item || r.b == core_item));
        // Job stamping flows through.
        assert!(ds.terminals.iter().all(|t| t.job == 0));
    }

    #[test]
    fn pods_as_groups_roll_up_correctly() {
        let cfg = FatTreeConfig::new(4);
        let mut sim = FatTreeSim::new(cfg, UpRouting::Ecmp);
        sim.inject(msg(0, 0, 15, 64 * 1024));
        let ds = sim.run().to_dataset();
        // 20 switches → 20 router rows; cores in pseudo-group 4.
        assert_eq!(ds.routers.len(), 20);
        let core_rows: Vec<_> = ds.routers.iter().filter(|r| r.group == 4).collect();
        assert_eq!(core_rows.len(), 4);
        // Per-packet ECMP spreads the 32-packet flow over the cores, but
        // every byte crosses the core layer exactly once.
        let used: Vec<_> = core_rows.iter().filter(|r| r.global_traffic > 0.0).collect();
        assert!(!used.is_empty() && used.len() <= 4);
        let core_bytes: f64 = core_rows.iter().map(|r| r.global_traffic).sum();
        assert_eq!(core_bytes, 64.0 * 1024.0);
    }
}
