//! The workspace metric manifest — the single registry every counter,
//! gauge and histogram name must appear in.
//!
//! Three consumers keep it honest:
//!
//! * [`crate::prom::render_prometheus`] emits `# HELP` / `# TYPE` lines
//!   from the manifest, so `/metricsz` documents what it exposes;
//! * `hrviz-lint`'s counter-drift pass cross-checks every write site in
//!   the workspace against this list (and this list against DESIGN.md's
//!   telemetry table) — an increment of an unregistered name, or a
//!   registered name nothing increments, fails the gate;
//! * DESIGN.md's "Telemetry reference" table is generated from the same
//!   triples, one row per entry.
//!
//! Adding a metric therefore takes three edits (write site, this table,
//! the DESIGN.md row) and the lint gate refuses anything less.

/// What a metric name denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count (`counter_add`).
    Counter,
    /// Last-or-max value (`gauge_set` / `gauge_max`).
    Gauge,
    /// Bucketed distribution (`hist_record` et al).
    Hist,
}

impl MetricKind {
    /// Lower-case name used in DESIGN.md rows and lint diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Hist => "hist",
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The name write sites use (`area/metric`).
    pub name: &'static str,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// One-line meaning, emitted as the Prometheus `# HELP` text.
    pub help: &'static str,
}

const fn c(name: &'static str, help: &'static str) -> MetricDef {
    MetricDef { name, kind: MetricKind::Counter, help }
}

const fn g(name: &'static str, help: &'static str) -> MetricDef {
    MetricDef { name, kind: MetricKind::Gauge, help }
}

const fn h(name: &'static str, help: &'static str) -> MetricDef {
    MetricDef { name, kind: MetricKind::Hist, help }
}

/// Every metric the workspace writes, sorted by name.
pub const METRICS: &[MetricDef] = &[
    c("core/agg_cache_hit", "aggregate-cache lookups answered without projecting"),
    c("core/agg_cache_miss", "aggregate-cache lookups that ran the projection pipeline"),
    c("lint/cache_hits", "lint files answered from the incremental cache without re-parsing"),
    c("lint/files_parsed", "lint files tokenized and analyzed this run"),
    c("net/bytes_delivered", "payload bytes delivered to terminals"),
    c("net/bytes_injected", "payload bytes injected by workloads"),
    c("net/credit_stalls", "flit sends deferred for lack of credits"),
    c("net/fault_events", "fault-schedule events applied to the topology"),
    c("net/packets_delivered", "packets that reached their destination terminal"),
    c("net/packets_dropped", "packets dropped at faulted links/routers"),
    c("net/packets_injected", "packets entering the network"),
    c("net/packets_rerouted", "packets re-routed around degraded links"),
    h("net/vc_occupancy", "per-sample virtual-channel buffer occupancy fraction"),
    c("obs/flight_dumps", "flight-recorder ring dumps triggered by failures"),
    c("pdes/barrier_wait_ns", "nanoseconds partitions spent waiting at window barriers, summed"),
    g("pdes/events_per_sec", "sustained event rate of the last engine drain"),
    c("pdes/events_processed", "events dequeued and handed to an Lp"),
    c("pdes/events_scheduled", "events enqueued into the calendar"),
    g("pdes/peak_queue_depth", "high-water mark of the pending event queue"),
    c("pdes/watchdog_trips", "stall/leak watchdog activations"),
    c("pdes/windows", "conservative-engine synchronization windows executed"),
    c("serve/accept_errors", "listener accept() failures"),
    c("serve/cache_hit", "response-cache hits"),
    c("serve/cache_miss", "response-cache misses"),
    c("serve/coalesced", "requests that joined an in-flight single-flight build"),
    c("serve/corrupt_run", "requests rejected because the run failed integrity checks"),
    c("serve/http_errors", "responses with a 4xx/5xx status"),
    h("serve/latency_us", "request latency in microseconds"),
    c("serve/not_modified", "conditional requests answered 304"),
    c("serve/panics", "worker panics caught at the request boundary"),
    c("serve/requests", "HTTP requests accepted"),
    c("serve/shed", "requests shed with 503 under overload"),
    c("sim/checkpoint_restores", "engine restores from a virtual-time checkpoint"),
    c("sim/checkpoints", "engine checkpoints written at virtual-time marks"),
    c("store/fsck_orphans", "fsck-detected runs with no terminal state"),
    c("store/fsck_runs", "runs examined by fsck"),
    c("store/fsck_tmp_removed", "abandoned temp files removed by fsck"),
    c("store/quarantined", "torn runs moved to quarantine"),
    c("stream/runs_aborted", "runs cancelled by an early-abort policy"),
    c("stream/slices_sealed", "telemetry slices sealed into run stores"),
    c("stream/sse_events", "SSE frames (slices + terminal events) sent to watchers"),
    c("stream/sse_watchers", "SSE watcher connections handed to the stream hub"),
    c("sweep/generation_recovered", "store generation counters rebuilt after crash"),
    c("sweep/resumed_runs", "runs skipped by --resume because the store had them"),
    c("sweep/retries", "sweep runs retried after a worker failure"),
    c("sweep/store_hit", "sweep runs answered from the store without simulating"),
    c("sweep/store_miss", "sweep runs that had to simulate"),
];

/// Look a metric up by name.
pub fn metric(name: &str) -> Option<&'static MetricDef> {
    METRICS.iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_is_sorted_and_unique() {
        for pair in METRICS.windows(2) {
            assert!(pair[0].name < pair[1].name, "{} !< {}", pair[0].name, pair[1].name);
        }
    }

    #[test]
    fn every_entry_has_help_text() {
        for m in METRICS {
            assert!(!m.help.is_empty(), "{} lacks help text", m.name);
        }
    }

    #[test]
    fn lookup_finds_registered_names_only() {
        assert!(metric("serve/requests").is_some());
        assert_eq!(metric("serve/requests").map(|m| m.kind), Some(MetricKind::Counter));
        assert!(metric("no/such_metric").is_none());
    }
}
