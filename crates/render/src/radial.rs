//! Rendering of hierarchical radial projection views (paper Fig. 4c / 5 /
//! 7–11 / 13).
//!
//! Ring bands stack outward from a hollow center that hosts the bundled
//! link ribbons; partition arcs with labels sit outside the last ring.
//! Plot types map to geometry as follows:
//!
//! * 1-D heatmap — the item's full band sector, filled by color.
//! * bar — sector whose radial extent grows with the size encoding.
//! * 2-D heatmap — cell positioned by (x → angle, y → radius), filled.
//! * scatter — dot at (x → angle, y → radius), radius from size.

use crate::svg::{annular_sector, polar, ribbon_path, SvgDoc};
use hrviz_core::{Color, PlotKind, ProjectionView};

/// Geometry/layout options for the radial rendering.
#[derive(Clone, Copy, Debug)]
pub struct RadialLayout {
    /// Total SVG size (the view is square).
    pub size: f64,
    /// Radius of the hollow center (ribbon area).
    pub center_radius: f64,
    /// Radial thickness of each ring band.
    pub ring_width: f64,
    /// Gap between rings.
    pub ring_gap: f64,
    /// Maximum ribbon width in pixels.
    pub max_ribbon_px: f64,
}

impl Default for RadialLayout {
    fn default() -> Self {
        RadialLayout {
            size: 760.0,
            center_radius: 150.0,
            ring_width: 56.0,
            ring_gap: 6.0,
            max_ribbon_px: 26.0,
        }
    }
}

impl RadialLayout {
    /// Inner and outer radius of ring `i`.
    pub fn ring_band(&self, i: usize) -> (f64, f64) {
        let r0 = self.center_radius + i as f64 * (self.ring_width + self.ring_gap);
        (r0, r0 + self.ring_width)
    }
}

/// Render a projection view to SVG.
pub fn render_radial(view: &ProjectionView, layout: &RadialLayout, title: &str) -> String {
    let _span = hrviz_obs::get().span("render/radial");
    let mut doc = SvgDoc::new(layout.size, layout.size + 28.0);
    let c = layout.size / 2.0;
    let cy = c + 24.0;
    if !title.is_empty() {
        doc.text(c, 16.0, 14.0, "middle", title);
    }

    // --- ribbons (painted first, under everything) ---
    doc.open_group(None, Some("ribbons"));
    let ring0_items = view.rings.first().map(|r| r.items.as_slice()).unwrap_or(&[]);
    for rb in &view.ribbons {
        let (Some(a), Some(b)) = (ring0_items.get(rb.a), ring0_items.get(rb.b)) else {
            continue;
        };
        // Ribbon footprint: a slice of each end's span, scaled by size.
        let frac = 0.15 + 0.8 * rb.size;
        let slice = |span: (f64, f64)| {
            let mid = (span.0 + span.1) / 2.0;
            let half = (span.1 - span.0) * 0.5 * frac * 0.9;
            (mid - half, mid + half)
        };
        let d = ribbon_path(c, cy, layout.center_radius - 2.0, slice(a.span), slice(b.span));
        doc.path(&d, Some(rb.color), Some((Color::rgb(120, 120, 120), 0.3)), 0.75);
    }
    doc.close_group();

    // --- rings ---
    for (ri, ring) in view.rings.iter().enumerate() {
        let (r0, r1) = layout.ring_band(ri);
        doc.open_group(None, Some(&format!("ring ring-{ri} {}", ring.entity.name())));
        let stroke = ring.border.then_some((Color::rgb(200, 200, 200), 0.4));
        // Faint band background so empty rings remain visible.
        doc.path(
            &annular_sector(c, cy, r0, r1, 0.0, 0.49999),
            Some(Color::rgb(248, 248, 248)),
            None,
            1.0,
        );
        doc.path(
            &annular_sector(c, cy, r0, r1, 0.5, 0.99999),
            Some(Color::rgb(248, 248, 248)),
            None,
            1.0,
        );
        for item in &ring.items {
            let (a0, a1) = item.span;
            match ring.plot {
                PlotKind::Heatmap1D => {
                    doc.path(&annular_sector(c, cy, r0, r1, a0, a1), Some(item.fill), stroke, 1.0);
                }
                PlotKind::Bar => {
                    let h = item.size.unwrap_or(1.0);
                    let top = r0 + (r1 - r0) * h.max(0.02);
                    doc.path(&annular_sector(c, cy, r0, top, a0, a1), Some(item.fill), stroke, 1.0);
                }
                PlotKind::Heatmap2D => {
                    // x → angle, y → radial cell position within the band.
                    let ang = item.x.unwrap_or((a0 + a1) / 2.0);
                    let yy = item.y.unwrap_or(0.5);
                    let cell_a = 0.5 / ring.items.len().max(8) as f64;
                    let cell_r = (r1 - r0) * 0.22;
                    let rc = r0 + (r1 - r0 - cell_r) * yy;
                    doc.path(
                        &annular_sector(c, cy, rc, rc + cell_r, ang, ang + cell_a),
                        Some(item.fill),
                        stroke,
                        1.0,
                    );
                }
                PlotKind::Scatter => {
                    let ang = item.x.unwrap_or((a0 + a1) / 2.0);
                    let yy = item.y.unwrap_or(0.5);
                    let rr = r0 + (r1 - r0) * yy.clamp(0.02, 0.98);
                    let (px, py) = polar(c, cy, rr, ang);
                    let radius = 1.2 + 3.3 * item.size.unwrap_or(0.3);
                    doc.circle(px, py, radius, item.fill, None);
                }
            }
        }
        doc.close_group();
    }

    // --- partition arcs + labels outside the last ring ---
    if !view.arcs.is_empty() {
        let (_, last_r1) = layout.ring_band(view.rings.len().saturating_sub(1));
        let r0 = last_r1 + 6.0;
        let r1 = r0 + 10.0;
        doc.open_group(None, Some("arcs"));
        for (i, arc) in view.arcs.iter().enumerate() {
            let (a0, a1) = arc.span;
            // Leave a hairline gap between arcs.
            let gap = ((a1 - a0) * 0.02).min(0.002);
            doc.path(
                &annular_sector(c, cy, r0, r1, a0 + gap, a1 - gap),
                Some(Color::rgb(80 + ((i * 37) % 120) as u8, 90, 140)),
                None,
                0.85,
            );
            if !arc.label.is_empty() && (a1 - a0) > 0.01 {
                let (tx, ty) = polar(c, cy, r1 + 10.0, (a0 + a1) / 2.0);
                doc.text(tx, ty, 9.0, "middle", &arc.label);
            }
        }
        doc.close_group();
    }

    doc.finish()
}

/// Render several views side by side with per-view subtitles (the paper's
/// comparison figures, e.g. minimal vs adaptive in Fig. 8/9).
pub fn render_radial_row(
    views: &[(&ProjectionView, &str)],
    layout: &RadialLayout,
    title: &str,
) -> String {
    let n = views.len().max(1) as f64;
    let mut doc = SvgDoc::new(layout.size * n, layout.size + 52.0);
    if !title.is_empty() {
        doc.text(layout.size * n / 2.0, 18.0, 15.0, "middle", title);
    }
    for (i, (view, subtitle)) in views.iter().enumerate() {
        let inner = render_radial(view, layout, subtitle);
        // Embed by stripping the outer <svg> wrapper.
        let body = inner
            .lines()
            .skip(2) // <svg ...> + background rect
            .take_while(|l| !l.starts_with("</svg>"))
            .collect::<Vec<_>>()
            .join("\n");
        doc.open_group(Some(&format!("translate({},26)", i as f64 * layout.size)), None);
        doc.comment(&format!("panel {i}: {subtitle}"));
        push_raw(&mut doc, &body);
        doc.close_group();
    }
    doc.finish()
}

// SvgDoc keeps its body private; append raw markup through a small shim.
fn push_raw(doc: &mut SvgDoc, raw: &str) {
    doc.raw(raw);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_core::{
        build_view, dataset::TerminalRow, DataSet, EntityKind, Field, LevelSpec, ProjectionSpec,
        RibbonSpec,
    };

    fn view() -> ProjectionView {
        let mut d = DataSet { jobs: vec!["a".into()], ..DataSet::default() };
        for i in 0..8u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i / 2,
                group: i / 4,
                rank: (i / 2) % 2,
                port: i % 2,
                job: 0,
                data_size: (i + 1) as f64,
                recv_bytes: 0.0,
                busy: 0.0,
                sat: i as f64,
                packets_finished: 1.0,
                packets_sent: 1.0,
                avg_latency: 10.0,
                avg_hops: 3.0,
            });
        }
        for (a, b) in [(0u32, 1u32), (1, 0), (2, 3), (3, 2), (0, 2), (2, 0)] {
            d.local_links.push(hrviz_core::LinkRow {
                src_router: a,
                src_group: a / 2,
                src_rank: a % 2,
                src_port: b % 2,
                dst_router: b,
                dst_group: b / 2,
                dst_rank: b % 2,
                dst_port: a % 2,
                src_job: 0,
                dst_job: 0,
                traffic: 100.0 * (a + b) as f64,
                sat: 10.0,
            });
        }
        let spec = ProjectionSpec::new(vec![
            LevelSpec::new(EntityKind::Terminal).aggregate(&[Field::GroupId]).color(Field::SatTime),
            LevelSpec::new(EntityKind::Terminal)
                .aggregate(&[Field::RouterId])
                .color(Field::SatTime)
                .size(Field::DataSize),
            LevelSpec::new(EntityKind::Terminal)
                .color(Field::SatTime)
                .size(Field::DataSize)
                .x(Field::AvgHops)
                .y(Field::DataSize),
        ])
        .ribbons(RibbonSpec::new(EntityKind::LocalLink));
        build_view(&d, &spec).unwrap()
    }

    #[test]
    fn radial_svg_contains_all_layers() {
        let v = view();
        let svg = render_radial(&v, &RadialLayout::default(), "test view");
        assert!(svg.contains("class=\"ribbons\""));
        assert!(svg.contains("class=\"ring ring-0 terminal\""));
        assert!(svg.contains("class=\"ring ring-2 terminal\""));
        assert!(svg.contains("class=\"arcs\""));
        assert!(svg.contains("test view"));
        // 8 scatter dots on the outer ring.
        assert_eq!(svg.matches("<circle").count(), 8);
        // Well-formed.
        assert_eq!(svg.matches("<g").count(), svg.matches("</g>").count());
    }

    #[test]
    fn ribbons_rendered_between_groups() {
        let v = view();
        assert!(!v.ribbons.is_empty());
        let svg = render_radial(&v, &RadialLayout::default(), "");
        let ribbon_part = svg.split("class=\"ribbons\"").nth(1).unwrap();
        let ribbon_paths = ribbon_part.split("</g>").next().unwrap().matches("<path").count();
        assert_eq!(ribbon_paths, v.ribbons.len());
    }

    #[test]
    fn ring_bands_stack_outward() {
        let l = RadialLayout::default();
        let (a0, a1) = l.ring_band(0);
        let (b0, _) = l.ring_band(1);
        assert!(a1 <= b0);
        assert_eq!(a0, l.center_radius);
    }

    #[test]
    fn row_rendering_embeds_panels() {
        let v = view();
        let svg =
            render_radial_row(&[(&v, "left"), (&v, "right")], &RadialLayout::default(), "cmp");
        assert!(svg.contains("panel 0: left"));
        assert!(svg.contains("panel 1: right"));
        assert!(svg.contains("cmp"));
        assert_eq!(svg.matches("<svg").count(), 1, "panels must be inlined");
        assert_eq!(svg.matches("<g").count(), svg.matches("</g>").count());
    }
}
