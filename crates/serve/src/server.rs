//! The server core: bind, accept, dispatch to the pool, shed, drain.
//!
//! The accept loop runs on the caller's thread with a blocking listener
//! (no polling, so accepted connections pay no poll latency);
//! [`ServerHandle::shutdown`] sets the stop flag and then connects to the
//! listener itself to wake a blocked `accept`. Each accepted connection
//! is counted against the connection cap and handed to the bounded
//! [`WorkerPool`]; when either bound is hit the connection is answered
//! `503` + `Retry-After` inline and closed — overload never queues
//! unboundedly. On shutdown (signal or handle) the listener stops
//! accepting, the pool drains every request it already accepted, and
//! [`Server::serve`] returns a [`ServeReport`].

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hrviz_faults::HrvizError;
use hrviz_sweep::RunStore;

use crate::handlers::App;
use crate::http::{read_request, Response};
use crate::pool::WorkerPool;
use crate::router::{route, Route};

/// Server tunables, mirroring the CLI flags.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, `HOST:PORT` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accepted-but-unstarted requests the queue may hold.
    pub queue_depth: usize,
    /// Connections admitted at once (queued + in flight).
    pub max_conns: usize,
    /// Per-connection read/write timeout, milliseconds. Also bounds how
    /// long an idle keep-alive connection may sit between requests.
    pub timeout_ms: u64,
    /// Requests served per connection before the server closes it
    /// (keep-alive cap; 1 restores one-request-per-connection).
    pub keepalive_requests: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7171".into(),
            workers: 4,
            queue_depth: 32,
            max_conns: 256,
            timeout_ms: 5000,
            keepalive_requests: 1000,
        }
    }
}

impl ServeConfig {
    /// Reject configurations that cannot serve anything.
    pub fn validate(&self) -> Result<(), HrvizError> {
        if self.workers == 0 {
            return Err(HrvizError::config("--workers must be at least 1"));
        }
        if self.queue_depth == 0 {
            return Err(HrvizError::config("--queue-depth must be at least 1"));
        }
        if self.max_conns < self.workers {
            return Err(HrvizError::config("--max-conns must be at least --workers"));
        }
        if self.timeout_ms == 0 {
            return Err(HrvizError::config("--timeout-ms must be at least 1"));
        }
        if self.keepalive_requests == 0 {
            return Err(HrvizError::config("--keepalive-requests must be at least 1"));
        }
        Ok(())
    }
}

/// What a serve loop did before it drained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests handled (including error responses).
    pub requests: u64,
    /// Connections shed with `503`.
    pub shed: u64,
}

/// Remote control for a running server (cloneable, signal-safe to use
/// from a ctrl-c callback).
#[derive(Clone, Debug)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Ask the serve loop to stop accepting and drain. Connects to the
    /// listener to wake a blocked `accept` immediately.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A bound-but-not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    cfg: ServeConfig,
    app: Arc<App>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind `cfg.addr` over an opened store. Bind failures surface as
    /// [`HrvizError::Io`] (exit code 4 at the CLI), config mistakes as
    /// [`HrvizError::Config`].
    pub fn bind(cfg: ServeConfig, store: RunStore) -> Result<Server, HrvizError> {
        cfg.validate()?;
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| HrvizError::io(format!("bind {}", cfg.addr), e))?;
        let addr = listener.local_addr().map_err(|e| HrvizError::io("local_addr", e))?;
        Ok(Server {
            listener,
            addr,
            cfg,
            app: Arc::new(App::new(store)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, HrvizError> {
        Ok(self.addr)
    }

    /// A handle that can stop this server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { stop: Arc::clone(&self.stop), addr: self.addr }
    }

    /// Accept and serve until shutdown is requested, then drain in-flight
    /// requests and return the report.
    pub fn serve(self) -> Result<ServeReport, HrvizError> {
        let obs = hrviz_obs::get();
        // Flight-recorder dumps (watchdog trips, worker panics, shed
        // bursts) land next to the store unless the embedder already
        // chose a directory.
        obs.flight_dir_default(&self.app.store().root().join("flight"));
        let live = Arc::new(AtomicUsize::new(0));
        // Report counters are per-server, not read back from the global
        // collector — several servers (or tests) in one process must not
        // see each other's traffic.
        let requests = Arc::new(AtomicU64::new(0));
        let shed_count = Arc::new(AtomicU64::new(0));
        let app = Arc::clone(&self.app);
        let live_in_pool = Arc::clone(&live);
        let requests_in_pool = Arc::clone(&requests);
        let stop_in_pool = Arc::clone(&self.stop);
        let keepalive_requests = self.cfg.keepalive_requests;
        let pool = WorkerPool::new(self.cfg.workers, self.cfg.queue_depth, move |stream| {
            let served = handle_connection(&app, stream, keepalive_requests, &stop_in_pool);
            if served > 0 {
                requests_in_pool.fetch_add(served, Ordering::SeqCst);
            }
            live_in_pool.fetch_sub(1, Ordering::SeqCst);
        });
        let timeout = Duration::from_millis(self.cfg.timeout_ms);

        while !self.stop.load(Ordering::SeqCst) {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    // Transient accept errors (EMFILE under pressure,
                    // resets): log and keep serving.
                    obs.counter_add("serve/accept_errors", 1);
                    obs.log(hrviz_obs::LogLevel::Warn, &format!("accept failed: {e}"));
                    std::thread::sleep(Duration::from_millis(5));
                    continue;
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                break; // the shutdown wake-up connection
            }
            let _ = stream.set_read_timeout(Some(timeout));
            let _ = stream.set_write_timeout(Some(timeout));

            if live.load(Ordering::SeqCst) >= self.cfg.max_conns {
                let n = shed_count.fetch_add(1, Ordering::SeqCst) + 1;
                shed(stream);
                dump_on_shed_burst(n);
                continue;
            }
            live.fetch_add(1, Ordering::SeqCst);
            if let Err((_why, stream)) = pool.try_submit(stream) {
                live.fetch_sub(1, Ordering::SeqCst);
                let n = shed_count.fetch_add(1, Ordering::SeqCst) + 1;
                shed(stream);
                dump_on_shed_burst(n);
            }
        }

        // Stop accepting (listener drops with `self`), finish what was
        // already accepted. Drain ends with a final snapshot + sink
        // flush so a SIGINT-initiated shutdown never loses trace lines.
        pool.shutdown();
        // Close any SSE watchers still tailing: their sockets belong to
        // the hub thread, not the pool, so the drain above cannot see
        // them.
        self.app.hub().shutdown();
        if let Err(e) = obs.finalize() {
            obs.log(hrviz_obs::LogLevel::Warn, &format!("trace flush on shutdown failed: {e}"));
        }
        Ok(ServeReport {
            requests: requests.load(Ordering::SeqCst),
            shed: shed_count.load(Ordering::SeqCst),
        })
    }
}

/// Sheds per flight-recorder dump: sustained overload writes one dump
/// every `SHED_BURST` rejected connections, capturing the ring around
/// the burst without turning overload into disk pressure.
const SHED_BURST: u64 = 32;

/// On every `SHED_BURST`-th shed of this server's lifetime, dump the
/// flight-recorder ring (best effort — overload must not be compounded
/// by I/O errors).
fn dump_on_shed_burst(shed_so_far: u64) {
    if shed_so_far.is_multiple_of(SHED_BURST) {
        let _ = hrviz_obs::get().flight_dump("shed_burst");
    }
}

/// Answer `503 Service Unavailable` + `Retry-After` inline on the accept
/// thread and close. Never blocks longer than the write timeout already
/// set on the stream.
fn shed(stream: TcpStream) {
    hrviz_obs::get().counter_add("serve/shed", 1);
    let resp = Response::error(503, "server at capacity, retry shortly").header("Retry-After", "1");
    respond_and_close(stream, &resp);
}

/// Write `resp`, send FIN, and drain the unparsed remainder of the
/// request (bounded) before dropping. Closing with unread bytes in the
/// receive buffer makes the kernel send RST, which can destroy the
/// response before the peer reads it — error and shed replies would
/// vanish exactly when they matter.
fn respond_and_close(mut stream: TcpStream, resp: &Response) {
    let _ = resp.write_to(&mut stream, true);
    graceful_close(stream);
}

/// FIN, then drain whatever the peer already sent (bounded) so the close
/// never turns into an RST that destroys the in-flight response.
fn graceful_close(mut stream: TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut sink = [0u8; 1024];
    let mut drained = 0usize;
    while drained < 16 * 1024 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Responses buffered per connection before forcing a socket write, even
/// with further pipelined requests pending.
const WRITE_BATCH: usize = 64 * 1024;

/// Serve one connection until the peer closes, asks for `Connection:
/// close`, hits the per-connection request cap, idles past the read
/// timeout, or the server begins shutdown. Returns the number of
/// requests answered (including error responses).
///
/// Responses are serialized into a per-connection buffer and written to
/// the socket only when the read side has no pipelined bytes pending (or
/// the buffer passes [`WRITE_BATCH`]) — a pipelining client gets its
/// whole burst in one write instead of one syscall per response.
fn handle_connection(app: &App, stream: TcpStream, max_requests: usize, stop: &AtomicBool) -> u64 {
    // Small responses must not wait on Nagle for the next batch.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return 0;
    };
    let mut reader = std::io::BufReader::with_capacity(16 * 1024, read_half);
    let mut out: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut served = 0u64;
    let max_requests = max_requests.max(1);
    for n in 1..=max_requests {
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                // An SSE request takes over the socket: flush whatever
                // pipelined responses precede it, hand the connection to
                // the stream hub, and return this worker to the pool.
                // The SSE preamble says `Connection: close`, so nothing
                // after it on this connection will be answered.
                if let Route::Stream { run } = route(&req) {
                    if !out.is_empty() && (&stream).write_all(&out).is_err() {
                        return served;
                    }
                    app.sse_attach(&req, &run, stream);
                    return served + 1;
                }
                let close = !req.keep_alive || n == max_requests || stop.load(Ordering::SeqCst);
                let resp = app.handle(&req);
                let _ = resp.write_to(&mut out, close); // Vec writes are infallible
                served += 1;
                let flush = close || out.len() >= WRITE_BATCH || reader.buffer().is_empty();
                if flush {
                    if (&stream).write_all(&out).is_err() {
                        return served;
                    }
                    out.clear();
                }
                if close {
                    graceful_close(stream);
                    return served;
                }
            }
            // Peer closed (or idled past the read timeout) between
            // requests — a normal keep-alive end, not an error.
            Ok(None) => break,
            Err(e) => {
                if let Some(resp) = e.response() {
                    hrviz_obs::get().counter_add("serve/http_errors", 1);
                    let _ = resp.write_to(&mut out, true);
                    served += 1;
                    let _ = (&stream).write_all(&out);
                    graceful_close(stream);
                    return served;
                }
                break; // socket error / timeout mid-request: just close
            }
        }
    }
    if !out.is_empty() {
        let _ = (&stream).write_all(&out);
    }
    served
}

/// Install a SIGINT/SIGTERM handler that shuts `handle` down; the serve
/// loop then drains and returns normally, so the process exits 0.
pub fn install_signal_shutdown(handle: ServerHandle) -> Result<(), HrvizError> {
    ctrlc::set_handler(move || handle.shutdown())
        .map_err(|e| HrvizError::config(format!("cannot install signal handler: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_catches_degenerate_settings() {
        assert!(ServeConfig::default().validate().is_ok());
        assert!(ServeConfig { workers: 0, ..Default::default() }.validate().is_err());
        assert!(ServeConfig { queue_depth: 0, ..Default::default() }.validate().is_err());
        assert!(ServeConfig { timeout_ms: 0, ..Default::default() }.validate().is_err());
        let few = ServeConfig { workers: 8, max_conns: 4, ..Default::default() };
        assert!(few.validate().is_err());
    }

    #[test]
    fn bind_failures_are_io_errors_not_panics() {
        let store =
            RunStore::open(std::env::temp_dir().join("hrviz-serve-bindfail")).expect("store");
        let cfg = ServeConfig { addr: "256.0.0.1:80".into(), ..Default::default() };
        let err = Server::bind(cfg, store).err().expect("bad address must fail");
        assert_eq!(err.exit_code(), 4, "bind failures map to the Io exit code");
    }

    #[test]
    fn handle_stops_the_loop() {
        let store = RunStore::open(std::env::temp_dir().join("hrviz-serve-stop")).expect("store");
        let cfg = ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() };
        let server = Server::bind(cfg, store).expect("bind");
        let handle = server.handle();
        assert!(!handle.is_shutdown());
        handle.shutdown();
        let report = server.serve().expect("serve returns after shutdown");
        assert_eq!(report.requests, 0);
    }
}
