//! Criterion microbenchmarks of the simulation substrate: event-engine
//! throughput, packet-level network simulation rate, and the sequential vs
//! conservative-parallel schedulers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hrviz_network::{
    DragonflyConfig, MsgInjection, NetworkSpec, RoutingAlgorithm, Simulation, TerminalId,
};
use hrviz_pdes::{Ctx, Engine, Lp, LpId, ParallelEngine, SimTime};
use rand::{rngs::StdRng, Rng, SeedableRng};

struct PholdLp {
    n: u32,
    state: u64,
}

#[derive(Clone)]
struct Ball {
    hops: u32,
}

impl Lp<Ball> for PholdLp {
    fn on_event(&mut self, ctx: &mut Ctx<'_, Ball>, b: Ball) {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
        if b.hops > 0 {
            let dst = LpId((self.state >> 33) as u32 % self.n);
            ctx.send(dst, SimTime(10 + (self.state % 90)), Ball { hops: b.hops - 1 });
        }
    }
}

fn bench_pdes(c: &mut Criterion) {
    let mut g = c.benchmark_group("pdes");
    for &lps in &[64u32, 1024] {
        g.throughput(Throughput::Elements(16 * 1000));
        g.bench_with_input(BenchmarkId::new("phold_seq", lps), &lps, |b, &n| {
            b.iter(|| {
                let pop = (0..n).map(|i| PholdLp { n, state: i as u64 + 1 }).collect();
                let mut eng = Engine::new(pop, SimTime(10));
                for s in 0..16 {
                    eng.schedule(SimTime(s), LpId((s % n as u64) as u32), Ball { hops: 1000 });
                }
                eng.run_to_completion();
                eng.stats().events_processed
            })
        });
    }
    g.bench_function("phold_parallel_4", |b| {
        b.iter(|| {
            let n = 1024u32;
            let pop = (0..n).map(|i| PholdLp { n, state: i as u64 + 1 }).collect();
            let mut eng = ParallelEngine::new(pop, SimTime(10), 4);
            for s in 0..16u64 {
                eng.schedule(SimTime(s), LpId((s % n as u64) as u32), Ball { hops: 1000 });
            }
            eng.run_to_completion().events_processed
        })
    });
    g.finish();
}

fn uniform_sim(msgs: u64) -> Simulation {
    let spec = NetworkSpec::new(DragonflyConfig::canonical(3)) // 342 terminals
        .with_routing(RoutingAlgorithm::adaptive_default());
    let mut sim = Simulation::new(spec);
    let mut rng = StdRng::seed_from_u64(7);
    for src in 0..342u32 {
        for k in 0..msgs {
            let dst = loop {
                let d = rng.gen_range(0..342);
                if d != src {
                    break d;
                }
            };
            sim.inject(MsgInjection {
                time: SimTime(k * 1000),
                src: TerminalId(src),
                dst: TerminalId(dst),
                bytes: 4096,
                job: 0,
            });
        }
    }
    sim
}

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    g.sample_size(10);
    g.bench_function("uniform_342t_seq", |b| b.iter(|| uniform_sim(8).run().events_processed));
    g.bench_function("uniform_342t_par4", |b| {
        b.iter(|| uniform_sim(8).run_parallel(4).events_processed)
    });
    for routing in [
        RoutingAlgorithm::Minimal,
        RoutingAlgorithm::NonMinimal,
        RoutingAlgorithm::adaptive_default(),
        RoutingAlgorithm::par_default(),
    ] {
        g.bench_with_input(BenchmarkId::new("routing", routing.name()), &routing, |b, &routing| {
            b.iter(|| {
                let spec = NetworkSpec::new(DragonflyConfig::canonical(3)).with_routing(routing);
                let mut sim = Simulation::new(spec);
                for src in 0..342u32 {
                    sim.inject(MsgInjection {
                        time: SimTime::ZERO,
                        src: TerminalId(src),
                        dst: TerminalId((src + 171) % 342),
                        bytes: 16 * 1024,
                        job: 0,
                    });
                }
                sim.run().events_processed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pdes, bench_network);
criterion_main!(benches);
