// Fixture: wall-clock reads in non-test sim-crate code must be flagged.
use std::time::Instant;

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let wall = std::time::SystemTime::now();
    let _ = wall;
    t0.elapsed().as_nanos()
}
