//! Timeline lanes for sweep execution: each simulated (store-miss) run
//! lands on its own `sweep/<run_id>` lane in the span ring, annotated
//! with the run id and event count, so the Chrome trace export shows a
//! per-run gantt of the sweep. Warm (all-hit) sweeps record no lanes.

use std::fs;
use std::path::PathBuf;

use hrviz_network::RoutingAlgorithm;
use hrviz_pdes::SimTime;
use hrviz_sweep::{RunStore, SweepEngine, SweepSpec, TopologyAxis};
use hrviz_workloads::TrafficPattern;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hrviz-sweep-trace-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn each_simulated_run_gets_its_own_lane() {
    let c = hrviz_obs::Collector::enabled();
    hrviz_obs::install(c.clone());

    let spec = SweepSpec::new("trace", TopologyAxis::Dragonfly { terminals: 72 })
        .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
        .patterns([TrafficPattern::UniformRandom])
        .seeds(vec![3])
        .msgs_per_rank(2)
        .msg_bytes(1024)
        .period(SimTime::micros(1));

    let root = tmp("lanes");
    let engine = SweepEngine::new(RunStore::open(&root).expect("store")).with_workers(2);
    let cold = engine.run(&spec).expect("cold sweep");
    assert_eq!(cold.store_misses, 2);

    let recs = c.recent_spans();
    let execs: Vec<_> = recs.iter().filter(|r| r.label == "sweep/exec").collect();
    assert_eq!(execs.len(), 2, "one lane span per simulated run");
    for run_id in &cold.run_ids {
        let lane = format!("sweep/{run_id}");
        let rec = execs
            .iter()
            .find(|r| r.lane.as_deref() == Some(lane.as_str()))
            .unwrap_or_else(|| panic!("missing lane {lane}"));
        assert!(
            rec.args.iter().any(|(k, v)| k == "run_id" && v.render() == format!("\"{run_id}\"")),
            "lane span names its run"
        );
        assert!(rec.args.iter().any(|(k, _)| k == "events"), "lane span counts events");
    }

    // A warm sweep simulates nothing and must not add lanes.
    let warm = engine.run(&spec).expect("warm sweep");
    assert_eq!(warm.store_misses, 0);
    let execs_after = c.recent_spans().iter().filter(|r| r.label == "sweep/exec").count();
    assert_eq!(execs_after, 2, "warm sweep records no execution lanes");
    let _ = fs::remove_dir_all(&root);
}
