// Fixture: literal metric names are visible to the manifest audit.
use hrviz_obs::Collector;

pub fn record(c: &Collector) {
    c.counter_add("serve/requests", 1);
    c.hist_record("serve/latency_us", 3.5);
}
