//! Routing strategies for the Dragonfly (paper §II-A, §V-B).
//!
//! * **Minimal** — up to `local → global → local`: at most one local hop to
//!   the gateway router owning the global channel to the destination group,
//!   the global hop, then at most one local hop to the destination router.
//! * **Non-minimal (Valiant)** — minimal to a uniformly random intermediate
//!   group, then minimal to the destination; doubles the path length but
//!   spreads adversarial traffic.
//! * **Adaptive (UGAL-L)** — at the source router, compare the congestion
//!   of the minimal and one sampled non-minimal path using local queue
//!   occupancy scaled by path length; divert when
//!   `q_min · h_min > q_nonmin · h_nonmin + threshold`.
//! * **Progressive adaptive (PAR)** — like UGAL, but routers in the source
//!   group re-evaluate the decision while the packet is still routed
//!   minimally, diverting later if congestion develops (the mitigation the
//!   paper suggests for traffic bursts in §V-C).
//!
//! ## Virtual-channel discipline
//!
//! Each hop class along a path is a *stage* with a dedicated VC, and stages
//! are totally ordered, which makes the channel dependency graph acyclic
//! (deadlock freedom):
//!
//! | stage | hop | VC |
//! |-------|-----|----|
//! | L0 | local in source group | local 0 |
//! | L1 | local after a PAR diversion (still source group) | local 1 |
//! | G0 | first global | global 0 |
//! | L2 | local in intermediate group | local 2 |
//! | G1 | second global | global 1 |
//! | L3 | local in destination group | local 3 |
//!
//! Ejection always drains (terminals consume instantly), so it needs no VC
//! ordering. `NetworkSpec::num_vcs` must therefore be ≥ 4.

use crate::topology::{GroupId, RouterId, Topology};
use rand::Rng;

/// Routing algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RoutingAlgorithm {
    /// Always the shortest path.
    Minimal,
    /// Always Valiant (random intermediate group).
    NonMinimal,
    /// UGAL-L decided once at the source router. `threshold` is in
    /// byte·hops: larger values bias toward minimal routing.
    Adaptive {
        /// UGAL bias; `q_min·h_min > q_non·h_non + threshold` diverts.
        threshold: u64,
    },
    /// UGAL-L with per-hop re-evaluation inside the source group.
    ProgressiveAdaptive {
        /// Same semantics as [`RoutingAlgorithm::Adaptive::threshold`].
        threshold: u64,
    },
}

impl RoutingAlgorithm {
    /// Reasonable default bias (one packet's worth of queueing).
    pub fn adaptive_default() -> Self {
        RoutingAlgorithm::Adaptive { threshold: 2048 }
    }

    /// Reasonable default PAR configuration.
    pub fn par_default() -> Self {
        RoutingAlgorithm::ProgressiveAdaptive { threshold: 2048 }
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingAlgorithm::Minimal => "minimal",
            RoutingAlgorithm::NonMinimal => "nonminimal",
            RoutingAlgorithm::Adaptive { .. } => "adaptive",
            RoutingAlgorithm::ProgressiveAdaptive { .. } => "progressive-adaptive",
        }
    }
}

/// One forwarding step out of a router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Eject to the router's `k`-th terminal.
    Eject(u32),
    /// Local link to the router with this rank.
    Local(u32),
    /// Global port `gp`.
    Global(u32),
}

/// The next minimal-routing step from `me` toward `target_group` (which
/// must differ from `me`'s group).
pub fn toward_group(topo: &Topology, me: RouterId, target_group: GroupId) -> Step {
    let my_group = topo.group_of_router(me);
    debug_assert_ne!(my_group, target_group);
    let (gateway, gp) = topo.gateway(my_group, target_group);
    if gateway == me {
        Step::Global(gp)
    } else {
        Step::Local(topo.rank_of_router(gateway))
    }
}

/// The next minimal-routing step from `me` toward `dst_router` /
/// `dst_terminal_port` (the terminal's port index on its router).
pub fn minimal_step(
    topo: &Topology,
    me: RouterId,
    dst_router: RouterId,
    dst_terminal_port: u32,
) -> Step {
    if me == dst_router {
        return Step::Eject(dst_terminal_port);
    }
    let my_group = topo.group_of_router(me);
    let dst_group = topo.group_of_router(dst_router);
    if my_group == dst_group {
        Step::Local(topo.rank_of_router(dst_router))
    } else {
        toward_group(topo, me, dst_group)
    }
}

/// Estimated router-to-router hops of the Valiant path `me → gi → dst`.
pub fn valiant_hops(topo: &Topology, me: RouterId, gi: GroupId, dst_router: RouterId) -> u32 {
    let my_group = topo.group_of_router(me);
    if my_group == gi {
        return topo.minimal_hops(me, dst_router);
    }
    let (gw, gp) = topo.gateway(my_group, gi);
    let (lander, _) = topo.global_peer(gw, gp);
    u32::from(me != gw) + 1 + topo.minimal_hops(lander, dst_router)
}

/// Pick a random intermediate group distinct from both endpoints. Returns
/// `None` when the network is too small to have one.
pub fn random_intermediate<R: Rng>(
    topo: &Topology,
    rng: &mut R,
    src_group: GroupId,
    dst_group: GroupId,
) -> Option<GroupId> {
    let g = topo.config().groups;
    let excluded = if src_group == dst_group { 1 } else { 2 };
    if g <= excluded {
        return None;
    }
    loop {
        let cand = GroupId(rng.gen_range(0..g));
        if cand != src_group && cand != dst_group {
            return Some(cand);
        }
    }
}

/// UGAL-L comparison: `true` means divert to the non-minimal path.
///
/// `q_*` are local queue occupancies in bytes of the candidate first-hop
/// ports; `h_*` are the path-length estimates.
pub fn ugal_prefers_nonminimal(
    q_min: u64,
    h_min: u32,
    q_nonmin: u64,
    h_nonmin: u32,
    threshold: u64,
) -> bool {
    q_min.saturating_mul(h_min as u64) > q_nonmin.saturating_mul(h_nonmin as u64) + threshold
}

/// Virtual channel for a forwarding step, per the stage table in the module
/// docs.
///
/// * `global_hops` — global links already traversed.
/// * `in_source_group` — the packet has not yet left its source group.
/// * `diverted` — a PAR router already diverted this packet mid-group.
/// * `in_dst_group` — the router is in the destination group.
pub fn vc_for_step(
    step: Step,
    global_hops: u8,
    in_source_group: bool,
    diverted: bool,
    in_dst_group: bool,
) -> u8 {
    match step {
        Step::Eject(_) => 0,
        Step::Global(_) => global_hops, // G0 = vc0, G1 = vc1
        Step::Local(_) => {
            if in_source_group && global_hops == 0 {
                u8::from(diverted) // L0 or L1
            } else if in_dst_group {
                3 // L3
            } else {
                2 // L2 (intermediate group)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DragonflyConfig;
    use crate::topology::TerminalId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo() -> Topology {
        Topology::new(DragonflyConfig::canonical(3)) // g=19, a=6, p=3
    }

    #[test]
    fn minimal_step_ejects_at_destination() {
        let t = topo();
        let term = TerminalId(10);
        let r = t.router_of_terminal(term);
        let step = minimal_step(&t, r, r, t.terminal_port(term));
        assert_eq!(step, Step::Eject(t.terminal_port(term)));
    }

    #[test]
    fn minimal_step_is_local_within_group() {
        let t = topo();
        let r0 = RouterId(0);
        let r3 = RouterId(3);
        assert_eq!(minimal_step(&t, r0, r3, 0), Step::Local(3));
    }

    #[test]
    fn minimal_path_walk_reaches_destination_within_bound() {
        let t = topo();
        let cfg = *t.config();
        for src in (0..cfg.num_terminals()).step_by(11) {
            for dst in (0..cfg.num_terminals()).step_by(13) {
                if src == dst {
                    continue;
                }
                let dst_t = TerminalId(dst);
                let dst_r = t.router_of_terminal(dst_t);
                let mut cur = t.router_of_terminal(TerminalId(src));
                let mut hops = 0;
                loop {
                    match minimal_step(&t, cur, dst_r, t.terminal_port(dst_t)) {
                        Step::Eject(k) => {
                            assert_eq!(t.terminal_of(cur, k), dst_t);
                            break;
                        }
                        Step::Local(rank) => {
                            cur = t.router_in_group(t.group_of_router(cur), rank);
                        }
                        Step::Global(gp) => {
                            cur = t.global_peer(cur, gp).0;
                        }
                    }
                    hops += 1;
                    assert!(hops <= 3, "minimal path exceeded l-g-l bound");
                }
                assert_eq!(hops, t.minimal_hops(t.router_of_terminal(TerminalId(src)), dst_r));
            }
        }
    }

    #[test]
    fn valiant_walk_reaches_destination_within_bound() {
        let t = topo();
        let cfg = *t.config();
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..200 {
            let src = TerminalId((case * 37) % cfg.num_terminals());
            let dst = TerminalId((case * 61 + 5) % cfg.num_terminals());
            if src == dst {
                continue;
            }
            let src_r = t.router_of_terminal(src);
            let dst_r = t.router_of_terminal(dst);
            let sg = t.group_of_router(src_r);
            let dg = t.group_of_router(dst_r);
            let Some(gi) = random_intermediate(&t, &mut rng, sg, dg) else {
                continue;
            };
            assert_ne!(gi, sg);
            assert_ne!(gi, dg);
            // Walk: minimal to gi, then minimal to dst.
            let mut cur = src_r;
            let mut hops = 0;
            while t.group_of_router(cur) != gi {
                match toward_group(&t, cur, gi) {
                    Step::Local(rank) => cur = t.router_in_group(t.group_of_router(cur), rank),
                    Step::Global(gp) => cur = t.global_peer(cur, gp).0,
                    Step::Eject(_) => unreachable!(),
                }
                hops += 1;
                assert!(hops <= 3);
            }
            while cur != dst_r {
                match minimal_step(&t, cur, dst_r, t.terminal_port(dst)) {
                    Step::Local(rank) => cur = t.router_in_group(t.group_of_router(cur), rank),
                    Step::Global(gp) => cur = t.global_peer(cur, gp).0,
                    Step::Eject(_) => break,
                }
                hops += 1;
                assert!(hops <= 6, "valiant path exceeded bound");
            }
            assert!(hops <= valiant_hops(&t, src_r, gi, dst_r) + 1);
        }
    }

    #[test]
    fn random_intermediate_avoids_endpoints() {
        let t = topo();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let gi = random_intermediate(&t, &mut rng, GroupId(0), GroupId(5)).unwrap();
            assert_ne!(gi, GroupId(0));
            assert_ne!(gi, GroupId(5));
        }
    }

    #[test]
    fn random_intermediate_none_for_tiny_networks() {
        let t = Topology::new(DragonflyConfig {
            groups: 2,
            routers_per_group: 2,
            terminals_per_router: 1,
            global_ports: 1,
        });
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(random_intermediate(&t, &mut rng, GroupId(0), GroupId(1)), None);
    }

    #[test]
    fn ugal_comparison() {
        // Empty queues: stay minimal.
        assert!(!ugal_prefers_nonminimal(0, 3, 0, 6, 1000));
        // Congested minimal, idle nonminimal path: divert.
        assert!(ugal_prefers_nonminimal(10_000, 3, 100, 6, 1000));
        // Symmetric congestion: path-length scaling keeps it minimal.
        assert!(!ugal_prefers_nonminimal(5_000, 3, 5_000, 6, 1000));
    }

    #[test]
    fn vc_stages_are_ordered() {
        // L0 then L1 then G0 then L2 then G1 then L3.
        assert_eq!(vc_for_step(Step::Local(0), 0, true, false, false), 0);
        assert_eq!(vc_for_step(Step::Local(0), 0, true, true, false), 1);
        assert_eq!(vc_for_step(Step::Global(0), 0, true, false, false), 0);
        assert_eq!(vc_for_step(Step::Local(0), 1, false, false, false), 2);
        assert_eq!(vc_for_step(Step::Global(0), 1, false, false, false), 1);
        assert_eq!(vc_for_step(Step::Local(0), 1, false, false, true), 3);
        assert_eq!(vc_for_step(Step::Local(0), 2, false, false, true), 3);
        assert_eq!(vc_for_step(Step::Eject(2), 2, false, false, true), 0);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(RoutingAlgorithm::Minimal.name(), "minimal");
        assert_eq!(RoutingAlgorithm::adaptive_default().name(), "adaptive");
        assert_eq!(RoutingAlgorithm::par_default().name(), "progressive-adaptive");
        assert_eq!(RoutingAlgorithm::NonMinimal.name(), "nonminimal");
    }
}
