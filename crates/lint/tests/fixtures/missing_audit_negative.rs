// Fixture: an audit override, a reasoned suppression, and test-only Lp
// impls must all pass.
use hrviz_pdes::{Ctx, Lp};

pub struct Counted {
    credits: i64,
}

impl Lp<u32> for Counted {
    fn on_event(&mut self, _ctx: &mut Ctx<'_, u32>, payload: u32) {
        self.credits += payload as i64;
    }

    fn audit(&self) -> Result<(), String> {
        if self.credits == 0 {
            Ok(())
        } else {
            Err(format!("{} credits leaked", self.credits))
        }
    }
}

pub struct Stateless;

// lint:allow(missing_audit, reason="stateless relay: holds no credits or in-flight packets")
impl Lp<u32> for Stateless {
    fn on_event(&mut self, _ctx: &mut Ctx<'_, u32>, _payload: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestLp;

    impl Lp<()> for TestLp {
        fn on_event(&mut self, _ctx: &mut Ctx<'_, ()>, _payload: ()) {}
    }
}
