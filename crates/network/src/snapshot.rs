//! Shared checkpoint codec helpers for the network model.
//!
//! The per-LP `snapshot`/`restore` implementations (terminal, router, out
//! port) and the [`crate::events::NetEvent`] payload codec all serialize
//! the same few building blocks — packets, credit returns, optional
//! sampling bins, optional timestamps. Keeping the codecs here means one
//! place defines each wire layout.

use crate::events::CreditReturn;
use crate::packet::{JobId, Packet, RoutePlan};
use crate::sampling::Bins;
use crate::topology::{GroupId, TerminalId};
use hrviz_pdes::wire::{SnapshotError, WireReader, WireWriter};
use hrviz_pdes::{LpId, SimTime};

pub(crate) fn encode_packet(w: &mut WireWriter, p: &Packet) {
    w.put_u64(p.id);
    w.put_u32(p.src.0);
    w.put_u32(p.dst.0);
    w.put_u32(p.bytes);
    w.put_u64(p.inject_time.as_nanos());
    w.put_u32(p.job as u32);
    w.put_u8(p.hops);
    w.put_u8(p.global_hops);
    w.put_bool(p.diverted);
    match p.plan {
        RoutePlan::Decide => w.put_u8(0),
        RoutePlan::Minimal => w.put_u8(1),
        RoutePlan::MinimalPar => w.put_u8(2),
        RoutePlan::Via(g) => {
            w.put_u8(3);
            w.put_u32(g.0);
        }
    }
}

pub(crate) fn decode_packet(r: &mut WireReader<'_>) -> Result<Packet, SnapshotError> {
    Ok(Packet {
        id: r.u64()?,
        src: TerminalId(r.u32()?),
        dst: TerminalId(r.u32()?),
        bytes: r.u32()?,
        inject_time: SimTime(r.u64()?),
        job: r.u32()? as JobId,
        hops: r.u8()?,
        global_hops: r.u8()?,
        diverted: r.bool()?,
        plan: match r.u8()? {
            0 => RoutePlan::Decide,
            1 => RoutePlan::Minimal,
            2 => RoutePlan::MinimalPar,
            3 => RoutePlan::Via(GroupId(r.u32()?)),
            other => return Err(SnapshotError::Corrupt(format!("bad route-plan tag {other}"))),
        },
    })
}

pub(crate) fn encode_credit(w: &mut WireWriter, c: &CreditReturn) {
    w.put_u32(c.lp.0);
    w.put_u32(c.port as u32);
    w.put_u8(c.vc);
    w.put_u32(c.bytes);
    w.put_u64(c.latency.as_nanos());
}

pub(crate) fn decode_credit(r: &mut WireReader<'_>) -> Result<CreditReturn, SnapshotError> {
    Ok(CreditReturn {
        lp: LpId(r.u32()?),
        port: r.u32()? as u16,
        vc: r.u8()?,
        bytes: r.u32()?,
        latency: SimTime(r.u64()?),
    })
}

pub(crate) fn encode_opt_time(w: &mut WireWriter, t: &Option<SimTime>) {
    match t {
        None => w.put_bool(false),
        Some(t) => {
            w.put_bool(true);
            w.put_u64(t.as_nanos());
        }
    }
}

pub(crate) fn decode_opt_time(r: &mut WireReader<'_>) -> Result<Option<SimTime>, SnapshotError> {
    Ok(if r.bool()? { Some(SimTime(r.u64()?)) } else { None })
}

/// Bins presence is static configuration (the sampling config), so the
/// codec only carries the accumulated values; a presence flag catches a
/// snapshot restored under a different sampling config.
pub(crate) fn encode_opt_bins(w: &mut WireWriter, b: &Option<Bins>) {
    match b {
        None => w.put_bool(false),
        Some(bins) => {
            w.put_bool(true);
            let v = bins.values();
            w.put_u64(v.len() as u64);
            for x in v {
                w.put_u64(*x);
            }
        }
    }
}

pub(crate) fn decode_opt_bins(
    r: &mut WireReader<'_>,
    b: &mut Option<Bins>,
) -> Result<(), SnapshotError> {
    let present = r.bool()?;
    match (present, b.as_mut()) {
        (false, None) => Ok(()),
        (true, Some(bins)) => {
            let n = r.u64()? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(r.u64()?);
            }
            bins.set_values(v);
            Ok(())
        }
        _ => Err(SnapshotError::Corrupt(
            "sampling configuration differs between snapshot and model".into(),
        )),
    }
}
