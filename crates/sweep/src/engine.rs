//! The parallel sweep executor.
//!
//! [`SweepEngine::run`] expands a [`SweepSpec`], splits the grid into
//! store hits (already simulated — content address present) and misses,
//! shards the misses across a fixed-width worker pool, persists each new
//! run, and bumps the store generation once. The returned [`SweepOutcome`]
//! carries the hit/miss split and aggregate engine counters; its JSON form
//! is the artifact CI greps for the all-cache-hit assertion.

use std::path::{Path, PathBuf};
// lint:allow(wall_clock, reason="telemetry only: wall time feeds obs perf reporting and never reaches simulation state or event order")
use std::time::{Duration, Instant};

use hrviz_faults::HrvizError;
use hrviz_obs::Json;
use hrviz_pdes::EngineStats;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use crate::spec::{RunConfig, RunResult, SweepSpec};
use crate::store::RunStore;

/// One parallel run's outcome plus the optional `(start_us, dur_us)`
/// timing of its Chrome-trace lane.
type RunOutcome = (Result<RunResult, HrvizError>, Option<(u64, u64)>);

/// Executes sweeps against one [`RunStore`].
#[derive(Debug)]
pub struct SweepEngine {
    store: RunStore,
    workers: usize,
}

impl SweepEngine {
    /// An engine over `store` using one worker per core.
    pub fn new(store: RunStore) -> SweepEngine {
        SweepEngine { store, workers: 0 }
    }

    /// Use exactly `workers` worker threads (`0` restores the per-core
    /// default). Worker count never changes results — only wall clock.
    pub fn with_workers(mut self, workers: usize) -> SweepEngine {
        self.workers = workers;
        self
    }

    /// The engine's store.
    pub fn store(&self) -> &RunStore {
        &self.store
    }

    /// Execute every config of `spec` that the store does not already
    /// hold, in parallel, and persist the results.
    pub fn run(&self, spec: &SweepSpec) -> Result<SweepOutcome, HrvizError> {
        // lint:allow(wall_clock, reason="telemetry only: wall time feeds obs perf reporting and never reaches simulation state or event order")
        let start = Instant::now();
        let obs = hrviz_obs::get();
        let _span = obs.span("sweep/run");
        let configs = spec.expand()?;
        let run_ids: Vec<String> = configs.iter().map(RunConfig::run_id).collect();
        let (hits, misses): (Vec<&RunConfig>, Vec<&RunConfig>) =
            configs.iter().partition(|c| self.store.contains(&c.run_id()));
        obs.counter_add("sweep/store_hit", hits.len() as u64);
        obs.counter_add("sweep/store_miss", misses.len() as u64);
        obs.log(
            hrviz_obs::LogLevel::Info,
            &format!(
                "sweep {:?}: {} configs, {} cached, {} to run",
                spec.name,
                configs.len(),
                hits.len(),
                misses.len()
            ),
        );

        let mut stats = EngineStats::default();
        if !misses.is_empty() {
            let pool = ThreadPoolBuilder::new()
                .num_threads(self.workers)
                .build()
                .map_err(|e| HrvizError::config(format!("worker pool: {e}")))?;
            let results: Vec<RunOutcome> = pool.install(|| {
                misses
                    .par_iter()
                    .map(|cfg| {
                        // Per-run lane timing for the Chrome trace export;
                        // skipped entirely when the collector is disabled.
                        let lane_start = obs.now_us();
                        // lint:allow(wall_clock, reason="telemetry only: per-run timeline lanes for the Chrome trace export, never reaches simulation state or event order")
                        let t0 = lane_start.map(|_| Instant::now());
                        let result = cfg.execute();
                        let lane = lane_start.zip(t0.map(|t| t.elapsed().as_micros() as u64));
                        (result, lane)
                    })
                    .collect()
            });
            // Persist in deterministic (expansion) order; fail on the
            // first simulation error without committing a generation bump.
            for (cfg, (result, lane)) in misses.iter().zip(results) {
                let result = result?;
                if let Some((start_us, dur_us)) = lane {
                    obs.record_span(
                        &format!("sweep/{}", cfg.run_id()),
                        "sweep/exec",
                        start_us,
                        dur_us,
                        &[
                            ("run_id", Json::Str(cfg.run_id())),
                            ("events", Json::U64(result.stats.events_processed)),
                        ],
                    );
                }
                stats.accumulate(&result.stats);
                self.store.save(cfg, &result)?;
            }
            self.store.bump_generation()?;
        }

        Ok(SweepOutcome {
            name: spec.name.clone(),
            workers: self.effective_workers(),
            configs: configs.len(),
            store_hits: hits.len(),
            store_misses: misses.len(),
            events_simulated: stats.events_processed,
            stats,
            run_ids,
            generation: self.store.generation(),
            wall: start.elapsed(),
        })
    }

    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// What one [`SweepEngine::run`] call did.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Sweep name.
    pub name: String,
    /// Worker threads used for the miss set.
    pub workers: usize,
    /// Total grid size.
    pub configs: usize,
    /// Configs already in the store (no simulation).
    pub store_hits: usize,
    /// Configs that had to be simulated.
    pub store_misses: usize,
    /// Events processed across all new simulations (0 for an all-hit
    /// sweep — the warm-cache assertion CI checks).
    pub events_simulated: u64,
    /// Folded engine counters for the new simulations.
    pub stats: EngineStats,
    /// Run ids of the full grid, in expansion order.
    pub run_ids: Vec<String>,
    /// Store generation after the sweep.
    pub generation: u64,
    /// Wall-clock time of the whole sweep.
    pub wall: Duration,
}

impl SweepOutcome {
    /// JSON form of the outcome (this is a *report* artifact — unlike the
    /// store it includes wall-clock — so it lives outside the store root).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sweep", Json::Str(self.name.clone())),
            ("workers", Json::U64(self.workers as u64)),
            ("configs", Json::U64(self.configs as u64)),
            ("store_hits", Json::U64(self.store_hits as u64)),
            ("store_misses", Json::U64(self.store_misses as u64)),
            ("events_simulated", Json::U64(self.events_simulated)),
            ("end_time_ns", Json::U64(self.stats.end_time.as_nanos())),
            ("generation", Json::U64(self.generation)),
            ("wall_s", Json::F64(self.wall.as_secs_f64())),
            ("runs", Json::Arr(self.run_ids.iter().map(|r| Json::Str(r.clone())).collect())),
        ])
    }

    /// Write the report as `sweep_<name>.json` under `dir`.
    pub fn write(&self, dir: &Path) -> Result<PathBuf, HrvizError> {
        std::fs::create_dir_all(dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
        let path = dir.join(format!("sweep_{}.json", self.name));
        std::fs::write(&path, self.to_json().render() + "\n")
            .map_err(|e| HrvizError::io(path.display().to_string(), e))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopologyAxis;
    use hrviz_network::RoutingAlgorithm;
    use hrviz_pdes::SimTime;
    use hrviz_workloads::TrafficPattern;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hrviz-sweep-eng-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grid() -> SweepSpec {
        SweepSpec::new("grid", TopologyAxis::Dragonfly { terminals: 72 })
            .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Tornado])
            .msgs_per_rank(2)
            .msg_bytes(1024)
            .period(SimTime::micros(1))
    }

    #[test]
    fn second_identical_sweep_is_all_hits_with_zero_events() {
        let root = tmp("warm");
        let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(2);
        let cold = engine.run(&grid()).unwrap();
        assert_eq!(cold.configs, 4);
        assert_eq!(cold.store_misses, 4);
        assert_eq!(cold.store_hits, 0);
        assert!(cold.events_simulated > 0);
        assert_eq!(cold.generation, 1);

        let warm = engine.run(&grid()).unwrap();
        assert_eq!(warm.store_hits, 4);
        assert_eq!(warm.store_misses, 0);
        assert_eq!(warm.events_simulated, 0, "a warm sweep simulates nothing");
        assert_eq!(warm.generation, 1, "all-hit sweeps do not invalidate caches");
        assert_eq!(warm.run_ids, cold.run_ids);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn widening_a_sweep_only_simulates_the_new_points() {
        let root = tmp("widen");
        let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(2);
        let narrow = grid().seeds([42]);
        engine.run(&narrow).unwrap();
        let wide = grid().seeds([42, 43]);
        let out = engine.run(&wide).unwrap();
        assert_eq!(out.configs, 8);
        assert_eq!(out.store_hits, 4);
        assert_eq!(out.store_misses, 4);
        assert_eq!(out.generation, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn outcome_report_renders_and_writes() {
        let root = tmp("report");
        let engine = SweepEngine::new(RunStore::open(&root).unwrap()).with_workers(1);
        let spec = SweepSpec::new("one", TopologyAxis::FatTree { k: 4 })
            .msgs_per_rank(1)
            .msg_bytes(512)
            .period(SimTime::micros(1));
        let out = engine.run(&spec).unwrap();
        let text = out.to_json().render();
        assert!(text.contains("\"store_misses\":1"), "{text}");
        let report_dir = root.join("reports");
        let path = out.write(&report_dir).unwrap();
        assert!(std::fs::read_to_string(path).unwrap().contains("\"sweep\":\"one\""));
        let _ = std::fs::remove_dir_all(&root);
    }
}
