//! Fault schedules: timed, serializable, seedable.
//!
//! A [`FaultSchedule`] is the unit of fault injection: a list of
//! [`TimedFault`]s the simulation broadcasts to its routers/switches before
//! the run starts. Schedules can be written by hand as JSON, loaded from a
//! file (the CLI's `--faults` flag), or generated pseudo-randomly from a
//! seed — and an identical seed + schedule always replays bit-for-bit.

use crate::error::HrvizError;
use crate::json::{self, Value};
use hrviz_pdes::wire::{SnapshotError, WireReader, WireWriter};
use hrviz_pdes::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault condition change. `router` is the global router (or switch)
/// id in the target topology; `port` is the absolute output-port index on
/// that router, so a link fault names one *directed* channel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// The directed link out of `router` via `port` stops accepting new
    /// traffic (in-flight transmissions drain).
    LinkDown {
        /// Owning router/switch id.
        router: u32,
        /// Output-port index on the owner.
        port: u32,
    },
    /// The link comes back (also clears any degrade factor on it).
    LinkUp {
        /// Owning router/switch id.
        router: u32,
        /// Output-port index on the owner.
        port: u32,
    },
    /// The router stops accepting newly arriving packets; arrivals are
    /// dropped and counted until a matching `RouterUp`.
    RouterDown {
        /// Router/switch id.
        router: u32,
    },
    /// The router resumes normal operation.
    RouterUp {
        /// Router/switch id.
        router: u32,
    },
    /// The link keeps working at `factor` of nominal bandwidth
    /// (`0 < factor <= 1`; `1` restores full speed).
    DegradedLink {
        /// Owning router/switch id.
        router: u32,
        /// Output-port index on the owner.
        port: u32,
        /// Fraction of nominal bandwidth retained.
        factor: f64,
    },
}

impl FaultEvent {
    /// The `kind` tag used in the JSON serialization.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::LinkDown { .. } => "link_down",
            FaultEvent::LinkUp { .. } => "link_up",
            FaultEvent::RouterDown { .. } => "router_down",
            FaultEvent::RouterUp { .. } => "router_up",
            FaultEvent::DegradedLink { .. } => "degraded_link",
        }
    }

    /// The router/switch this event targets.
    pub fn router(&self) -> u32 {
        match *self {
            FaultEvent::LinkDown { router, .. }
            | FaultEvent::LinkUp { router, .. }
            | FaultEvent::RouterDown { router }
            | FaultEvent::RouterUp { router }
            | FaultEvent::DegradedLink { router, .. } => router,
        }
    }

    /// Append the event's checkpoint wire form to `w` (see
    /// [`hrviz_pdes::wire`]).
    pub fn encode(&self, w: &mut WireWriter) {
        match *self {
            FaultEvent::LinkDown { router, port } => {
                w.put_u8(0);
                w.put_u32(router);
                w.put_u32(port);
            }
            FaultEvent::LinkUp { router, port } => {
                w.put_u8(1);
                w.put_u32(router);
                w.put_u32(port);
            }
            FaultEvent::RouterDown { router } => {
                w.put_u8(2);
                w.put_u32(router);
            }
            FaultEvent::RouterUp { router } => {
                w.put_u8(3);
                w.put_u32(router);
            }
            FaultEvent::DegradedLink { router, port, factor } => {
                w.put_u8(4);
                w.put_u32(router);
                w.put_u32(port);
                w.put_f64(factor);
            }
        }
    }

    /// Inverse of [`FaultEvent::encode`].
    pub fn decode(r: &mut WireReader<'_>) -> Result<FaultEvent, SnapshotError> {
        Ok(match r.u8()? {
            0 => FaultEvent::LinkDown { router: r.u32()?, port: r.u32()? },
            1 => FaultEvent::LinkUp { router: r.u32()?, port: r.u32()? },
            2 => FaultEvent::RouterDown { router: r.u32()? },
            3 => FaultEvent::RouterUp { router: r.u32()? },
            4 => FaultEvent::DegradedLink { router: r.u32()?, port: r.u32()?, factor: r.f64()? },
            other => return Err(SnapshotError::Corrupt(format!("bad fault-event tag {other}"))),
        })
    }
}

/// A fault event bound to a simulation time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedFault {
    /// Absolute simulation time at which the condition changes.
    pub time: SimTime,
    /// The condition change.
    pub fault: FaultEvent,
}

/// A serializable schedule of timed fault events.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// The seed this schedule was generated from (informational for
    /// hand-written schedules; drives [`FaultSchedule::generate`]).
    pub seed: u64,
    events: Vec<TimedFault>,
}

impl FaultSchedule {
    /// An empty schedule carrying `seed`.
    pub fn new(seed: u64) -> Self {
        FaultSchedule { seed, events: Vec::new() }
    }

    /// Append a fault at `time`. Events keep insertion order; the engine
    /// orders delivery by time (ties break by insertion order).
    pub fn push(&mut self, time: SimTime, fault: FaultEvent) -> &mut Self {
        self.events.push(TimedFault { time, fault });
        self
    }

    /// The scheduled events in insertion order.
    pub fn events(&self) -> &[TimedFault] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generate a pseudo-random schedule of `count` events over routers
    /// `0..routers` with `ports_per_router` output ports each, with event
    /// times uniform in `[0, horizon_ns)`. Deterministic in `seed`: equal
    /// arguments always produce an identical schedule.
    pub fn generate(
        seed: u64,
        routers: u32,
        ports_per_router: u32,
        count: usize,
        horizon_ns: u64,
    ) -> Self {
        assert!(routers > 0 && ports_per_router > 0, "topology must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x000F_A017_5EED);
        let mut sched = FaultSchedule::new(seed);
        for _ in 0..count {
            let time = SimTime(rng.gen_range(0..horizon_ns.max(1)));
            let router = rng.gen_range(0..routers);
            let port = rng.gen_range(0..ports_per_router);
            let fault = match rng.gen_range(0u32..5) {
                0 => FaultEvent::LinkDown { router, port },
                1 => FaultEvent::LinkUp { router, port },
                2 => FaultEvent::RouterDown { router },
                3 => FaultEvent::RouterUp { router },
                _ => FaultEvent::DegradedLink {
                    router,
                    port,
                    factor: rng.gen_range(1u32..=9) as f64 / 10.0,
                },
            };
            sched.push(time, fault);
        }
        sched
    }

    /// Serialize to the JSON schedule format. Guaranteed to round-trip
    /// through [`FaultSchedule::from_json`] exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 64);
        out.push_str(&format!("{{\n  \"seed\": {},\n  \"events\": [", self.seed));
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            let t = ev.time.as_nanos();
            let kind = ev.fault.kind();
            match ev.fault {
                FaultEvent::LinkDown { router, port } | FaultEvent::LinkUp { router, port } => {
                    out.push_str(&format!(
                        "{{\"time_ns\": {t}, \"kind\": \"{kind}\", \"router\": {router}, \"port\": {port}}}"
                    ));
                }
                FaultEvent::RouterDown { router } | FaultEvent::RouterUp { router } => {
                    out.push_str(&format!(
                        "{{\"time_ns\": {t}, \"kind\": \"{kind}\", \"router\": {router}}}"
                    ));
                }
                FaultEvent::DegradedLink { router, port, factor } => {
                    // `{:?}` prints the shortest representation that parses
                    // back to the identical f64.
                    out.push_str(&format!(
                        "{{\"time_ns\": {t}, \"kind\": \"{kind}\", \"router\": {router}, \"port\": {port}, \"factor\": {factor:?}}}"
                    ));
                }
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a schedule from its JSON form.
    pub fn from_json(text: &str) -> Result<Self, HrvizError> {
        let doc = json::parse(text).map_err(|e| HrvizError::parse("fault schedule", e))?;
        let bad = |msg: String| HrvizError::parse("fault schedule", msg);
        let seed = match doc.get("seed") {
            None => 0,
            Some(v) => v.as_u64().ok_or_else(|| bad("\"seed\" must be an integer".into()))?,
        };
        let events_v = doc
            .get("events")
            .ok_or_else(|| bad("missing \"events\" array".into()))?
            .as_arr()
            .ok_or_else(|| bad("\"events\" must be an array".into()))?;
        let mut sched = FaultSchedule::new(seed);
        for (i, ev) in events_v.iter().enumerate() {
            let field_u64 = |name: &str| {
                ev.get(name)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| bad(format!("event {i}: missing integer \"{name}\"")))
            };
            let field_u32 = |name: &str| {
                field_u64(name).and_then(|v| {
                    u32::try_from(v).map_err(|_| bad(format!("event {i}: \"{name}\" out of range")))
                })
            };
            let time = SimTime(field_u64("time_ns")?);
            let kind = ev
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| bad(format!("event {i}: missing string \"kind\"")))?;
            let fault = match kind {
                "link_down" => {
                    FaultEvent::LinkDown { router: field_u32("router")?, port: field_u32("port")? }
                }
                "link_up" => {
                    FaultEvent::LinkUp { router: field_u32("router")?, port: field_u32("port")? }
                }
                "router_down" => FaultEvent::RouterDown { router: field_u32("router")? },
                "router_up" => FaultEvent::RouterUp { router: field_u32("router")? },
                "degraded_link" => {
                    let factor = ev
                        .get("factor")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| bad(format!("event {i}: missing number \"factor\"")))?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(bad(format!(
                            "event {i}: \"factor\" must be in (0, 1], got {factor}"
                        )));
                    }
                    FaultEvent::DegradedLink {
                        router: field_u32("router")?,
                        port: field_u32("port")?,
                        factor,
                    }
                }
                other => return Err(bad(format!("event {i}: unknown kind \"{other}\""))),
            };
            sched.push(time, fault);
        }
        Ok(sched)
    }

    /// Load a schedule from a JSON file.
    pub fn from_file(path: &str) -> Result<Self, HrvizError> {
        let text = std::fs::read_to_string(path).map_err(|e| HrvizError::io(path, e))?;
        Self::from_json(&text).map_err(|e| match e {
            HrvizError::Parse { detail, .. } => HrvizError::parse(path, detail),
            other => other,
        })
    }

    /// Write the schedule to a JSON file.
    pub fn to_file(&self, path: &str) -> Result<(), HrvizError> {
        std::fs::write(path, self.to_json()).map_err(|e| HrvizError::io(path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_all_event_kinds() {
        let mut s = FaultSchedule::new(99);
        s.push(SimTime(10), FaultEvent::LinkDown { router: 1, port: 2 })
            .push(SimTime(20), FaultEvent::DegradedLink { router: 3, port: 4, factor: 0.375 })
            .push(SimTime(20), FaultEvent::RouterDown { router: 5 })
            .push(SimTime(30), FaultEvent::RouterUp { router: 5 })
            .push(SimTime(40), FaultEvent::LinkUp { router: 1, port: 2 });
        let json = s.to_json();
        let back = FaultSchedule::from_json(&json).expect("round trip");
        assert_eq!(back, s);
        // Serialization itself is deterministic.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn generate_is_deterministic_in_seed() {
        let a = FaultSchedule::generate(7, 10, 8, 50, 100_000);
        let b = FaultSchedule::generate(7, 10, 8, 50, 100_000);
        let c = FaultSchedule::generate(8, 10, 8, 50, 100_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
        assert!(a.events().iter().all(|e| e.time.as_nanos() < 100_000));
        assert!(a.events().iter().all(|e| e.fault.router() < 10));
    }

    #[test]
    fn rejects_bad_schedules() {
        for (doc, why) in [
            (r#"{"events": [{"kind": "link_down", "router": 1, "port": 0}]}"#, "missing time"),
            (r#"{"events": [{"time_ns": 5, "kind": "nope", "router": 1}]}"#, "unknown kind"),
            (r#"{"events": [{"time_ns": 5, "kind": "link_down", "router": 1}]}"#, "missing port"),
            (
                r#"{"events": [{"time_ns": 5, "kind": "degraded_link", "router": 1, "port": 0, "factor": 0.0}]}"#,
                "factor 0",
            ),
            (
                r#"{"events": [{"time_ns": 5, "kind": "degraded_link", "router": 1, "port": 0, "factor": 1.5}]}"#,
                "factor > 1",
            ),
            (r#"{"seed": 1}"#, "missing events"),
            (r#"not json"#, "not json"),
        ] {
            let got = FaultSchedule::from_json(doc);
            assert!(got.is_err(), "should reject ({why}): {doc}");
            assert_eq!(got.unwrap_err().exit_code(), 5, "parse errors exit 5 ({why})");
        }
    }

    #[test]
    fn file_io_reports_io_errors() {
        let e = FaultSchedule::from_file("/nonexistent/path/sched.json").unwrap_err();
        assert_eq!(e.exit_code(), 4);
    }

    proptest! {
        /// Any generated schedule serializes and parses back identically —
        /// the serialization layer can never break replay.
        #[test]
        fn generated_schedules_round_trip(seed in 0u64..1_000_000, count in 0usize..40) {
            let s = FaultSchedule::generate(seed, 16, 12, count, 1_000_000);
            let back = FaultSchedule::from_json(&s.to_json()).expect("round trip");
            prop_assert_eq!(back, s);
        }
    }
}
