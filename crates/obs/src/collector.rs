//! The metric collector: named counters, gauges, fixed-bucket histograms,
//! span aggregates, and the JSONL event stream.
//!
//! A [`Collector`] is a cheap handle (`Option<Arc<_>>`): clones share state,
//! and the disabled collector is a `None` whose every operation is a single
//! predictable branch — cheap enough to leave the instrumentation calls in
//! hot-adjacent code unconditionally (the simulator reports at phase
//! boundaries, never per event).

use crate::json::Json;
use crate::span::Span;
use crate::trace::TraceSink;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Unrecoverable or data-loss conditions.
    Error = 0,
    /// Suspicious but survivable conditions.
    Warn = 1,
    /// Run-level milestones (default threshold).
    Info = 2,
    /// Phase-level detail.
    Debug = 3,
    /// Everything, including per-window detail.
    Trace = 4,
}

impl LogLevel {
    /// Parse a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            "trace" => Some(LogLevel::Trace),
            _ => None,
        }
    }

    /// Canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
            LogLevel::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> LogLevel {
        match v {
            0 => LogLevel::Error,
            1 => LogLevel::Warn,
            2 => LogLevel::Info,
            3 => LogLevel::Debug,
            _ => LogLevel::Trace,
        }
    }
}

/// A fixed-bucket histogram over `[lo, lo + width * buckets)`, with
/// under/overflow counters and running sum/min/max.
#[derive(Clone, Debug, PartialEq)]
pub struct Hist {
    /// Lower bound of bucket 0.
    pub lo: f64,
    /// Width of each bucket.
    pub width: f64,
    /// Per-bucket sample counts.
    pub counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above the last bucket boundary.
    pub overflow: u64,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`INFINITY` when empty).
    pub min: f64,
    /// Largest sample (`NEG_INFINITY` when empty).
    pub max: f64,
}

impl Hist {
    /// A histogram with `buckets` buckets of `width` starting at `lo`.
    pub fn new(lo: f64, width: f64, buckets: usize) -> Hist {
        assert!(width > 0.0, "histogram bucket width must be positive");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Hist {
            lo,
            width,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((v - self.lo) / self.width) as usize;
        match self.counts.get_mut(idx) {
            Some(c) => *c += 1,
            None => self.overflow += 1,
        }
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`) from the bucket counts.
    ///
    /// Underflow samples resolve to `min`, overflow samples to `max`, and
    /// in-range samples to the upper edge of their bucket (clamped to the
    /// observed `min`/`max`), so the estimate is within one bucket width of
    /// the true order statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return self.min;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let edge = self.lo + self.width * (i as f64 + 1.0);
                return edge.clamp(self.min, self.max);
            }
        }
        self.max
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("lo", Json::F64(self.lo)),
            ("width", Json::F64(self.width)),
            ("counts", Json::Arr(self.counts.iter().map(|&c| Json::U64(c)).collect())),
            ("underflow", Json::U64(self.underflow)),
            ("overflow", Json::U64(self.overflow)),
            ("count", Json::U64(self.count)),
            ("sum", Json::F64(self.sum)),
            ("mean", Json::F64(self.mean())),
            ("min", Json::F64(if self.count == 0 { 0.0 } else { self.min })),
            ("max", Json::F64(if self.count == 0 { 0.0 } else { self.max })),
        ])
    }
}

/// Aggregate timing for one span label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed spans with this label.
    pub count: u64,
    /// Total time across them, in ns.
    pub total_ns: u64,
    /// Longest single span, in ns.
    pub max_ns: u64,
}

#[derive(Default)]
pub(crate) struct State {
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) hists: BTreeMap<String, Hist>,
    pub(crate) spans: BTreeMap<String, SpanStat>,
}

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) state: Mutex<State>,
    pub(crate) sink: Mutex<TraceSink>,
    pub(crate) level: AtomicU8,
}

impl Inner {
    /// Emit one event line: `{"ts_us":..., "kind":..., <fields>}`.
    pub(crate) fn emit(&self, kind: &str, fields: &[(&str, Json)]) {
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let mut pairs: Vec<(String, Json)> = Vec::with_capacity(fields.len() + 2);
        pairs.push(("ts_us".into(), Json::U64(ts_us)));
        pairs.push(("kind".into(), Json::Str(kind.into())));
        for (k, v) in fields {
            pairs.push(((*k).into(), v.clone()));
        }
        let line = Json::Obj(pairs).render();
        self.sink.lock().expect("sink poisoned").write_line(&line);
    }
}

/// An immutable copy of the collector's aggregated state.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, Hist>,
    /// Span aggregates by label.
    pub spans: BTreeMap<String, SpanStat>,
}

impl Snapshot {
    /// Render the whole snapshot as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(self.counters.iter().map(|(k, &v)| (k.clone(), Json::U64(v))).collect()),
            ),
            (
                "gauges",
                Json::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::F64(v))).collect()),
            ),
            (
                "histograms",
                Json::Obj(self.hists.iter().map(|(k, h)| (k.clone(), h.to_json())).collect()),
            ),
            (
                "spans",
                Json::Obj(
                    self.spans
                        .iter()
                        .map(|(k, s)| {
                            (
                                k.clone(),
                                Json::obj([
                                    ("count", Json::U64(s.count)),
                                    ("total_ns", Json::U64(s.total_ns)),
                                    ("max_ns", Json::U64(s.max_ns)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Handle to (possibly disabled) run telemetry. Clones share state.
#[derive(Clone, Default)]
pub struct Collector {
    pub(crate) inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector").field("enabled", &self.is_enabled()).finish()
    }
}

impl Collector {
    /// A collector that records nothing; every operation is a single branch.
    pub fn disabled() -> Collector {
        Collector { inner: None }
    }

    fn with_sink(sink: TraceSink) -> Collector {
        Collector {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
                sink: Mutex::new(sink),
                level: AtomicU8::new(LogLevel::Info as u8),
            })),
        }
    }

    /// An enabled collector whose event stream is kept in memory (drain it
    /// with [`Collector::drain_events`]).
    pub fn enabled() -> Collector {
        Collector::with_sink(TraceSink::Memory(Vec::new()))
    }

    /// An enabled collector streaming events to a JSONL file at `path`.
    pub fn with_trace_file(path: &Path) -> io::Result<Collector> {
        Ok(Collector::with_sink(TraceSink::file(path)?))
    }

    /// Whether this collector records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to counter `name`.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        match st.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                st.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of counter `name` (0 when disabled or never written).
    pub fn counter(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let st = inner.state.lock().expect("state poisoned");
        st.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `v`.
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        inner.state.lock().expect("state poisoned").gauges.insert(name.to_string(), v);
    }

    /// Raise gauge `name` to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn gauge_max(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        let e = st.gauges.entry(name.to_string()).or_insert(f64::NEG_INFINITY);
        if v > *e {
            *e = v;
        }
    }

    /// Current value of gauge `name` (`None` when disabled or never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let inner = self.inner.as_ref()?;
        let st = inner.state.lock().expect("state poisoned");
        st.gauges.get(name).copied()
    }

    /// Configure histogram `name` before recording into it. Re-configuring
    /// an existing histogram resets it.
    pub fn hist_config(&self, name: &str, lo: f64, width: f64, buckets: usize) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        st.hists.insert(name.to_string(), Hist::new(lo, width, buckets));
    }

    /// Configure histogram `name` only if it does not exist yet (safe to
    /// call once per run on a shared collector).
    pub fn hist_ensure(&self, name: &str, lo: f64, width: f64, buckets: usize) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        if !st.hists.contains_key(name) {
            st.hists.insert(name.to_string(), Hist::new(lo, width, buckets));
        }
    }

    /// Record a sample into histogram `name` (auto-configured as 64 unit
    /// buckets from 0 when never configured).
    #[inline]
    pub fn hist_record(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock().expect("state poisoned");
        match st.hists.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Hist::new(0.0, 1.0, 64);
                h.record(v);
                st.hists.insert(name.to_string(), h);
            }
        }
    }

    /// Start a timed span with a hierarchical `label` (e.g. `sim/run`). The
    /// span records itself when dropped. Free when disabled: no clock read.
    #[inline]
    pub fn span(&self, label: &str) -> Span {
        Span::start(self.inner.clone(), label)
    }

    /// Set the log threshold (messages above it are dropped).
    pub fn set_level(&self, level: LogLevel) {
        if let Some(inner) = &self.inner {
            inner.level.store(level as u8, Ordering::Relaxed);
        }
    }

    /// Current log threshold (`None` when disabled).
    pub fn level(&self) -> Option<LogLevel> {
        self.inner.as_ref().map(|i| LogLevel::from_u8(i.level.load(Ordering::Relaxed)))
    }

    /// Log `msg` at `level`: appended to the trace stream and echoed to
    /// stderr when at or below the threshold.
    pub fn log(&self, level: LogLevel, msg: &str) {
        let Some(inner) = &self.inner else { return };
        if level as u8 > inner.level.load(Ordering::Relaxed) {
            return;
        }
        inner.emit(
            "log",
            &[("level", Json::Str(level.as_str().into())), ("msg", Json::Str(msg.into()))],
        );
        eprintln!("[{}] {}", level.as_str(), msg);
    }

    /// Append a custom event (`kind` plus fields) to the trace stream.
    pub fn event(&self, kind: &str, fields: &[(&str, Json)]) {
        let Some(inner) = &self.inner else { return };
        inner.emit(kind, fields);
    }

    /// Copy out the aggregated state.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else { return Snapshot::default() };
        let st = inner.state.lock().expect("state poisoned");
        Snapshot {
            counters: st.counters.clone(),
            gauges: st.gauges.clone(),
            hists: st.hists.clone(),
            spans: st.spans.clone(),
        }
    }

    /// Drain buffered trace lines (memory sink only; empty otherwise).
    pub fn drain_events(&self) -> Vec<String> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let mut sink = inner.sink.lock().expect("sink poisoned");
        match &mut *sink {
            TraceSink::Memory(lines) => std::mem::take(lines),
            _ => Vec::new(),
        }
    }

    /// Flush the trace sink (file sinks buffer).
    pub fn flush(&self) -> io::Result<()> {
        let Some(inner) = &self.inner else { return Ok(()) };
        inner.sink.lock().expect("sink poisoned").flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_is_inert() {
        let c = Collector::disabled();
        assert!(!c.is_enabled());
        c.counter_add("x", 5);
        c.gauge_set("g", 1.0);
        c.hist_record("h", 2.0);
        c.log(LogLevel::Error, "nothing happens");
        drop(c.span("s"));
        assert_eq!(c.counter("x"), 0);
        assert_eq!(c.gauge("g"), None);
        let snap = c.snapshot();
        assert!(snap.counters.is_empty() && snap.hists.is_empty() && snap.spans.is_empty());
        assert!(c.drain_events().is_empty());
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let c = Collector::enabled();
        c.counter_add("pkts", 3);
        c.counter_add("pkts", 4);
        assert_eq!(c.counter("pkts"), 7);
        c.gauge_set("depth", 2.0);
        c.gauge_max("depth", 9.0);
        c.gauge_max("depth", 4.0);
        assert_eq!(c.gauge("depth"), Some(9.0));
    }

    #[test]
    fn clones_share_state() {
        let a = Collector::enabled();
        let b = a.clone();
        b.counter_add("n", 1);
        assert_eq!(a.counter("n"), 1);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let c = Collector::enabled();
        c.hist_config("h", 0.0, 10.0, 3); // [0,10) [10,20) [20,30)
        for v in [-1.0, 0.0, 9.9, 15.0, 29.9, 30.0, 100.0] {
            c.hist_record("h", v);
        }
        let h = &c.snapshot().hists["h"];
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.count, 7);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 100.0);
    }

    #[test]
    fn quantiles_track_bucket_edges() {
        let mut h = Hist::new(0.0, 10.0, 10); // [0,100)
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for v in 0..100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.0), 10.0, "first bucket upper edge");
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.99), 99.0, "clamped to observed max");
        assert_eq!(h.quantile(1.0), 99.0);
        h.record(-5.0); // underflow resolves to min
        assert_eq!(h.quantile(0.0), -5.0);
        h.record(1e6); // overflow resolves to max
        assert_eq!(h.quantile(1.0), 1e6);
    }

    #[test]
    fn unconfigured_histogram_gets_default() {
        let c = Collector::enabled();
        c.hist_record("vc", 3.0);
        let h = &c.snapshot().hists["vc"];
        assert_eq!(h.counts.len(), 64);
        assert_eq!(h.counts[3], 1);
    }

    #[test]
    fn spans_aggregate_and_emit() {
        let c = Collector::enabled();
        {
            let _s = c.span("sim/run");
            let _t = c.span("sim/router_phase");
        }
        let snap = c.snapshot();
        assert_eq!(snap.spans["sim/run"].count, 1);
        assert_eq!(snap.spans["sim/router_phase"].count, 1);
        let events = c.drain_events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.contains("\"kind\":\"span\"")));
        assert!(events.iter().any(|e| e.contains("\"label\":\"sim/run\"")));
    }

    #[test]
    fn log_respects_threshold() {
        let c = Collector::enabled();
        c.set_level(LogLevel::Warn);
        c.log(LogLevel::Info, "dropped");
        c.log(LogLevel::Error, "kept");
        let events = c.drain_events();
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("kept"));
    }

    #[test]
    fn log_level_parses() {
        assert_eq!(LogLevel::parse("DEBUG"), Some(LogLevel::Debug));
        assert_eq!(LogLevel::parse("warning"), Some(LogLevel::Warn));
        assert_eq!(LogLevel::parse("bogus"), None);
        assert_eq!(LogLevel::Trace.as_str(), "trace");
    }

    #[test]
    fn snapshot_renders_json() {
        let c = Collector::enabled();
        c.counter_add("a", 1);
        c.gauge_set("b", 0.5);
        c.hist_record("h", 1.0);
        drop(c.span("s"));
        let json = c.snapshot().to_json().render();
        assert!(json.contains("\"counters\":{\"a\":1}"));
        assert!(json.contains("\"gauges\":{\"b\":0.5}"));
        assert!(json.contains("\"spans\":{\"s\":"));
    }
}
