//! Run a user-supplied projection script against a fresh simulation —
//! the paper's "apply background knowledge by customizing the
//! visualization" workflow (§IV-B3).
//!
//! ```sh
//! # built-in demo script:
//! cargo run --release --example custom_script
//! # your own:
//! cargo run --release --example custom_script -- my_view.hrviz
//! ```

use hrviz::core::{build_view, parse_script, DataSet};
use hrviz::network::{
    DragonflyConfig, JobMeta, NetworkSpec, RoutingAlgorithm, Simulation, TerminalId,
};
use hrviz::pdes::SimTime;
use hrviz::render::{render_radial, RadialLayout};
use hrviz::workloads::{generate_synthetic, SyntheticConfig, TrafficPattern};

const DEMO: &str = r#"
// Workload hotspots: routers binned by their global saturation, terminals
// scattered by hops vs latency.
{
  project : "router",
  aggregate : "group_id",
  maxBins : 12,
  vmap : { color : "global_sat_time", size : "global_traffic" },
  colors : ["white", "red"],
  ribbons : { project : "global_link", size : "traffic", color : "sat_time" }
},
{
  project : "terminal",
  vmap : { color : "sat_time", size : "packets_finished",
           x : "avg_hops", y : "avg_latency" },
  colors : ["white", "purple"],
  border : false
}
"#;

fn main() {
    let script = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read script {path:?}: {e}")),
        None => DEMO.to_string(),
    };
    let spec = match parse_script(&script) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("script rejected: {e}");
            std::process::exit(2);
        }
    };
    println!("script defines {} ring(s)", spec.levels.len());
    for (i, l) in spec.levels.iter().enumerate() {
        println!(
            "  ring {i}: {} aggregated by {:?} -> {:?}",
            l.entity,
            l.aggregate.iter().map(|f| f.name()).collect::<Vec<_>>(),
            l.vmap.plot_kind()
        );
    }

    // A bisection-style workload to have something interesting to look at.
    let cfg = DragonflyConfig::canonical(4);
    let mut sim =
        Simulation::new(NetworkSpec::new(cfg).with_routing(RoutingAlgorithm::adaptive_default()));
    let all: Vec<TerminalId> = (0..cfg.num_terminals()).map(TerminalId).collect();
    let meta = JobMeta { name: "bisection".into(), terminals: all };
    let job = sim.add_job(meta.clone());
    sim.inject_all(generate_synthetic(
        job,
        &meta,
        &SyntheticConfig {
            pattern: TrafficPattern::BitComplement,
            msg_bytes: 16 * 1024,
            msgs_per_rank: 16,
            period: SimTime::micros(2),
            stride: 1,
            seed: 1,
        },
    ));
    let run = sim.run();
    let ds = DataSet::builder(&run).build();
    let view = build_view(&ds, &spec).unwrap_or_else(|e| {
        eprintln!("script incompatible with dataset: {e}");
        std::process::exit(2);
    });
    std::fs::create_dir_all("out").unwrap();
    std::fs::write(
        "out/custom_script.svg",
        render_radial(&view, &RadialLayout::default(), "custom script"),
    )
    .unwrap();
    println!("wrote out/custom_script.svg");
}
