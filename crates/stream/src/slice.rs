//! The slice and progress data model, with canonical JSON round-trips.
//!
//! Rendering is canonical — fixed key order, no whitespace — because
//! downstream equality checks (incremental vs batch aggregates, streamed
//! vs straight-through stores) compare bytes, not parsed values.

use hrviz_faults::json::{self, Value};
use hrviz_faults::HrvizError;

/// Latency histogram buckets per slice: bucket 0 counts sub-microsecond
/// per-terminal window-mean latencies, bucket *i* ≥ 1 counts means in
/// `[2^(i-1), 2^i)` microseconds, and the last bucket is open-ended.
pub const LATENCY_BINS: usize = 8;

/// One sealed virtual-time window of a running simulation: deltas of the
/// cumulative network counters over `[t_start_ns, t_end_ns)`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Slice {
    /// 0-based sequence number; also the watermark before this seal.
    pub seq: u64,
    /// Window start (absolute virtual nanoseconds).
    pub t_start_ns: u64,
    /// Window end (absolute virtual nanoseconds).
    pub t_end_ns: u64,
    /// Packets delivered to terminals in this window.
    pub delivered_packets: u64,
    /// Payload bytes delivered in this window.
    pub delivered_bytes: u64,
    /// Packets injected by terminals in this window.
    pub injected_packets: u64,
    /// Payload bytes injected in this window.
    pub injected_bytes: u64,
    /// Packets dropped (faults, TTL) in this window.
    pub dropped_packets: u64,
    /// Sum of delivered-packet latencies in this window (ns).
    pub latency_sum_ns: u64,
    /// Log₂-bucketed latency histogram (see [`LATENCY_BINS`]).
    pub latency_hist: [u64; LATENCY_BINS],
    /// Virtual-channel saturation time accumulated across all router
    /// ports in this window (ns).
    pub vc_sat_ns: u64,
}

impl Slice {
    /// The log₂ histogram bucket for a window-mean latency in ns.
    pub fn latency_bucket(mean_ns: u64) -> usize {
        let us = mean_ns / 1_000;
        if us == 0 {
            return 0;
        }
        (us.ilog2() as usize + 1).min(LATENCY_BINS - 1)
    }

    /// Canonical single-line JSON.
    pub fn to_json(&self) -> String {
        let hist: Vec<String> = self.latency_hist.iter().map(u64::to_string).collect();
        format!(
            "{{\"seq\":{},\"t_start_ns\":{},\"t_end_ns\":{},\"delivered_packets\":{},\
             \"delivered_bytes\":{},\"injected_packets\":{},\"injected_bytes\":{},\
             \"dropped_packets\":{},\"latency_sum_ns\":{},\"latency_hist\":[{}],\
             \"vc_sat_ns\":{}}}",
            self.seq,
            self.t_start_ns,
            self.t_end_ns,
            self.delivered_packets,
            self.delivered_bytes,
            self.injected_packets,
            self.injected_bytes,
            self.dropped_packets,
            self.latency_sum_ns,
            hist.join(","),
            self.vc_sat_ns,
        )
    }

    /// Parse one slice line.
    pub fn from_json(text: &str) -> Result<Slice, HrvizError> {
        let v = json::parse(text).map_err(|e| HrvizError::parse("slice", e))?;
        let field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| HrvizError::parse("slice", format!("missing field `{k}`")))
        };
        let mut latency_hist = [0u64; LATENCY_BINS];
        let hist = v
            .get("latency_hist")
            .and_then(Value::as_arr)
            .ok_or_else(|| HrvizError::parse("slice", "missing field `latency_hist`"))?;
        if hist.len() != LATENCY_BINS {
            return Err(HrvizError::parse(
                "slice",
                format!("latency_hist has {} bins, expected {LATENCY_BINS}", hist.len()),
            ));
        }
        for (slot, item) in latency_hist.iter_mut().zip(hist) {
            *slot = item
                .as_u64()
                .ok_or_else(|| HrvizError::parse("slice", "non-integer latency bin"))?;
        }
        Ok(Slice {
            seq: field("seq")?,
            t_start_ns: field("t_start_ns")?,
            t_end_ns: field("t_end_ns")?,
            delivered_packets: field("delivered_packets")?,
            delivered_bytes: field("delivered_bytes")?,
            injected_packets: field("injected_packets")?,
            injected_bytes: field("injected_bytes")?,
            dropped_packets: field("dropped_packets")?,
            latency_sum_ns: field("latency_sum_ns")?,
            latency_hist,
            vc_sat_ns: field("vc_sat_ns")?,
        })
    }
}

/// The per-run watermark (`progress.json`): what a watcher may trust.
///
/// Invariant: the writer seals slice data *before* advancing `sealed`, so
/// every slice with `seq < sealed` is durably readable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Progress {
    /// Run id (16-hex content hash).
    pub run: String,
    /// Lifecycle state: `running`, `completed`, `failed` or `aborted`.
    pub state: String,
    /// Number of sealed slices (the watermark).
    pub sealed: u64,
    /// Virtual time reached at the last seal (ns).
    pub virtual_ns: u64,
    /// Slice window length (ns).
    pub window_ns: u64,
}

impl Progress {
    /// Canonical single-line JSON.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"run\":\"{}\",\"state\":\"{}\",\"sealed\":{},\"virtual_ns\":{},\
             \"window_ns\":{}}}",
            json::escape(&self.run),
            json::escape(&self.state),
            self.sealed,
            self.virtual_ns,
            self.window_ns,
        )
    }

    /// Parse a `progress.json` document.
    pub fn from_json(text: &str) -> Result<Progress, HrvizError> {
        let v = json::parse(text).map_err(|e| HrvizError::parse("progress", e))?;
        let s = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| HrvizError::parse("progress", format!("missing field `{k}`")))
        };
        let n = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| HrvizError::parse("progress", format!("missing field `{k}`")))
        };
        Ok(Progress {
            run: s("run")?,
            state: s("state")?,
            sealed: n("sealed")?,
            virtual_ns: n("virtual_ns")?,
            window_ns: n("window_ns")?,
        })
    }

    /// Whether the run can produce no further slices.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state.as_str(), "completed" | "failed" | "aborted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Slice {
        Slice {
            seq: 3,
            t_start_ns: 150_000,
            t_end_ns: 200_000,
            delivered_packets: 41,
            delivered_bytes: 83_968,
            injected_packets: 44,
            injected_bytes: 90_112,
            dropped_packets: 1,
            latency_sum_ns: 512_431,
            latency_hist: [0, 2, 30, 9, 0, 0, 0, 0],
            vc_sat_ns: 7_331,
        }
    }

    #[test]
    fn slice_json_round_trips_exactly() {
        let s = sample();
        let text = s.to_json();
        assert_eq!(Slice::from_json(&text).unwrap(), s);
        // Canonical: re-render is byte-identical.
        assert_eq!(Slice::from_json(&text).unwrap().to_json(), text);
    }

    #[test]
    fn progress_json_round_trips() {
        let p = Progress {
            run: "00c0ffee00c0ffee".into(),
            state: "running".into(),
            sealed: 4,
            virtual_ns: 200_000,
            window_ns: 50_000,
        };
        assert_eq!(Progress::from_json(&p.to_json()).unwrap(), p);
        assert!(!p.is_terminal());
        let done = Progress { state: "aborted".into(), ..p };
        assert!(done.is_terminal());
    }

    #[test]
    fn latency_buckets_are_log2_microseconds() {
        assert_eq!(Slice::latency_bucket(0), 0);
        assert_eq!(Slice::latency_bucket(999), 0);
        assert_eq!(Slice::latency_bucket(1_000), 1);
        assert_eq!(Slice::latency_bucket(1_999), 1);
        assert_eq!(Slice::latency_bucket(2_000), 2);
        assert_eq!(Slice::latency_bucket(3_999), 2);
        assert_eq!(Slice::latency_bucket(4_000), 3);
        // Open-ended top bucket.
        assert_eq!(Slice::latency_bucket(u64::MAX / 2), LATENCY_BINS - 1);
    }

    #[test]
    fn malformed_slices_are_rejected() {
        for bad in [
            "{}",
            "{\"seq\":1}",
            "{\"seq\":1,\"t_start_ns\":0,\"t_end_ns\":1,\"delivered_packets\":0,\
             \"delivered_bytes\":0,\"injected_packets\":0,\"injected_bytes\":0,\
             \"dropped_packets\":0,\"latency_sum_ns\":0,\"latency_hist\":[1,2],\"vc_sat_ns\":0}",
        ] {
            assert!(Slice::from_json(bad).is_err(), "should reject {bad}");
        }
    }
}
