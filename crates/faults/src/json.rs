//! A minimal JSON reader for fault-schedule files.
//!
//! The workspace builds fully offline, so there is no serde; schedules are
//! small hand-written (or generated) documents, and this recursive-descent
//! parser covers the full JSON grammar the schedule format needs. Numbers
//! keep their raw text so integers up to `u64::MAX` survive exactly.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; the raw source text is kept for lossless integer access.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an exactly-integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    /// The value as an `f64` number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing content is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes.get(self.pos..).is_some_and(|rest| rest.starts_with(word.as_bytes())) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let quad = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| self.err("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(quad)
                            .map_err(|_| self.err("non-utf8 \\u escape"))?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogate pairs are not needed for schedule files;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("unknown escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 sequences byte-wise.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let seq = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated utf-8 sequence"))?;
                    let s = std::str::from_utf8(seq)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let digits = self.bytes.get(start..self.pos).unwrap_or_default();
        let raw = std::str::from_utf8(digits).map_err(|_| self.err("non-utf8 number"))?;
        if raw.is_empty() || raw == "-" || raw.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(Value::Num(raw.to_string()))
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_schedule_shaped_document() {
        let v = parse(r#"{"seed": 42, "events": [{"kind": "link_down", "router": 3}]}"#).unwrap();
        assert_eq!(v.get("seed").and_then(Value::as_u64), Some(42));
        let events = v.get("events").and_then(Value::as_arr).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("kind").and_then(Value::as_str), Some("link_down"));
    }

    #[test]
    fn large_integers_survive_exactly() {
        let v = parse(&format!("{{\"t\": {}}}", u64::MAX)).unwrap();
        assert_eq!(v.get("t").and_then(Value::as_u64), Some(u64::MAX));
    }

    #[test]
    fn floats_and_escapes() {
        let v =
            parse(r#"{"f": 0.5, "neg": -1.25e2, "s": "a\"b\n", "b": true, "n": null}"#).unwrap();
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(0.5));
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-125.0));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("a\"b\n"));
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
        // A float is not an integer.
        assert_eq!(v.get("f").and_then(Value::as_u64), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in
            ["", "{", "[1,]", "{\"a\" 1}", "{\"a\": }", "\"unterminated", "01x", "{} trailing", "-"]
        {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "line\n\"quoted\"\tend";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some(s));
    }
}
