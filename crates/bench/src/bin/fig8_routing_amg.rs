//! Fig. 8 — minimal vs adaptive routing for AMG on a 2,550-terminal
//! Dragonfly, compared under identical projection configuration and
//! shared encoding scales.
//!
//! Paper shapes: adaptive routing raises local-link usage (non-minimal
//! detours) while lowering saturation time on *all* link classes.

use hrviz_bench::{
    class_summary, class_summary_header, dataset_active, intra_group_spec, run_app, write_csv,
    write_out, Expectations,
};
use hrviz_core::compare_views;
use hrviz_network::{LinkClass, RoutingAlgorithm};
use hrviz_render::{render_radial_row, RadialLayout};
use hrviz_workloads::{AppKind, PlacementPolicy};

fn main() {
    hrviz_bench::obs_init("fig8_routing_amg");
    println!("Fig. 8: minimal vs adaptive routing, AMG on 2,550 terminals");
    let minimal =
        run_app(2_550, AppKind::Amg, RoutingAlgorithm::Minimal, PlacementPolicy::Contiguous, None);
    let adaptive = run_app(
        2_550,
        AppKind::Amg,
        RoutingAlgorithm::adaptive_default(),
        PlacementPolicy::Contiguous,
        None,
    );

    let ds_min = dataset_active(&minimal);
    let ds_ada = dataset_active(&adaptive);
    let views = compare_views(&[&ds_min, &ds_ada], &intra_group_spec()).expect("views build");
    write_out(
        "fig8_routing_amg.svg",
        &render_radial_row(
            &[(&views[0], "Minimal Routing"), (&views[1], "Adaptive Routing")],
            &RadialLayout::default(),
            "Fig 8: AMG under minimal vs adaptive routing (shared scales)",
        ),
    );
    write_csv(
        "fig8_class_summary.csv",
        &[
            class_summary_header(),
            class_summary("minimal", &minimal),
            class_summary("adaptive", &adaptive),
        ],
    );

    let mut exp = Expectations::new();
    exp.check(
        "adaptive raises local-link traffic",
        adaptive.class_traffic(LinkClass::Local) > minimal.class_traffic(LinkClass::Local),
    );
    for class in LinkClass::ALL {
        exp.check(
            &format!("adaptive lowers {} saturation", class.label()),
            adaptive.class_sat_ns(class) <= minimal.class_sat_ns(class),
        );
    }
    exp.check("both configurations deliver all traffic", {
        minimal.total_delivered() == minimal.total_injected()
            && adaptive.total_delivered() == adaptive.total_injected()
    });
    std::process::exit(i32::from(!exp.finish("fig8")));
}
