//! Columnar (struct-of-arrays) re-backing of [`DataSet`].
//!
//! The sweep engine persists every run as one column per stored field
//! (JSONL in `out/store/<run-id>/`), which keeps run files diffable,
//! mergeable and cheap to scan for a single metric. The schema is not
//! hand-maintained: it is derived from the per-kind field tables in
//! [`crate::dataset`] (`set: Some(..)` columns only), so a field added to
//! the row structs automatically persists — and derived fields (aliases,
//! roll-ups) are automatically excluded.
//!
//! [`ColumnTable::new`] is a *validated* constructor: a table loaded from
//! disk either matches the kind's stored schema exactly or fails with a
//! message naming the mismatch, which makes [`ColumnarDataSet::to_dataset`]
//! infallible.

use crate::dataset::{
    DataSet, FieldCol, LinkRow, RouterRow, TerminalRow, LINK_COLS, ROUTER_COLS, TERMINAL_COLS,
};
use crate::entity::{EntityKind, Field};
use hrviz_pdes::SimTime;

fn stored_fields<R>(cols: &'static [FieldCol<R>]) -> Vec<Field> {
    cols.iter().filter(|c| c.set.is_some()).map(|c| c.field).collect()
}

/// The stored (persistable) fields of an entity kind, in schema order.
pub fn schema_of(kind: EntityKind) -> Vec<Field> {
    match kind {
        EntityKind::Router => stored_fields(ROUTER_COLS),
        EntityKind::LocalLink | EntityKind::GlobalLink => stored_fields(LINK_COLS),
        EntityKind::Terminal => stored_fields(TERMINAL_COLS),
    }
}

/// One entity table stored column-major: `columns[i]` holds the values of
/// `fields[i]` for every row.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnTable {
    kind: EntityKind,
    len: usize,
    fields: Vec<Field>,
    columns: Vec<Vec<f64>>,
}

impl ColumnTable {
    /// Validated constructor for the load path: `fields` must be exactly
    /// the stored schema of `kind` (same fields, same order) and every
    /// column must have the same length.
    pub fn new(
        kind: EntityKind,
        fields: Vec<Field>,
        columns: Vec<Vec<f64>>,
    ) -> Result<ColumnTable, String> {
        let schema = schema_of(kind);
        if fields != schema {
            let want: Vec<&str> = schema.iter().map(|f| f.name()).collect();
            let got: Vec<&str> = fields.iter().map(|f| f.name()).collect();
            return Err(format!(
                "{kind} column schema mismatch: expected [{}], got [{}]",
                want.join(", "),
                got.join(", ")
            ));
        }
        if fields.len() != columns.len() {
            return Err(format!(
                "{kind} table has {} fields but {} columns",
                fields.len(),
                columns.len()
            ));
        }
        let len = columns.first().map(Vec::len).unwrap_or(0);
        for (f, c) in fields.iter().zip(&columns) {
            if c.len() != len {
                return Err(format!("{kind} column {f} has {} values, expected {len}", c.len()));
            }
        }
        Ok(ColumnTable { kind, len, fields, columns })
    }

    fn from_rows<R>(kind: EntityKind, rows: &[R], cols: &'static [FieldCol<R>]) -> ColumnTable {
        let stored: Vec<&FieldCol<R>> = cols.iter().filter(|c| c.set.is_some()).collect();
        ColumnTable {
            kind,
            len: rows.len(),
            fields: stored.iter().map(|c| c.field).collect(),
            columns: stored.iter().map(|c| rows.iter().map(c.get).collect()).collect(),
        }
    }

    fn to_rows<R: Default>(&self, cols: &'static [FieldCol<R>]) -> Vec<R> {
        let setters: Vec<fn(&mut R, f64)> = self
            .fields
            .iter()
            .map(|f| {
                cols.iter()
                    .find(|c| c.field == *f)
                    .and_then(|c| c.set)
                    .expect("schema validated at construction")
            })
            .collect();
        (0..self.len)
            .map(|i| {
                let mut row = R::default();
                for (set, col) in setters.iter().zip(&self.columns) {
                    set(&mut row, col[i]);
                }
                row
            })
            .collect()
    }

    /// Entity kind of the table.
    pub fn kind(&self) -> EntityKind {
        self.kind
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stored fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The values of one stored field (`None` for derived/absent fields).
    pub fn column(&self, field: Field) -> Option<&[f64]> {
        self.fields.iter().position(|&f| f == field).map(|i| self.columns[i].as_slice())
    }

    /// Iterate `(field, values)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (Field, &[f64])> {
        self.fields.iter().copied().zip(self.columns.iter().map(Vec::as_slice))
    }
}

/// A whole dataset stored column-major: the on-disk shape of a run in the
/// sweep engine's `RunStore`.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnarDataSet {
    /// Job names (same contract as [`DataSet::jobs`]).
    pub jobs: Vec<String>,
    /// Router columns.
    pub routers: ColumnTable,
    /// Local-link columns.
    pub local_links: ColumnTable,
    /// Global-link columns.
    pub global_links: ColumnTable,
    /// Terminal columns.
    pub terminals: ColumnTable,
    /// The time range the dataset covers.
    pub time_range: Option<(SimTime, SimTime)>,
}

impl ColumnarDataSet {
    /// Transpose a row-major dataset into columns.
    pub fn from_dataset(ds: &DataSet) -> ColumnarDataSet {
        ColumnarDataSet {
            jobs: ds.jobs.clone(),
            routers: ColumnTable::from_rows(EntityKind::Router, &ds.routers, ROUTER_COLS),
            local_links: ColumnTable::from_rows(EntityKind::LocalLink, &ds.local_links, LINK_COLS),
            global_links: ColumnTable::from_rows(
                EntityKind::GlobalLink,
                &ds.global_links,
                LINK_COLS,
            ),
            terminals: ColumnTable::from_rows(EntityKind::Terminal, &ds.terminals, TERMINAL_COLS),
            time_range: ds.time_range,
        }
    }

    /// Validated constructor for the load path: each table must carry its
    /// expected kind.
    pub fn new(
        jobs: Vec<String>,
        routers: ColumnTable,
        local_links: ColumnTable,
        global_links: ColumnTable,
        terminals: ColumnTable,
        time_range: Option<(SimTime, SimTime)>,
    ) -> Result<ColumnarDataSet, String> {
        for (table, want) in [
            (&routers, EntityKind::Router),
            (&local_links, EntityKind::LocalLink),
            (&global_links, EntityKind::GlobalLink),
            (&terminals, EntityKind::Terminal),
        ] {
            if table.kind != want {
                return Err(format!("expected a {want} table, got {}", table.kind));
            }
        }
        Ok(ColumnarDataSet { jobs, routers, local_links, global_links, terminals, time_range })
    }

    /// Materialize row-major [`DataSet`] views over the columns. Derived
    /// fields come back automatically because they are recomputed from the
    /// stored parts by the field tables.
    pub fn to_dataset(&self) -> DataSet {
        DataSet {
            jobs: self.jobs.clone(),
            routers: self.routers.to_rows::<RouterRow>(ROUTER_COLS),
            local_links: self.local_links.to_rows::<LinkRow>(LINK_COLS),
            global_links: self.global_links.to_rows::<LinkRow>(LINK_COLS),
            terminals: self.terminals.to_rows::<TerminalRow>(TERMINAL_COLS),
            time_range: self.time_range,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DataSet {
        let mut d = DataSet { jobs: vec!["a".into(), "b".into()], ..DataSet::default() };
        for i in 0..6u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i / 2,
                group: i / 4,
                rank: (i / 2) % 2,
                port: i % 2,
                job: i % 2,
                data_size: 0.1 + i as f64 * 1000.0,
                recv_bytes: 17.0,
                busy: 3.5,
                sat: i as f64 / 3.0, // non-terminating binary fraction
                packets_finished: 2.0,
                packets_sent: 2.0,
                avg_latency: 1234.5678,
                avg_hops: 3.25,
            });
        }
        for i in 0..3u32 {
            d.local_links.push(LinkRow {
                src_router: i,
                src_group: 0,
                src_rank: i,
                src_port: 1,
                dst_router: (i + 1) % 3,
                dst_group: 0,
                dst_rank: (i + 1) % 3,
                dst_port: 0,
                src_job: 0,
                dst_job: 1,
                traffic: i as f64 * 4096.0,
                sat: i as f64 * 0.001,
            });
        }
        d.global_links.push(LinkRow { traffic: 9.0, ..LinkRow::default() });
        d.routers.push(RouterRow {
            router: 0,
            group: 0,
            rank: 0,
            job: 0,
            global_traffic: 9.0,
            local_traffic: 4096.0,
            global_sat: 0.25,
            local_sat: 0.125,
        });
        d
    }

    #[test]
    fn round_trip_is_exact() {
        let ds = toy();
        let col = ColumnarDataSet::from_dataset(&ds);
        let back = col.to_dataset();
        assert_eq!(back.jobs, ds.jobs);
        assert_eq!(back.terminals, ds.terminals);
        assert_eq!(back.local_links, ds.local_links);
        assert_eq!(back.global_links, ds.global_links);
        assert_eq!(back.routers, ds.routers);
        assert_eq!(back.time_range, ds.time_range);
    }

    #[test]
    fn schema_excludes_derived_fields() {
        let router_schema = schema_of(EntityKind::Router);
        assert!(!router_schema.contains(&Field::TotalTraffic));
        assert!(!router_schema.contains(&Field::Traffic));
        assert!(router_schema.contains(&Field::GlobalTraffic));
        let term_schema = schema_of(EntityKind::Terminal);
        assert!(!term_schema.contains(&Field::Traffic));
        assert!(term_schema.contains(&Field::DataSize));
    }

    #[test]
    fn derived_values_survive_the_round_trip() {
        let ds = toy();
        let back = ColumnarDataSet::from_dataset(&ds).to_dataset();
        assert_eq!(
            back.value(EntityKind::Router, 0, Field::TotalTraffic),
            ds.value(EntityKind::Router, 0, Field::TotalTraffic),
        );
    }

    #[test]
    fn validated_constructor_rejects_bad_schemas() {
        let ds = toy();
        let col = ColumnarDataSet::from_dataset(&ds);
        // Wrong field set for the kind.
        let err = ColumnTable::new(
            EntityKind::Router,
            col.terminals.fields().to_vec(),
            col.terminals.columns.clone(),
        )
        .unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        // Ragged columns.
        let mut ragged = col.terminals.columns.clone();
        ragged[0].pop();
        let err = ColumnTable::new(EntityKind::Terminal, col.terminals.fields().to_vec(), ragged)
            .unwrap_err();
        assert!(err.contains("expected"), "{err}");
        // Kind mismatch at the dataset level.
        let err = ColumnarDataSet::new(
            vec![],
            col.terminals.clone(),
            col.local_links.clone(),
            col.global_links.clone(),
            col.routers.clone(),
            None,
        )
        .unwrap_err();
        assert!(err.contains("expected a router table"), "{err}");
    }

    #[test]
    fn column_lookup_by_field() {
        let col = ColumnarDataSet::from_dataset(&toy());
        let sizes = col.terminals.column(Field::DataSize).unwrap();
        assert_eq!(sizes.len(), 6);
        assert_eq!(sizes[1], 1000.1);
        assert!(col.terminals.column(Field::TotalTraffic).is_none());
        assert_eq!(col.terminals.len(), 6);
        assert!(!col.terminals.is_empty());
        assert_eq!(col.terminals.kind(), EntityKind::Terminal);
        assert_eq!(col.terminals.iter().count(), col.terminals.fields().len());
    }
}
