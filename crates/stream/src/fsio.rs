//! The crash-safe write primitive the live path shares with the store.
//!
//! Same contract the run store established: a reader either sees the old
//! bytes or the new bytes, never a torn file, and after a crash the only
//! debris possible is an abandoned `*.tmp` (which fsck reaps).

use hrviz_faults::HrvizError;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// `<file>` → `<file>.tmp` in the same directory (same filesystem, so the
/// rename is atomic).
pub fn tmp_path_of(path: &Path) -> Result<PathBuf, HrvizError> {
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| HrvizError::config(format!("unwritable path {}", path.display())))?;
    Ok(path.with_file_name(format!("{name}.tmp")))
}

/// Write `bytes` to `path` atomically: temp file + fsync + rename +
/// best-effort parent-directory fsync. Readers never observe a torn file.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), HrvizError> {
    let tmp = tmp_path_of(path)?;
    let io_err = |e: std::io::Error| HrvizError::io(path.display().to_string(), e);
    {
        let mut f = fs::File::create(&tmp).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
    }
    fs::rename(&tmp, path).map_err(io_err)?;
    // Make the rename itself durable. Directory fsync is best-effort: not
    // every platform lets us open a directory read-only for syncing.
    if let Some(parent) = path.parent() {
        if let Ok(d) = fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("hrviz-fsio-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.json");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        assert!(!tmp_path_of(&path).unwrap().exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
