//! Extension: serving the run store (EXPERIMENTS.md `ext_serve`). Sweeps
//! a 2-run store (72-terminal Dragonfly, minimal vs adaptive), binds
//! `hrviz-serve` on a loopback port with 4 workers, and measures the
//! caching ladder from a real TCP client: the cold `POST /views` (disk
//! load + aggregate + project + render), the warm byte-identical repeat,
//! the conditional `304`, and a sustained closed-loop burst. Latencies,
//! the cold/warm speedup, and the sustained request rate land in
//! `out/BENCH_ext_serve.json`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use hrviz_bench::{out_dir, Expectations};
use hrviz_network::RoutingAlgorithm;
use hrviz_obs::{Json, PerfRecord};
use hrviz_pdes::SimTime;
use hrviz_serve::{ServeConfig, Server};
use hrviz_sweep::{RunStore, SweepEngine, SweepSpec, TopologyAxis};

const SCRIPT: &str = r#"{ project: "terminal", aggregate: "router_id",
                          vmap: { color: "sat_time", size: "traffic" } }"#;
const WARM_SAMPLES: usize = 30;
const BURST_CLIENTS: usize = 4;
const BURST_REQUESTS_PER_CLIENT: usize = 100;

/// Status line, ETag (if any), and body of one round-tripped request.
struct Reply {
    status: u16,
    etag: Option<String>,
    body: Vec<u8>,
}

fn post(addr: SocketAddr, path: &str, body: &str, inm: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut req =
        format!("POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n", body.len());
    if let Some(tag) = inm {
        req.push_str(&format!("If-None-Match: {tag}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    stream.write_all(req.as_bytes()).expect("send request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read reply");
    let split = buf.windows(4).position(|w| w == b"\r\n\r\n").expect("complete reply");
    let head = String::from_utf8_lossy(&buf[..split]).into_owned();
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let etag = head.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.eq_ignore_ascii_case("etag").then(|| v.trim().to_string())
    });
    Reply { status, etag, body: buf[split + 4..].to_vec() }
}

/// Median seconds over `n` round trips of the same request.
fn median_latency(n: usize, mut one: impl FnMut() -> Reply) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            let _ = one();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    samples[samples.len() / 2]
}

fn build_store(dir: &Path) -> RunStore {
    let _ = std::fs::remove_dir_all(dir);
    let store = RunStore::open(dir).expect("open store");
    let spec = SweepSpec::new("ext_serve", TopologyAxis::Dragonfly { terminals: 72 })
        .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
        .msgs_per_rank(8)
        .msg_bytes(4 * 1024)
        .period(SimTime::micros(2));
    let engine = SweepEngine::new(store).with_workers(2);
    engine.run(&spec).expect("sweep the store");
    RunStore::open(dir).expect("reopen store")
}

fn main() {
    hrviz_bench::obs_init("ext_serve");
    println!("Extension: serving the run store (hrviz-serve, Dragonfly 72t, 2 runs)");
    let out = out_dir();
    let t0 = Instant::now();

    let store = build_store(&out.join("store_ext_serve"));
    let runs = store.runs().expect("list runs");
    assert_eq!(runs.len(), 2, "two configs, two runs");
    let sweep_wall = t0.elapsed().as_secs_f64();
    println!("  store built: {} runs in {sweep_wall:.3}s", runs.len());

    let cfg = ServeConfig { addr: "127.0.0.1:0".into(), workers: 4, ..ServeConfig::default() };
    let server = Server::bind(cfg, store).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let serve_thread = std::thread::spawn(move || server.serve().expect("serve loop"));
    let views_path = format!("/views?run={}", runs[0]);

    // Cold: every cache layer misses.
    let t_cold = Instant::now();
    let cold = post(addr, &views_path, SCRIPT, None);
    let cold_s = t_cold.elapsed().as_secs_f64();
    let tag = cold.etag.clone().unwrap_or_default();
    println!("  cold  POST /views: {:>8.1} µs  ({} bytes)", cold_s * 1e6, cold.body.len());

    // Warm: the body cache answers.
    let warm = post(addr, &views_path, SCRIPT, None);
    let warm_s = median_latency(WARM_SAMPLES, || post(addr, &views_path, SCRIPT, None));
    println!("  warm  POST /views: {:>8.1} µs  (median of {WARM_SAMPLES})", warm_s * 1e6);

    // Conditional: the client already holds the bytes.
    let nm = post(addr, &views_path, SCRIPT, Some(&tag));
    let nm_s = median_latency(WARM_SAMPLES, || post(addr, &views_path, SCRIPT, Some(&tag)));
    println!("  cond. 304 repeat:  {:>8.1} µs  (median of {WARM_SAMPLES})", nm_s * 1e6);

    // Sustained closed-loop burst: 4 clients × 100 requests.
    let t_burst = Instant::now();
    let clients: Vec<_> = (0..BURST_CLIENTS)
        .map(|_| {
            let path = views_path.clone();
            std::thread::spawn(move || {
                let mut ok = 0usize;
                let mut identical = true;
                let mut reference: Option<Vec<u8>> = None;
                for _ in 0..BURST_REQUESTS_PER_CLIENT {
                    let reply = post(addr, &path, SCRIPT, None);
                    ok += usize::from(reply.status == 200);
                    identical &= reference.get_or_insert_with(|| reply.body.clone()) == &reply.body;
                }
                (ok, identical)
            })
        })
        .collect();
    let results: Vec<(usize, bool)> =
        clients.into_iter().map(|c| c.join().expect("client thread")).collect();
    let burst_wall = t_burst.elapsed().as_secs_f64();
    let burst_total = BURST_CLIENTS * BURST_REQUESTS_PER_CLIENT;
    let burst_ok: usize = results.iter().map(|(ok, _)| ok).sum();
    let burst_identical = results.iter().all(|(_, id)| *id);
    let sustained_rps = burst_total as f64 / burst_wall.max(1e-9);
    println!(
        "  sustained burst:   {burst_total} requests, {BURST_CLIENTS} clients, \
         {sustained_rps:.0} req/s"
    );

    handle.shutdown();
    let report = serve_thread.join().expect("serve thread");
    let speedup = cold_s / warm_s.max(1e-9);
    println!("  cold/warm speedup {speedup:.1}x   report: {report:?}");

    let mut exp = Expectations::new();
    exp.check("cold view answers 200 with an ETag", cold.status == 200 && cold.etag.is_some());
    exp.check(
        "warm repeat is byte-identical",
        warm.status == 200 && warm.body == cold.body && warm.etag == cold.etag,
    );
    exp.check("warm hit ≥5× faster than the cold build", speedup >= 5.0);
    exp.check(
        "conditional repeat answers 304 with no body",
        nm.status == 304 && nm.body.is_empty(),
    );
    exp.check("conditional 304 is no slower than 2× a warm hit", nm_s <= warm_s * 2.0);
    exp.check(
        "sustained burst: every response 200 and byte-identical",
        burst_ok == burst_total && burst_identical,
    );
    exp.check("nothing shed at 4 workers", report.shed == 0);
    let ok = exp.finish("ext_serve");

    let mut perf = PerfRecord::new("ext_serve");
    perf.wall_time_s = t0.elapsed().as_secs_f64();
    perf.events_per_sec = sustained_rps; // requests/s: the rate this driver is about
    perf.extra = vec![
        ("sweep_wall_s".into(), Json::from(sweep_wall)),
        ("cold_us".into(), Json::from(cold_s * 1e6)),
        ("warm_median_us".into(), Json::from(warm_s * 1e6)),
        ("not_modified_median_us".into(), Json::from(nm_s * 1e6)),
        ("cold_warm_speedup".into(), Json::from(speedup)),
        ("sustained_rps".into(), Json::from(sustained_rps)),
        ("burst_requests".into(), Json::from(burst_total as u64)),
        ("requests_handled".into(), Json::from(report.requests)),
        ("requests_shed".into(), Json::from(report.shed)),
        ("view_bytes".into(), Json::from(cold.body.len() as u64)),
    ];
    match perf.write(&out) {
        Ok(p) => println!("  wrote {}", p.display()),
        Err(e) => eprintln!("  perf record write failed: {e}"),
    }
    std::process::exit(i32::from(!ok));
}
