//! Typed view-request parsing: the single validation path for serve
//! query strings and CLI flags.
//!
//! Both the HTTP layer (`POST /views?lod=1&page_size=64`) and the CLI
//! (`hrviz view --lod 1 --page-size 64`) funnel their raw key/value
//! parameters through [`ViewRequest::parse`]. One code path decides what
//! a well-formed request is, so the two surfaces cannot drift; errors
//! come back as a structured [`RequestError`] naming the offending field
//! and a machine-readable code, which serve renders as a structured 400.

use std::collections::BTreeMap;

use crate::graph::{RenderPolicy, LEGACY_SCHEMA_VERSION, SCHEMA_VERSION, SECTION_NAMES};
use crate::script::parse_script;
use crate::spec::ProjectionSpec;

/// Upper bound on `page_size` (0 means "unpaged").
pub const MAX_PAGE_SIZE: usize = 10_000;
/// Upper bound on `max_depth`.
pub const MAX_DEPTH_LIMIT: u8 = 16;

/// A rejected request parameter: which field, a stable machine code, and
/// a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// Parameter (or flag) that failed validation.
    pub field: &'static str,
    /// Stable error code (`unknown_schema`, `bad_int`, ...).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl RequestError {
    fn new(field: &'static str, code: &'static str, message: String) -> RequestError {
        RequestError { field, code, message }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

/// A fully validated view/compare request.
#[derive(Clone, Debug)]
pub struct ViewRequest {
    /// Run ids (one for a view, two or more for a comparison). Empty for
    /// CLI simulation-backed views, which have no store.
    pub runs: Vec<String>,
    /// Wire schema: [`SCHEMA_VERSION`] or [`LEGACY_SCHEMA_VERSION`].
    pub schema: u32,
    /// Graph materialization policy.
    pub policy: RenderPolicy,
    /// Page size in nodes (0 = unpaged).
    pub page_size: usize,
    /// Opaque continuation token from a previous page, if any.
    pub cursor: Option<String>,
    /// The projection script source text.
    pub script: String,
    /// The parsed projection spec.
    pub spec: ProjectionSpec,
}

impl ViewRequest {
    /// Parse and validate a request. `params` holds the raw key/value
    /// pairs (HTTP query or CLI flags), `script` the projection-script
    /// body. When `compare` is set, `runs` must name at least two runs;
    /// otherwise a single `run` is required unless `require_runs` is
    /// false (CLI simulation mode).
    pub fn parse(
        params: &BTreeMap<String, String>,
        script: &str,
        compare: bool,
        require_runs: bool,
    ) -> Result<ViewRequest, RequestError> {
        let spec = parse_script(script)
            .map_err(|e| RequestError::new("script", "bad_script", format!("bad script: {e}")))?;
        let runs = if compare {
            let list = params.get("runs").map(String::as_str).unwrap_or("");
            let runs: Vec<String> =
                list.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect();
            if require_runs && runs.len() < 2 {
                return Err(RequestError::new(
                    "runs",
                    "missing_runs",
                    "comparison needs at least two run ids (?runs={a},{b})".to_string(),
                ));
            }
            runs
        } else {
            match params.get("run") {
                Some(r) if !r.is_empty() => vec![r.clone()],
                _ if require_runs => {
                    return Err(RequestError::new(
                        "run",
                        "missing_run",
                        "a run id is required (?run={id})".to_string(),
                    ));
                }
                _ => vec![],
            }
        };
        let schema = match params.get("schema") {
            None => SCHEMA_VERSION,
            Some(s) => match s.parse::<u32>() {
                Ok(v) if v == SCHEMA_VERSION || v == LEGACY_SCHEMA_VERSION => v,
                _ => {
                    return Err(RequestError::new(
                        "schema",
                        "unknown_schema",
                        format!(
                            "unknown schema {s:?}; supported: {LEGACY_SCHEMA_VERSION} (deprecated), {SCHEMA_VERSION}"
                        ),
                    ));
                }
            },
        };
        let policy = RenderPolicy::from_params(params)?;
        let page_size = bounded_usize(params, "page_size", 0, MAX_PAGE_SIZE)?;
        let cursor = params.get("cursor").filter(|c| !c.is_empty()).cloned();
        Ok(ViewRequest {
            runs,
            schema,
            policy,
            page_size,
            cursor,
            script: script.to_string(),
            spec,
        })
    }
}

impl RenderPolicy {
    /// Parse the policy fields (`lod`, `max_depth`, `max_items`, `show`,
    /// `prune`) out of a raw parameter map, validating ranges and section
    /// names. Absent keys take the defaults.
    pub fn from_params(params: &BTreeMap<String, String>) -> Result<RenderPolicy, RequestError> {
        let defaults = RenderPolicy::default();
        let lod = bounded_usize(params, "lod", defaults.lod as usize, 2)? as u8;
        let max_depth = bounded_usize(
            params,
            "max_depth",
            defaults.max_depth as usize,
            MAX_DEPTH_LIMIT as usize,
        )? as u8;
        let max_items_per_list =
            bounded_usize(params, "max_items", defaults.max_items_per_list, usize::MAX)?;
        let show = section_list(params, "show")?;
        let prune = section_list(params, "prune")?;
        Ok(RenderPolicy { lod, max_depth, max_items_per_list, show, prune })
    }
}

fn bounded_usize(
    params: &BTreeMap<String, String>,
    key: &'static str,
    default: usize,
    max: usize,
) -> Result<usize, RequestError> {
    match params.get(key) {
        None => Ok(default),
        Some(raw) => {
            let v = raw.parse::<usize>().map_err(|_| {
                RequestError::new(key, "bad_int", format!("{key} must be an integer, got {raw:?}"))
            })?;
            if v > max {
                return Err(RequestError::new(
                    key,
                    "out_of_range",
                    format!("{key} must be at most {max}, got {v}"),
                ));
            }
            Ok(v)
        }
    }
}

fn section_list(
    params: &BTreeMap<String, String>,
    key: &'static str,
) -> Result<Vec<String>, RequestError> {
    let Some(raw) = params.get(key) else { return Ok(vec![]) };
    let mut out = Vec::new();
    for name in raw.split(',').filter(|s| !s.is_empty()) {
        if !SECTION_NAMES.contains(&name) {
            return Err(RequestError::new(
                key,
                "unknown_section",
                format!("unknown section {name:?}; known: {}", SECTION_NAMES.join(", ")),
            ));
        }
        out.push(name.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRIPT: &str = r#"{ project: "terminal", aggregate: "router_id",
                              vmap: { color: "traffic" } }"#;

    fn params(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect()
    }

    #[test]
    fn defaults_are_schema_2_full_fidelity_unpaged() {
        let r = ViewRequest::parse(&params(&[("run", "00000000000000aa")]), SCRIPT, false, true)
            .expect("parses");
        assert_eq!(r.schema, SCHEMA_VERSION);
        assert_eq!(r.policy, RenderPolicy::default());
        assert_eq!(r.page_size, 0);
        assert!(r.cursor.is_none());
        assert_eq!(r.runs, vec!["00000000000000aa".to_string()]);
    }

    #[test]
    fn flags_flow_into_the_policy() {
        let p = params(&[
            ("run", "00000000000000aa"),
            ("lod", "1"),
            ("max_depth", "2"),
            ("max_items", "5"),
            ("page_size", "64"),
            ("show", "terminal,ribbons"),
        ]);
        let r = ViewRequest::parse(&p, SCRIPT, false, true).expect("parses");
        assert_eq!(r.policy.lod, 1);
        assert_eq!(r.policy.max_depth, 2);
        assert_eq!(r.policy.max_items_per_list, 5);
        assert_eq!(r.page_size, 64);
        assert_eq!(r.policy.show, vec!["terminal".to_string(), "ribbons".to_string()]);
    }

    #[test]
    fn structured_errors_name_field_and_code() {
        let bad_schema =
            ViewRequest::parse(&params(&[("run", "a"), ("schema", "3")]), SCRIPT, false, true)
                .expect_err("schema 3 rejected");
        assert_eq!((bad_schema.field, bad_schema.code), ("schema", "unknown_schema"));

        let bad_lod =
            ViewRequest::parse(&params(&[("run", "a"), ("lod", "9")]), SCRIPT, false, true)
                .expect_err("lod 9 rejected");
        assert_eq!((bad_lod.field, bad_lod.code), ("lod", "out_of_range"));

        let bad_int =
            ViewRequest::parse(&params(&[("run", "a"), ("page_size", "x")]), SCRIPT, false, true)
                .expect_err("non-integer rejected");
        assert_eq!((bad_int.field, bad_int.code), ("page_size", "bad_int"));

        let bad_section =
            ViewRequest::parse(&params(&[("run", "a"), ("prune", "bogus")]), SCRIPT, false, true)
                .expect_err("unknown section rejected");
        assert_eq!((bad_section.field, bad_section.code), ("prune", "unknown_section"));

        let no_run = ViewRequest::parse(&params(&[]), SCRIPT, false, true)
            .expect_err("missing run rejected");
        assert_eq!((no_run.field, no_run.code), ("run", "missing_run"));

        let one_run = ViewRequest::parse(&params(&[("runs", "a")]), SCRIPT, true, true)
            .expect_err("one-run comparison rejected");
        assert_eq!((one_run.field, one_run.code), ("runs", "missing_runs"));

        let bad_script = ViewRequest::parse(&params(&[("run", "a")]), "{", false, true)
            .expect_err("bad script rejected");
        assert_eq!((bad_script.field, bad_script.code), ("script", "bad_script"));
    }

    #[test]
    fn legacy_schema_1_is_accepted() {
        let r = ViewRequest::parse(&params(&[("run", "a"), ("schema", "1")]), SCRIPT, false, true)
            .expect("schema 1 parses");
        assert_eq!(r.schema, LEGACY_SCHEMA_VERSION);
    }

    #[test]
    fn cli_simulation_mode_needs_no_run() {
        let r = ViewRequest::parse(&params(&[("lod", "0")]), SCRIPT, false, false)
            .expect("parses without run");
        assert!(r.runs.is_empty());
        assert_eq!(r.policy.lod, 0);
    }
}
