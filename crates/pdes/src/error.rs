//! Structured simulation failures.
//!
//! The default [`Engine::run_until`](crate::Engine::run_until) family keeps
//! its panic-on-model-bug semantics for tests and tools that want fail-fast
//! behaviour; the checked `try_*` variants instead surface scheduler
//! pathologies — virtual-time stalls and post-run invariant violations such
//! as credit leaks — as values of this type so callers can report them and
//! exit cleanly.

use crate::time::SimTime;
use std::fmt;

/// A structured failure detected by the engine watchdogs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Virtual time stopped advancing: the engine processed more than
    /// `limit` consecutive events without the clock moving. Almost always a
    /// zero-delay self-event loop in the model.
    VirtualTimeStall {
        /// Simulation time at which progress stopped.
        now: SimTime,
        /// Events processed at `now` before the watchdog tripped.
        events: u64,
        /// The configured per-timestamp event limit.
        limit: u64,
    },
    /// A post-run audit found LP state that violates a model invariant
    /// (e.g. flow-control credits that were never returned). Collected
    /// after the event set drained; each entry is `(lp, description)`.
    Invariant {
        /// Violations, at most a handful (reporting is truncated).
        failures: Vec<(u32, String)>,
        /// Total number of LPs that failed the audit (may exceed
        /// `failures.len()` when truncated).
        total: u64,
    },
}

impl SimError {
    /// Short machine-friendly tag (used in telemetry events).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::VirtualTimeStall { .. } => "virtual_time_stall",
            SimError::Invariant { .. } => "invariant",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::VirtualTimeStall { now, events, limit } => write!(
                f,
                "virtual time stalled at t={}ns: {events} events processed without progress \
                 (limit {limit}); likely a zero-delay event loop",
                now.as_nanos()
            ),
            SimError::Invariant { failures, total } => {
                write!(f, "post-run audit failed for {total} LP(s):")?;
                for (lp, what) in failures {
                    write!(f, " [lp {lp}: {what}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Watchdog configuration shared by the sequential and parallel engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Maximum events the engine may process without virtual time advancing
    /// before declaring a stall. The parallel engine applies the same limit
    /// per partition window (virtual time strictly advances *between*
    /// windows, so a stall can only hide inside one).
    pub max_stalled_events: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        // Same-timestamp bursts in real models are bounded by node fan-out
        // (thousands); millions of events at one timestamp is a loop.
        WatchdogConfig { max_stalled_events: 5_000_000 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_time_and_limit() {
        let e = SimError::VirtualTimeStall { now: SimTime(42), events: 10, limit: 9 };
        let s = e.to_string();
        assert!(s.contains("t=42ns"), "{s}");
        assert!(s.contains("limit 9"), "{s}");
        assert_eq!(e.kind(), "virtual_time_stall");
    }

    #[test]
    fn display_lists_audit_failures() {
        let e =
            SimError::Invariant { failures: vec![(3, "2 credits outstanding".into())], total: 5 };
        let s = e.to_string();
        assert!(s.contains("5 LP(s)"), "{s}");
        assert!(s.contains("lp 3"), "{s}");
        assert_eq!(e.kind(), "invariant");
    }
}
