//! Application-trace proxies for the three DOE Design Forward workloads the
//! paper analyzes (Table I, §V-C):
//!
//! | app | ranks | data | pattern |
//! |-----|-------|------|---------|
//! | AMG | 1728 | 1.2 GB | 3-D nearest neighbor |
//! | AMR Boxlib | 1728 | 2.2 GB | irregular and sparse |
//! | MiniFE | 1152 | 147 GB | many-to-many |
//!
//! The original study replays DUMPI MPI traces; those are not
//! redistributable, so each proxy synthesizes an injection schedule with
//! the same *spatial* structure (who talks to whom, how much) and
//! *temporal* structure (the burst/phase shapes of Fig. 12):
//!
//! * **AMG** — halo exchange on a 12×12×12 rank grid with up to six
//!   neighbors per rank, concentrated in three bursts (start / middle /
//!   end of the run), as the paper's Fig. 12 timeline shows.
//! * **AMR Boxlib** — sparse, irregular: per-rank send volume follows a
//!   Zipf(1.2) distribution so the first ~6 % of ranks originate over 60 %
//!   of the traffic (matching the load concentration reported in §V-C),
//!   with mostly-local partner sets and spurty timing.
//! * **MiniFE** — many-to-many: each CG iteration every rank exchanges
//!   with partners at power-of-two stride offsets (halo + reduction
//!   butterflies), sustained across the run; two orders of magnitude more
//!   data than the other two apps.
//!
//! Volumes are scaled by `data_scale` (default 1/64) to keep packet-level
//! simulation laptop-sized; all ratios are preserved.

use hrviz_network::{JobId, JobMeta, MsgInjection};
use hrviz_pdes::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three applications of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Algebraic multigrid solver (3-D nearest neighbor).
    Amg,
    /// Adaptive mesh refinement, compressible hydrodynamics (irregular).
    AmrBoxlib,
    /// Finite-element conjugate gradient (many-to-many).
    MiniFe,
}

impl AppKind {
    /// All three, in Table I order.
    pub const ALL: [AppKind; 3] = [AppKind::Amg, AppKind::AmrBoxlib, AppKind::MiniFe];

    /// Display name (as in Table I).
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::Amg => "AMG",
            AppKind::AmrBoxlib => "AMR Boxlib",
            AppKind::MiniFe => "MiniFE",
        }
    }

    /// MPI ranks (Table I).
    pub fn ranks(&self) -> u32 {
        match self {
            AppKind::Amg => 1728,
            AppKind::AmrBoxlib => 1728,
            AppKind::MiniFe => 1152,
        }
    }

    /// Total communicated data in bytes, unscaled (Table I).
    pub fn data_bytes(&self) -> u64 {
        match self {
            AppKind::Amg => (1.2 * 1e9) as u64,
            AppKind::AmrBoxlib => (2.2 * 1e9) as u64,
            AppKind::MiniFe => 147 * 1_000_000_000,
        }
    }

    /// Communication-pattern description (Table I).
    pub fn comm_pattern(&self) -> &'static str {
        match self {
            AppKind::Amg => "3D nearest neighbor",
            AppKind::AmrBoxlib => "Irregular and sparse",
            AppKind::MiniFe => "Many-to-many",
        }
    }

    /// The sampling rate the paper uses in Fig. 12 for this app.
    pub fn fig12_sampling(&self) -> SimTime {
        match self {
            AppKind::Amg => SimTime::nanos(20_000), // 0.02 ms
            AppKind::AmrBoxlib | AppKind::MiniFe => SimTime::millis(1),
        }
    }
}

/// Configuration for synthesizing an application workload.
#[derive(Clone, Copy, Debug)]
pub struct AppConfig {
    /// Which application.
    pub kind: AppKind,
    /// Volume scale factor applied to [`AppKind::data_bytes`].
    pub data_scale: f64,
    /// Span of simulated time the injections cover.
    pub duration: SimTime,
    /// RNG seed.
    pub seed: u64,
}

impl AppConfig {
    /// Defaults: 1/64 volume over 200 µs of injections.
    pub fn new(kind: AppKind) -> Self {
        AppConfig { kind, data_scale: 1.0 / 64.0, duration: SimTime::micros(200), seed: 0xBEEF }
    }

    /// Builder-style volume scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.data_scale = scale;
        self
    }

    /// Builder-style duration.
    pub fn with_duration(mut self, d: SimTime) -> Self {
        self.duration = d;
        self
    }

    /// Scaled total volume.
    pub fn scaled_bytes(&self) -> u64 {
        (self.kind.data_bytes() as f64 * self.data_scale) as u64
    }
}

/// Best-effort 3-D factorization of `n` into near-equal dims.
fn grid3(n: u32) -> (u32, u32, u32) {
    let mut best = (1, 1, n);
    let mut best_score = u32::MAX;
    let mut x = 1;
    while x * x * x <= n {
        if n.is_multiple_of(x) {
            let rem = n / x;
            let mut y = x;
            while y * y <= rem {
                if rem.is_multiple_of(y) {
                    let z = rem / y;
                    let score = z - x; // minimize spread
                    if score < best_score {
                        best_score = score;
                        best = (x, y, z);
                    }
                }
                y += 1;
            }
        }
        x += 1;
    }
    best
}

fn amg(job_id: JobId, job: &JobMeta, cfg: &AppConfig, rng: &mut StdRng) -> Vec<MsgInjection> {
    let n = job.terminals.len() as u32;
    let (dx, dy, dz) = grid3(n);
    let coord = |r: u32| (r % dx, (r / dx) % dy, r / (dx * dy));
    let index = |x: u32, y: u32, z: u32| x + y * dx + z * dx * dy;
    // Collect each rank's (up to six) halo neighbors.
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for r in 0..n {
        let (x, y, z) = coord(r);
        let mut push = |p: Option<u32>| {
            if let Some(p) = p {
                pairs.push((r, p));
            }
        };
        push((x > 0).then(|| index(x - 1, y, z)));
        push((x + 1 < dx).then(|| index(x + 1, y, z)));
        push((y > 0).then(|| index(x, y - 1, z)));
        push((y + 1 < dy).then(|| index(x, y + 1, z)));
        push((z > 0).then(|| index(x, y, z - 1)));
        push((z + 1 < dz).then(|| index(x, y, z + 1)));
    }
    // Three bursts: start, middle, end (Fig. 12). Each burst sends every
    // halo pair once; message size divides the total volume evenly.
    const BURSTS: [f64; 3] = [0.02, 0.45, 0.9];
    let total = cfg.scaled_bytes();
    let msg_bytes = (total / (pairs.len() as u64 * BURSTS.len() as u64)).max(1);
    let t = cfg.duration.as_nanos() as f64;
    let mut out = Vec::with_capacity(pairs.len() * BURSTS.len());
    for phase in BURSTS {
        let burst_start = (t * phase) as u64;
        let burst_span = (t * 0.04) as u64; // bursts are narrow
        for &(src, dst) in &pairs {
            out.push(MsgInjection {
                time: SimTime(burst_start + rng.gen_range(0..burst_span.max(1))),
                src: job.terminals[src as usize],
                dst: job.terminals[dst as usize],
                bytes: msg_bytes,
                job: job_id,
            });
        }
    }
    out
}

fn amr_boxlib(
    job_id: JobId,
    job: &JobMeta,
    cfg: &AppConfig,
    rng: &mut StdRng,
) -> Vec<MsgInjection> {
    let n = job.terminals.len() as u32;
    // Concentrated send budgets: the first ~6 % of ranks (the deepest
    // refinement levels, resident in the job's first groups under
    // contiguous placement) carry ~60 % of the volume — the concentration
    // Fig. 10/11 reveals — while no single rank dominates outright (a
    // per-rank Zipf head would turn one NIC into the app's bottleneck and
    // mask placement effects entirely).
    let heavy = (n / 16).max(1);
    let weights: Vec<f64> = (0..n).map(|i| if i < heavy { 24.0 } else { 1.0 }).collect();
    let wsum: f64 = weights.iter().sum();
    let total = cfg.scaled_bytes() as f64;
    // The AMR trace spans a much longer wall-clock than AMG's bursts: its
    // refinement steps spread over 4x the nominal window (volumes are
    // Table-I-faithful; only intensity drops, keeping the job "sparse").
    let t = cfg.duration.as_nanos() as f64 * 4.0;
    // AMR refinement happens in globally synchronized, irregularly spaced
    // steps: a handful of job-wide spurt events that every participating
    // rank joins. This produces the irregular sawtooth of Fig. 12 and the
    // bursty interference profile of §V-D.
    let n_events = 10usize;
    let mut events: Vec<u64> = (0..n_events).map(|_| rng.gen_range(0..(t as u64).max(1))).collect();
    events.sort_unstable();
    let mut out = Vec::new();
    for r in 0..n {
        let budget = total * weights[r as usize] / wsum;
        if budget < 1.0 {
            continue;
        }
        // Sparse partner set with group-scale box locality: AMR exchanges
        // with a few subdomains within ±64 ranks (about one allocation
        // group), rarely a remote one. Group-scale locality is what lets
        // random-group placement insulate the job inside its own groups,
        // while random-router placement pushes the same messages through
        // the shared global fabric where the heavy jobs interfere (§V-D).
        let degree = rng.gen_range(4..=8);
        let partners: Vec<u32> = (0..degree)
            .map(|_| {
                if rng.gen_bool(0.9) {
                    let delta = rng.gen_range(1..=64);
                    if rng.gen_bool(0.5) {
                        (r + delta) % n
                    } else {
                        (r + n - delta) % n
                    }
                } else {
                    rng.gen_range(0..n)
                }
            })
            .filter(|&p| p != r)
            .collect();
        if partners.is_empty() {
            continue;
        }
        // Each rank participates in 2–4 of the shared spurt events.
        let spurts = rng.gen_range(2..=4).min(n_events);
        let per_msg = (budget / (partners.len() * spurts) as f64).max(1.0) as u64;
        for _ in 0..spurts {
            let spurt_at = events[rng.gen_range(0..n_events)];
            for &p in &partners {
                out.push(MsgInjection {
                    time: SimTime(spurt_at + rng.gen_range(0..(t * 0.15) as u64 + 1)),
                    src: job.terminals[r as usize],
                    dst: job.terminals[p as usize],
                    bytes: per_msg,
                    job: job_id,
                });
            }
        }
    }
    out
}

/// Ranks per MiniFE decomposition block (row of the 2-D domain): the
/// many-to-many exchange is dense *within* a block and light across
/// blocks, which is why the paper observes intense intra-group congestion
/// that job placement cannot relieve (§V-D).
const MINIFE_BLOCK: u32 = 64;

fn minife(job_id: JobId, job: &JobMeta, cfg: &AppConfig, rng: &mut StdRng) -> Vec<MsgInjection> {
    let n = job.terminals.len() as u32;
    let block = MINIFE_BLOCK.min(n);
    // Dense power-of-two strides within the block (row halo + reduction
    // butterflies), plus light cross-block strides (column exchanges /
    // global dot-product reductions).
    let local_strides: Vec<u32> = (0..).map(|k| 1u32 << k).take_while(|&s| s < block).collect();
    let global_strides: Vec<u32> =
        (0..).map(|k| block << k).take_while(|&s| s < n).take(2).collect();
    let strides: Vec<(u32, bool)> = local_strides
        .iter()
        .map(|&s| (s, true))
        .chain(global_strides.iter().map(|&s| (s, false)))
        .collect();
    const ITERATIONS: u64 = 16;
    let total = cfg.scaled_bytes();
    // 90 % of the volume stays within blocks; 10 % crosses blocks.
    let n_local = local_strides.len().max(1) as u64;
    let n_global = global_strides.len() as u64;
    let local_msg = (total * 9 / 10 / (n as u64 * n_local * ITERATIONS)).max(1);
    let global_msg =
        if n_global > 0 { (total / 10 / (n as u64 * n_global * ITERATIONS)).max(1) } else { 0 };
    // Boundary subdomains exchange bigger halos: vary per-rank volume by
    // ±50 % so per-terminal metrics spread (the high latency variance the
    // paper reads off the outer scatter rings).
    let rank_scale: Vec<f64> =
        (0..n).map(|_| 0.5 + rng.gen_range(0..=100) as f64 / 100.0).collect();
    let iter_span = cfg.duration.as_nanos() / ITERATIONS;
    let mut out = Vec::with_capacity((n as u64 * (n_local + n_global) * ITERATIONS) as usize);
    for it in 0..ITERATIONS {
        let t0 = it * iter_span;
        for r in 0..n {
            let b0 = r / block * block;
            for &(s, local) in &strides {
                let dst = if local { b0 + ((r - b0) + s) % block.min(n - b0) } else { (r + s) % n };
                if dst == r {
                    continue;
                }
                let bytes = if local { local_msg } else { global_msg };
                if bytes == 0 {
                    continue;
                }
                out.push(MsgInjection {
                    time: SimTime(t0 + rng.gen_range(0..iter_span.max(1))),
                    src: job.terminals[r as usize],
                    dst: job.terminals[dst as usize],
                    bytes: ((bytes as f64 * rank_scale[r as usize]) as u64).max(1),
                    job: job_id,
                });
            }
        }
    }
    out
}

/// Synthesize the injection schedule for an application job. Rank `i` runs
/// on `job.terminals[i]`; `job.terminals.len()` may be smaller than the
/// nominal rank count (the proxy shrinks with the job).
pub fn generate_app(job_id: JobId, job: &JobMeta, cfg: &AppConfig) -> Vec<MsgInjection> {
    let _span = hrviz_obs::get().span("workloads/generate");
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ ((job_id as u64) << 32) ^ cfg.kind.ranks() as u64);
    match cfg.kind {
        AppKind::Amg => amg(job_id, job, cfg, &mut rng),
        AppKind::AmrBoxlib => amr_boxlib(job_id, job, cfg, &mut rng),
        AppKind::MiniFe => minife(job_id, job, cfg, &mut rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_network::TerminalId;
    use std::collections::HashMap;

    fn job(n: u32) -> JobMeta {
        JobMeta { name: "app".into(), terminals: (0..n).map(TerminalId).collect() }
    }

    fn volume(msgs: &[MsgInjection]) -> u64 {
        msgs.iter().map(|m| m.bytes).sum()
    }

    #[test]
    fn table1_constants() {
        assert_eq!(AppKind::Amg.ranks(), 1728);
        assert_eq!(AppKind::AmrBoxlib.ranks(), 1728);
        assert_eq!(AppKind::MiniFe.ranks(), 1152);
        assert_eq!(AppKind::MiniFe.data_bytes(), 147_000_000_000);
        assert_eq!(AppKind::Amg.comm_pattern(), "3D nearest neighbor");
        assert!(AppKind::MiniFe.data_bytes() > 60 * AppKind::AmrBoxlib.data_bytes());
    }

    #[test]
    fn grid3_factors_cubes_exactly() {
        assert_eq!(grid3(1728), (12, 12, 12));
        assert_eq!(grid3(8), (2, 2, 2));
        assert_eq!(grid3(27), (3, 3, 3));
    }

    #[test]
    fn grid3_handles_non_cubes() {
        let (x, y, z) = grid3(1152);
        assert_eq!(x * y * z, 1152);
        assert!(z <= 16 * x, "dims should stay near-cubic: {x}x{y}x{z}");
    }

    #[test]
    fn amg_messages_go_to_grid_neighbors() {
        let cfg = AppConfig::new(AppKind::Amg).with_scale(1.0 / 1024.0);
        let msgs = generate_app(0, &job(27), &cfg);
        // On a 3x3x3 grid, neighbor ids differ by 1, 3, or 9.
        for m in &msgs {
            let d = m.src.0.abs_diff(m.dst.0);
            assert!(d == 1 || d == 3 || d == 9, "non-neighbor message {} -> {}", m.src.0, m.dst.0);
        }
    }

    #[test]
    fn amg_has_three_bursts() {
        let cfg = AppConfig::new(AppKind::Amg).with_scale(1.0 / 256.0);
        let msgs = generate_app(0, &job(216), &cfg);
        let t = cfg.duration.as_nanos();
        let thirds = |m: &MsgInjection| (m.time.as_nanos() * 3 / t.max(1)).min(2);
        let mut counts = [0u32; 3];
        for m in &msgs {
            counts[thirds(m) as usize] += 1;
        }
        // All three thirds see traffic; middles of gaps would be empty, but
        // bucketing by thirds aligns with the three bursts.
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn amr_concentrates_volume_on_first_ranks() {
        let cfg = AppConfig::new(AppKind::AmrBoxlib).with_scale(1.0 / 64.0);
        let n = 1728;
        let msgs = generate_app(0, &job(n), &cfg);
        let mut per_rank: HashMap<u32, u64> = HashMap::new();
        for m in &msgs {
            *per_rank.entry(m.src.0).or_default() += m.bytes;
        }
        let total: u64 = per_rank.values().sum();
        let first: u64 = (0..n / 16).map(|r| per_rank.get(&r).copied().unwrap_or(0)).sum();
        assert!(
            first as f64 > 0.55 * total as f64,
            "first 1/16 of ranks should carry the majority: {} / {}",
            first,
            total
        );
    }

    #[test]
    fn minife_is_many_to_many() {
        let cfg = AppConfig::new(AppKind::MiniFe).with_scale(1.0 / 4096.0);
        let n = 64;
        let msgs = generate_app(0, &job(n), &cfg);
        // Every rank sends to log2(n) distinct stride partners.
        let partners: std::collections::HashSet<_> =
            msgs.iter().filter(|m| m.src.0 == 0).map(|m| m.dst.0).collect();
        assert_eq!(partners.len(), 6); // strides 1,2,4,8,16,32
    }

    #[test]
    fn volumes_respect_scale_and_ordering() {
        let n = 256;
        let scale = 1.0 / 512.0;
        let v: Vec<u64> = AppKind::ALL
            .iter()
            .map(|&k| {
                let cfg = AppConfig::new(k).with_scale(scale);
                volume(&generate_app(0, &job(n), &cfg))
            })
            .collect();
        // MiniFE ≫ AMR > AMG, roughly preserving Table I ratios.
        assert!(v[2] > 10 * v[1], "MiniFE must dominate: {v:?}");
        assert!(v[1] > v[0], "AMR > AMG: {v:?}");
        // Each within 40% of its scaled target (integer division slack).
        for (k, &got) in AppKind::ALL.iter().zip(&v) {
            let want = (k.data_bytes() as f64 * scale) as u64;
            assert!(
                (got as f64) > 0.6 * want as f64 && (got as f64) < 1.4 * want as f64,
                "{}: got {} want {}",
                k.name(),
                got,
                want
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = AppConfig::new(AppKind::AmrBoxlib).with_scale(1.0 / 1024.0);
        let a = generate_app(1, &job(128), &cfg);
        let b = generate_app(1, &job(128), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn messages_fit_duration() {
        for kind in AppKind::ALL {
            let cfg = AppConfig::new(kind).with_scale(1.0 / 2048.0);
            let msgs = generate_app(0, &job(128), &cfg);
            assert!(!msgs.is_empty());
            // AMR intentionally spreads over 4x the nominal window (see
            // amr_boxlib); the others stay within it.
            let factor = if kind == AppKind::AmrBoxlib { 5 } else { 1 };
            let end = cfg.duration.as_nanos() * factor + cfg.duration.as_nanos() / 10;
            assert!(
                msgs.iter().all(|m| m.time.as_nanos() <= end),
                "{} messages exceed duration",
                kind.name()
            );
        }
    }

    #[test]
    fn no_self_messages_reach_network() {
        // Generators may emit src==dst only if the simulator drops them;
        // ours avoid it outright except AMG cannot (grid neighbors differ).
        for kind in AppKind::ALL {
            let cfg = AppConfig::new(kind).with_scale(1.0 / 2048.0);
            let msgs = generate_app(0, &job(125), &cfg);
            assert!(msgs.iter().all(|m| m.src != m.dst), "{}", kind.name());
        }
    }
}
