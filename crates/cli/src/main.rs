//! The `hrviz` binary: see [`hrviz_cli`] for the implementation.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hrviz_cli::parse_args(&args).and_then(|cli| hrviz_cli::run(&cli)) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            // Distinct exit codes per error class: usage 2, config 3,
            // io 4, parse 5, sim 6.
            eprintln!("hrviz: {e}");
            std::process::exit(e.exit_code());
        }
    }
}
