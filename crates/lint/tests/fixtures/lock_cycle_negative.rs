// Fixture: a consistent acquisition order is acyclic.
use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn diff(&self) -> u32 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga - *gb
    }
}
