//! Events and their deterministic total order.
//!
//! Every event carries an [`EventKey`] that orders it totally: first by
//! timestamp, then by destination LP, then by a `(source LP, per-source
//! sequence number)` pair. Sequence numbers are assigned deterministically
//! by each sender, so the induced order is independent of scheduler
//! interleaving — the foundation of the sequential/parallel equivalence
//! guarantee.

use crate::time::SimTime;
use std::cmp::Ordering;

/// Identifier of a logical process (LP). LPs are dense indices assigned at
/// engine construction, so `LpId` doubles as an index into the LP vector.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LpId(pub u32);

impl LpId {
    /// The LP id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Total-order key for an event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EventKey {
    /// When the event fires.
    pub time: SimTime,
    /// The LP that receives the event.
    pub dst: LpId,
    /// The LP that sent the event (`dst` itself for self-scheduled events,
    /// `LpId(u32::MAX)` for events injected before the run starts).
    pub src: LpId,
    /// Per-source monotone sequence number, disambiguating events a single
    /// sender emits at the same timestamp.
    pub seq: u64,
}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then_with(|| self.dst.cmp(&other.dst))
            .then_with(|| self.src.cmp(&other.src))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An event: a key plus an application payload.
#[derive(Clone, Debug)]
pub struct Event<P> {
    /// Ordering key (time, destination, provenance).
    pub key: EventKey,
    /// Application-defined payload delivered to the destination LP.
    pub payload: P,
}

impl<P> Event<P> {
    /// Convenience accessor for the firing time.
    pub fn time(&self) -> SimTime {
        self.key.time
    }

    /// Convenience accessor for the destination LP.
    pub fn dst(&self) -> LpId {
        self.key.dst
    }
}

impl<P> PartialEq for Event<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<P> Eq for Event<P> {}

impl<P> Ord for Event<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

impl<P> PartialOrd for Event<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Source id used for events injected by the harness before the run starts.
pub const EXTERNAL_SRC: LpId = LpId(u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, dst: u32, src: u32, seq: u64) -> EventKey {
        EventKey { time: SimTime(t), dst: LpId(dst), src: LpId(src), seq }
    }

    #[test]
    fn ordering_by_time_first() {
        assert!(key(1, 9, 9, 9) < key(2, 0, 0, 0));
    }

    #[test]
    fn ordering_ties_broken_by_dst_src_seq() {
        assert!(key(5, 0, 7, 7) < key(5, 1, 0, 0));
        assert!(key(5, 3, 0, 9) < key(5, 3, 1, 0));
        assert!(key(5, 3, 2, 0) < key(5, 3, 2, 1));
    }

    #[test]
    fn identical_keys_are_equal() {
        assert_eq!(key(5, 3, 2, 1), key(5, 3, 2, 1));
    }

    #[test]
    fn event_order_follows_key() {
        let a = Event { key: key(1, 0, 0, 0), payload: "a" };
        let b = Event { key: key(2, 0, 0, 0), payload: "b" };
        assert!(a < b);
        assert_eq!(a.time(), SimTime(1));
        assert_eq!(b.dst(), LpId(0));
    }
}
