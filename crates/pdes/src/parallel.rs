//! Conservative parallel scheduler.
//!
//! ROSS runs Time Warp (optimistic) synchronization; for this reproduction
//! we implement the conservative, barrier-synchronized equivalent: LPs are
//! partitioned across workers, and execution proceeds in epochs of width
//! `lookahead` — the model-guaranteed minimum cross-LP event delay. Within
//! an epoch `[W, W + lookahead)` no event created in the epoch can affect
//! another partition inside the same epoch, so partitions execute
//! independently and exchange cross-partition events at the barrier.
//!
//! Because every event carries a deterministic total-order key
//! ([`EventKey`]) and each partition processes its
//! events in that order, the per-LP event sequence is *identical* to the
//! sequential engine's — the two engines are interchangeable, which the
//! test suite verifies on several models.

use crate::calendar::{EventQueue, HeapQueue};
use crate::engine::{audit_lps, report_watchdog, EngineStats};
use crate::error::{SimError, WatchdogConfig};
use crate::event::{Event, EventKey, LpId, EXTERNAL_SRC};
use crate::lp::{Ctx, Lp};
use crate::time::SimTime;
use hrviz_obs::{Collector, Json};
use rayon::prelude::*;

struct Partition<P, L> {
    /// Global ids of the LPs this partition owns (a contiguous block).
    base: u32,
    lps: Vec<L>,
    seqs: Vec<u64>,
    queue: HeapQueue<P>,
    events_processed: u64,
    /// Events this partition's LPs scheduled (cross-partition included).
    events_scheduled: u64,
    now: SimTime,
}

impl<P, L: Lp<P>> Partition<P, L> {
    fn owns(&self, id: LpId) -> bool {
        let i = id.0;
        i >= self.base && i < self.base + self.lps.len() as u32
    }

    fn local(&self, id: LpId) -> usize {
        (id.0 - self.base) as usize
    }

    /// Process all queued events with `time < end`, in key order.
    /// Cross-partition events are collected into `outbox`.
    ///
    /// `stall_cap` bounds consecutive same-timestamp events: virtual time
    /// strictly advances between windows, so a zero-delay event loop can
    /// only spin *inside* one window, where this cap converts it into a
    /// [`SimError::VirtualTimeStall`].
    fn run_window(
        &mut self,
        end: SimTime,
        lookahead: SimTime,
        out_buf: &mut Vec<Event<P>>,
        outbox: &mut Vec<Event<P>>,
        stall_cap: u64,
    ) -> Result<(), SimError> {
        let mut stalled = 0u64;
        while self.queue.peek_key().is_some_and(|k| k.time < end) {
            let Some(ev) = self.queue.pop() else { break };
            if ev.key.time > self.now {
                stalled = 0;
            } else {
                stalled += 1;
                if stalled > stall_cap {
                    return Err(SimError::VirtualTimeStall {
                        now: ev.key.time,
                        events: stalled,
                        limit: stall_cap,
                    });
                }
            }
            self.now = ev.key.time;
            let idx = self.local(ev.key.dst);
            // lint:allow(slice_index, reason="idx = local(dst) for an owned dst; seqs/lps are lockstep arrays")
            let mut ctx = Ctx::new(self.now, ev.key.dst, &mut self.seqs[idx], out_buf, lookahead);
            // lint:allow(slice_index, reason="idx = local(dst) for an owned dst")
            self.lps[idx].on_event(&mut ctx, ev.payload);
            self.events_processed += 1;
            self.events_scheduled += out_buf.len() as u64;
            for new_ev in out_buf.drain(..) {
                if self.owns(new_ev.key.dst) {
                    self.queue.push(new_ev);
                } else {
                    outbox.push(new_ev);
                }
            }
        }
        Ok(())
    }

    fn min_pending(&self) -> Option<SimTime> {
        self.queue.peek_key().map(|k| k.time)
    }
}

/// Conservative parallel engine; drop-in alternative to
/// [`Engine`](crate::engine::Engine) producing identical results.
pub struct ParallelEngine<P, L: Lp<P>> {
    parts: Vec<Partition<P, L>>,
    /// Partition boundaries: LP `i` lives in the partition whose base is the
    /// greatest `bounds[p] <= i`.
    bounds: Vec<u32>,
    lookahead: SimTime,
    ext_seq: u64,
    scheduled: u64,
    now: SimTime,
    initialized: bool,
    collector: Collector,
    /// Per-partition time spent waiting at the epoch barrier (ns), i.e. the
    /// gap between a partition finishing its window and the slowest
    /// partition finishing. Only accumulated when a collector is attached.
    barrier_wait_ns: Vec<u64>,
    watchdog: WatchdogConfig,
}

impl<P: Send, L: Lp<P>> ParallelEngine<P, L> {
    /// Build a parallel engine over `lps` split into `num_partitions`
    /// contiguous blocks. `lookahead` must be greater than zero: it is both
    /// the epoch width and the minimum legal cross-LP delay.
    pub fn new(lps: Vec<L>, lookahead: SimTime, num_partitions: usize) -> Self {
        assert!(lookahead > SimTime::ZERO, "parallel execution requires lookahead > 0");
        assert!(num_partitions > 0);
        let n = lps.len();
        let parts_n = num_partitions.min(n.max(1));
        let mut parts = Vec::with_capacity(parts_n);
        let mut bounds = Vec::with_capacity(parts_n);
        let mut iter = lps.into_iter();
        let mut base = 0u32;
        for p in 0..parts_n {
            // Spread the remainder across the first partitions.
            let size = n / parts_n + usize::from(p < n % parts_n);
            let chunk: Vec<L> = iter.by_ref().take(size).collect();
            bounds.push(base);
            parts.push(Partition {
                base,
                seqs: vec![0; chunk.len()],
                queue: HeapQueue::new(),
                events_processed: 0,
                events_scheduled: 0,
                now: SimTime::ZERO,
                lps: chunk,
            });
            base += size as u32;
        }
        ParallelEngine {
            barrier_wait_ns: vec![0; parts.len()],
            parts,
            bounds,
            lookahead,
            ext_seq: 0,
            scheduled: 0,
            now: SimTime::ZERO,
            initialized: false,
            collector: Collector::disabled(),
            watchdog: WatchdogConfig::default(),
        }
    }

    /// Configure the no-progress watchdog used by
    /// [`ParallelEngine::try_run_to_completion`].
    pub fn set_watchdog(&mut self, cfg: WatchdogConfig) {
        self.watchdog = cfg;
    }

    /// Attach a telemetry collector. Enables per-partition barrier-wait
    /// accounting and run-boundary counters.
    pub fn set_collector(&mut self, collector: Collector) {
        self.collector = collector;
    }

    /// The attached telemetry collector (disabled by default).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Per-partition barrier-wait time in ns (all zeros unless an enabled
    /// collector was attached before the run).
    pub fn barrier_wait_ns(&self) -> &[u64] {
        &self.barrier_wait_ns
    }

    fn part_of(&self, id: LpId) -> usize {
        match self.bounds.binary_search(&id.0) {
            Ok(p) => p,
            Err(p) => p - 1,
        }
    }

    /// Inject an event from outside the simulation.
    pub fn schedule(&mut self, at: SimTime, dst: LpId, payload: P) {
        assert!(at >= self.now, "cannot schedule into the past");
        let key = EventKey { time: at, dst, src: EXTERNAL_SRC, seq: self.ext_seq };
        self.ext_seq += 1;
        self.scheduled += 1;
        let p = self.part_of(dst);
        // lint:allow(slice_index, reason="part_of binary-searches the partition base table, so p < parts.len()")
        self.parts[p].queue.push(Event { key, payload });
    }

    fn init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        let lookahead = self.lookahead;
        // on_init may emit cross-partition events; run it partition-parallel
        // and route afterwards.
        let outboxes: Vec<Vec<Event<P>>> = self
            .parts
            .par_iter_mut()
            .map(|part| {
                let mut out_buf = Vec::new();
                let mut outbox = Vec::new();
                for i in 0..part.lps.len() {
                    let id = LpId(part.base + i as u32);
                    // lint:allow(slice_index, reason="seqs is built in lockstep with lps by add_lp")
                    let seq = &mut part.seqs[i];
                    let mut ctx = Ctx::new(SimTime::ZERO, id, seq, &mut out_buf, lookahead);
                    part.lps[i].on_init(&mut ctx);
                    part.events_scheduled += out_buf.len() as u64;
                    for ev in out_buf.drain(..) {
                        if part.owns(ev.key.dst) {
                            part.queue.push(ev);
                        } else {
                            outbox.push(ev);
                        }
                    }
                }
                outbox
            })
            .collect();
        self.route(outboxes);
    }

    fn route(&mut self, outboxes: Vec<Vec<Event<P>>>) {
        for outbox in outboxes {
            for ev in outbox {
                let p = self.part_of(ev.key.dst);
                // lint:allow(slice_index, reason="part_of binary-searches the partition base table, so p < parts.len()")
                self.parts[p].queue.push(ev);
            }
        }
    }

    /// Run until all queues drain; returns aggregate statistics.
    pub fn run_to_completion(&mut self) -> EngineStats {
        match self.run_core(u64::MAX) {
            Ok(stats) => stats,
            // The stall cap is u64::MAX: the watchdog cannot trip.
            // lint:allow(panic_unwrap, reason="run_core only errs on a stall, and the cap is u64::MAX; unreachable! documents the invariant")
            Err(e) => unreachable!("uncapped run reported a stall: {e}"),
        }
    }

    /// Checked variant of [`ParallelEngine::run_to_completion`]: bounds
    /// same-timestamp event bursts per partition window (see
    /// [`ParallelEngine::set_watchdog`]) and, once drained, audits every LP
    /// ([`Lp::audit`]); violations surface as [`SimError`] values instead of
    /// hangs or silent corruption.
    pub fn try_run_to_completion(&mut self) -> Result<EngineStats, SimError> {
        let stats = match self.run_core(self.watchdog.max_stalled_events) {
            Ok(stats) => stats,
            Err(e) => {
                report_watchdog(&self.collector, &e);
                return Err(e);
            }
        };
        audit_lps(self.lps().map(|l| l as &dyn Lp<P>), &self.collector)?;
        Ok(stats)
    }

    fn run_core(&mut self, stall_cap: u64) -> Result<EngineStats, SimError> {
        self.init();
        let lookahead = self.lookahead;
        let timing = self.collector.is_enabled();
        // Per-window, per-partition timeline lanes are Debug-level detail:
        // a long run has thousands of windows, and the default Info level
        // must not pay the per-window span cost.
        let lanes =
            timing && self.collector.level().is_some_and(|l| l >= hrviz_obs::LogLevel::Debug);
        let col = self.collector.clone();
        // lint:allow(wall_clock, reason="telemetry only: wall time feeds obs perf reporting and never reaches simulation state or event order")
        let t0 = timing.then(std::time::Instant::now);
        let mut peak_queue_depth = 0u64;
        let mut windows = 0u64;
        // Wall-time lane annotations captured inside a window, recorded
        // after the barrier in partition order (deterministic emission).
        struct WindowLane {
            start_us: u64,
            events: u64,
            vt_ns: u64,
            depth: u64,
        }
        while let Some(window_start) = self.parts.iter().filter_map(|p| p.min_pending()).min() {
            // Queue depth is sampled at epoch boundaries (the engine never
            // holds a global queue, so this is the natural sampling point).
            let depth: u64 = self.parts.iter().map(|p| p.queue.len() as u64).sum();
            peak_queue_depth = peak_queue_depth.max(depth);
            let window_end = window_start.checked_add(lookahead).unwrap_or(SimTime::MAX);
            // (outbox, wall ns, per-window watchdog verdict, lane) per
            // partition.
            type WindowResult<P> = (Vec<Event<P>>, u64, Result<(), SimError>, Option<WindowLane>);
            let results: Vec<WindowResult<P>> = self
                .parts
                .par_iter_mut()
                .map(|part| {
                    // lint:allow(wall_clock, reason="telemetry only: wall time feeds obs perf reporting and never reaches simulation state or event order")
                    let w0 = timing.then(std::time::Instant::now);
                    let start_us = if lanes { col.now_us().unwrap_or(0) } else { 0 };
                    let events_before = part.events_processed;
                    let mut out_buf = Vec::with_capacity(8);
                    let mut outbox = Vec::new();
                    let res = part.run_window(
                        window_end,
                        lookahead,
                        &mut out_buf,
                        &mut outbox,
                        stall_cap,
                    );
                    let lane = lanes.then(|| WindowLane {
                        start_us,
                        events: part.events_processed - events_before,
                        vt_ns: part.now.as_nanos(),
                        depth: part.queue.len() as u64,
                    });
                    (outbox, w0.map_or(0, |w| w.elapsed().as_nanos() as u64), res, lane)
                })
                .collect();
            // First tripped partition (in partition order) wins: the report
            // is deterministic even when several stall simultaneously.
            if let Some(e) = results.iter().find_map(|(_, _, r, _)| r.as_ref().err()) {
                return Err(e.clone());
            }
            if timing {
                windows += 1;
                let slowest = results.iter().map(|(_, ns, _, _)| *ns).max().unwrap_or(0);
                for (wait, (_, ns, _, _)) in self.barrier_wait_ns.iter_mut().zip(&results) {
                    *wait += slowest - ns;
                }
                for (p, (_, ns, _, lane)) in results.iter().enumerate() {
                    let Some(lane) = lane else { continue };
                    col.record_span(
                        &format!("pdes/p{p}"),
                        "pdes/window",
                        lane.start_us,
                        ns / 1_000,
                        &[
                            ("events", Json::U64(lane.events)),
                            ("vt_ns", Json::U64(lane.vt_ns)),
                            ("queue_depth", Json::U64(lane.depth)),
                            ("barrier_wait_ns", Json::U64(slowest - ns)),
                        ],
                    );
                }
            }
            self.now = self.now.max(window_end);
            self.route(results.into_iter().map(|(outbox, _, _, _)| outbox).collect());
        }
        let end = self.parts.iter().map(|p| p.now).max().unwrap_or(SimTime::ZERO);
        self.now = end;
        self.parts.par_iter_mut().for_each(|p| {
            for lp in &mut p.lps {
                lp.on_finish(end);
            }
        });
        let stats = EngineStats {
            events_processed: self.parts.iter().map(|p| p.events_processed).sum(),
            events_scheduled: self.scheduled
                + self.parts.iter().map(|p| p.events_scheduled).sum::<u64>(),
            end_time: end,
            peak_queue_depth,
        };
        if let Some(t0) = t0 {
            self.report_run(stats, windows, t0.elapsed());
        }
        Ok(stats)
    }

    /// Report run-boundary telemetry (counters + one trace event).
    fn report_run(&self, stats: EngineStats, windows: u64, wall: std::time::Duration) {
        let c = &self.collector;
        c.counter_add("pdes/events_processed", stats.events_processed);
        c.counter_add("pdes/events_scheduled", stats.events_scheduled);
        c.counter_add("pdes/windows", windows);
        c.gauge_max("pdes/peak_queue_depth", stats.peak_queue_depth as f64);
        // The per-partition breakdown rides on the `parallel_run` trace
        // event below; the counter carries the statically named sum so the
        // manifest audit can see it.
        c.counter_add("pdes/barrier_wait_ns", self.barrier_wait_ns.iter().sum());
        let secs = wall.as_secs_f64();
        let rate = if secs > 0.0 { stats.events_processed as f64 / secs } else { 0.0 };
        if rate > 0.0 {
            c.gauge_set("pdes/events_per_sec", rate);
        }
        c.event(
            "parallel_run",
            &[
                ("partitions", Json::U64(self.parts.len() as u64)),
                ("windows", Json::U64(windows)),
                ("events_processed", Json::U64(stats.events_processed)),
                ("events_per_sec", Json::F64(rate)),
                ("peak_queue_depth", Json::U64(stats.peak_queue_depth)),
                (
                    "barrier_wait_ns",
                    Json::Arr(self.barrier_wait_ns.iter().map(|&w| Json::U64(w)).collect()),
                ),
                ("wall_us", Json::F64(secs * 1e6)),
            ],
        );
    }

    /// Immutable access to an LP by global id.
    pub fn lp(&self, id: LpId) -> &L {
        let p = self.part_of(id);
        // lint:allow(slice_index, reason="part_of bounds p; local(id) is in range for ids minted by add_lp, and a stale id is a model bug the panic surfaces")
        &self.parts[p].lps[self.parts[p].local(id)]
    }

    /// Iterate over all LPs in global id order.
    pub fn lps(&self) -> impl Iterator<Item = &L> {
        self.parts.iter().flat_map(|p| p.lps.iter())
    }

    /// Consume the engine, returning the LPs in global id order.
    pub fn into_lps(self) -> Vec<L> {
        self.parts.into_iter().flat_map(|p| p.lps).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    /// A stress model: each LP, upon receiving a counter, mixes it into its
    /// state hash and forwards two messages to pseudo-random LPs with
    /// delays >= lookahead, until the hop budget runs out.
    #[derive(Clone)]
    struct HashLp {
        state: u64,
        n: u32,
    }

    #[derive(Clone, Debug)]
    struct Msg {
        hops_left: u32,
        value: u64,
    }

    fn mix(a: u64, b: u64) -> u64 {
        let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x
    }

    impl Lp<Msg> for HashLp {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, m: Msg) {
            self.state = mix(self.state, m.value ^ ctx.now().as_nanos());
            if m.hops_left > 0 {
                for k in 0..2u64 {
                    let dst = LpId((mix(self.state, k) % self.n as u64) as u32);
                    let delay = SimTime(10 + (mix(m.value, k) % 50));
                    ctx.send(
                        dst,
                        delay,
                        Msg { hops_left: m.hops_left - 1, value: mix(m.value, k) },
                    );
                }
            }
        }
    }

    fn run_seq(n: u32, seeds: u32, hops: u32) -> Vec<u64> {
        let lps = (0..n).map(|i| HashLp { state: i as u64, n }).collect();
        let mut eng = Engine::new(lps, SimTime(10));
        for s in 0..seeds {
            eng.schedule(SimTime(s as u64), LpId(s % n), Msg { hops_left: hops, value: s as u64 });
        }
        eng.run_to_completion();
        eng.lps().map(|l| l.state).collect()
    }

    fn run_par(n: u32, seeds: u32, hops: u32, parts: usize) -> Vec<u64> {
        let lps = (0..n).map(|i| HashLp { state: i as u64, n }).collect();
        let mut eng = ParallelEngine::new(lps, SimTime(10), parts);
        for s in 0..seeds {
            eng.schedule(SimTime(s as u64), LpId(s % n), Msg { hops_left: hops, value: s as u64 });
        }
        eng.run_to_completion();
        eng.lps().map(|l| l.state).collect()
    }

    #[test]
    fn parallel_matches_sequential_small() {
        assert_eq!(run_seq(7, 3, 6), run_par(7, 3, 6, 3));
    }

    #[test]
    fn parallel_matches_sequential_larger() {
        assert_eq!(run_seq(64, 16, 10), run_par(64, 16, 10, 8));
    }

    #[test]
    fn parallel_matches_for_every_partition_count() {
        let reference = run_seq(13, 5, 8);
        for parts in 1..=13 {
            assert_eq!(reference, run_par(13, 5, 8, parts), "parts={parts}");
        }
    }

    #[test]
    fn more_partitions_than_lps_is_clamped() {
        assert_eq!(run_seq(3, 2, 4), run_par(3, 2, 4, 64));
    }

    #[test]
    fn stats_event_counts_match_sequential() {
        let n = 16;
        let lps: Vec<HashLp> = (0..n).map(|i| HashLp { state: i as u64, n }).collect();
        let mut seq = Engine::new(lps.clone(), SimTime(10));
        seq.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 8, value: 1 });
        seq.run_to_completion();

        let mut par = ParallelEngine::new(lps, SimTime(10), 4);
        par.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 8, value: 1 });
        let pstats = par.run_to_completion();
        assert_eq!(pstats.events_processed, seq.stats().events_processed);
        assert_eq!(pstats.end_time, seq.stats().end_time);
    }

    #[test]
    fn collector_counts_match_sequential_engine() {
        let n = 16;
        let lps: Vec<HashLp> = (0..n).map(|i| HashLp { state: i as u64, n }).collect();
        let cs = hrviz_obs::Collector::enabled();
        let mut seq = Engine::new(lps.clone(), SimTime(10));
        seq.set_collector(cs.clone());
        seq.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 9, value: 3 });
        seq.run_to_completion();

        let cp = hrviz_obs::Collector::enabled();
        let mut par = ParallelEngine::new(lps, SimTime(10), 4);
        par.set_collector(cp.clone());
        par.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 9, value: 3 });
        par.run_to_completion();

        assert_eq!(
            cs.counter("pdes/events_processed"),
            cp.counter("pdes/events_processed"),
            "sequential and parallel runs must report identical event counters"
        );
        assert_eq!(cs.counter("pdes/events_scheduled"), cp.counter("pdes/events_scheduled"));
        assert!(cp.counter("pdes/windows") > 0);
    }

    #[test]
    fn barrier_wait_is_tracked_per_partition() {
        let n = 8;
        let lps: Vec<HashLp> = (0..n).map(|i| HashLp { state: i as u64, n }).collect();
        let c = hrviz_obs::Collector::enabled();
        let mut par = ParallelEngine::new(lps, SimTime(10), 4);
        par.set_collector(c.clone());
        par.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 10, value: 1 });
        par.run_to_completion();
        assert_eq!(par.barrier_wait_ns().len(), 4);
        // Every window has exactly one slowest partition with zero wait, so
        // at least one partition must have accumulated non-zero wait (the
        // model is unbalanced enough that not all partitions tie).
        let waits = par.barrier_wait_ns();
        assert!(waits.iter().any(|&w| w > 0), "waits: {waits:?}");
        // The counter carries the sum under the manifest name; the trace
        // event carries the per-partition breakdown.
        assert_eq!(c.counter("pdes/barrier_wait_ns"), waits.iter().sum::<u64>());
        let events = c.drain_events();
        assert!(events.iter().any(|e| e.contains("\"kind\":\"parallel_run\"")));
    }

    #[test]
    fn window_lanes_recorded_at_debug_level_only() {
        let n = 8;
        let lps: Vec<HashLp> = (0..n).map(|i| HashLp { state: i as u64, n }).collect();

        // Default (Info) level: no per-window lane spans.
        let quiet = hrviz_obs::Collector::enabled();
        let mut par = ParallelEngine::new(lps.clone(), SimTime(10), 4);
        par.set_collector(quiet.clone());
        par.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 8, value: 1 });
        par.run_to_completion();
        assert!(
            quiet.recent_spans().iter().all(|r| r.label != "pdes/window"),
            "Info level must not pay per-window span costs"
        );

        // Debug level: one lane per partition, annotated with virtual-time
        // progress, queue depth, and barrier wait.
        let c = hrviz_obs::Collector::enabled();
        c.set_level(hrviz_obs::LogLevel::Debug);
        let mut par = ParallelEngine::new(lps, SimTime(10), 4);
        par.set_collector(c.clone());
        par.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 8, value: 1 });
        par.run_to_completion();
        let recs = c.recent_spans();
        let windows: Vec<_> = recs.iter().filter(|r| r.label == "pdes/window").collect();
        assert!(!windows.is_empty(), "Debug level records window lanes");
        for p in 0..4 {
            let lane = format!("pdes/p{p}");
            assert!(
                windows.iter().any(|r| r.lane.as_deref() == Some(lane.as_str())),
                "partition {p} has a lane"
            );
        }
        let annotated = windows.iter().all(|r| {
            ["events", "vt_ns", "queue_depth", "barrier_wait_ns"]
                .iter()
                .all(|k| r.args.iter().any(|(key, _)| key == k))
        });
        assert!(annotated, "window spans carry vt/queue/barrier annotations");
    }

    #[test]
    fn without_collector_no_barrier_accounting() {
        let n = 8;
        let lps: Vec<HashLp> = (0..n).map(|i| HashLp { state: i as u64, n }).collect();
        let mut par = ParallelEngine::new(lps, SimTime(10), 4);
        par.schedule(SimTime::ZERO, LpId(0), Msg { hops_left: 6, value: 1 });
        par.run_to_completion();
        assert!(par.barrier_wait_ns().iter().all(|&w| w == 0));
    }

    #[test]
    fn watchdog_converts_zero_delay_loop_into_error() {
        struct SpinLp;
        impl Lp<()> for SpinLp {
            fn on_event(&mut self, ctx: &mut Ctx<'_, ()>, _: ()) {
                ctx.send_self(SimTime::ZERO, ());
            }
        }
        let mut eng = ParallelEngine::new(vec![SpinLp, SpinLp], SimTime(10), 2);
        eng.set_watchdog(WatchdogConfig { max_stalled_events: 50 });
        eng.schedule(SimTime::ZERO, LpId(0), ());
        let err = eng.try_run_to_completion().unwrap_err();
        assert!(matches!(err, SimError::VirtualTimeStall { limit: 50, .. }), "{err:?}");
    }

    #[test]
    fn try_run_matches_unchecked_for_healthy_model() {
        let reference = run_seq(13, 5, 8);
        let lps = (0..13u32).map(|i| HashLp { state: i as u64, n: 13 }).collect();
        let mut eng = ParallelEngine::new(lps, SimTime(10), 4);
        for s in 0..5u32 {
            eng.schedule(SimTime(s as u64), LpId(s % 13), Msg { hops_left: 8, value: s as u64 });
        }
        let stats = eng.try_run_to_completion().expect("healthy model");
        assert!(stats.events_processed > 0);
        assert_eq!(reference, eng.lps().map(|l| l.state).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_audit_failure_surfaces_as_invariant_error() {
        struct LeakyLp;
        impl Lp<()> for LeakyLp {
            fn on_event(&mut self, _: &mut Ctx<'_, ()>, _: ()) {}
            fn audit(&self) -> Result<(), String> {
                Err("leak".into())
            }
        }
        let mut eng = ParallelEngine::new(vec![LeakyLp, LeakyLp, LeakyLp], SimTime(10), 2);
        eng.schedule(SimTime::ZERO, LpId(1), ());
        match eng.try_run_to_completion() {
            Err(SimError::Invariant { total, .. }) => assert_eq!(total, 3),
            other => panic!("expected invariant error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "lookahead > 0")]
    fn zero_lookahead_rejected() {
        let lps: Vec<HashLp> = vec![HashLp { state: 0, n: 1 }];
        let _ = ParallelEngine::new(lps, SimTime::ZERO, 2);
    }
}
