//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses: seedable `StdRng`, `Rng::{gen_range, gen_bool}`, and slice
//! shuffling. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a given seed, but *not* stream-compatible with the
//! upstream crate.

// Vendored stand-in: exempt from style lints.
#![allow(clippy::all)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Primitives `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(mul_shift(rng.next_u64(), span + 1) as $t)
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    lo.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Types that `gen_range` accepts: a range over a sampleable primitive.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

/// Map 64 random bits onto `[0, n)` via 128-bit multiply-shift.
#[inline]
fn mul_shift(x: u64, n: u64) -> u64 {
    (((x as u128) * (n as u128)) >> 64) as u64
}

/// Map 64 random bits onto `[0, 1)`.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// User-facing sampling methods (blanket-implemented for every `RngCore`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw generator state, for checkpoint/restore.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from state captured by [`StdRng::state`];
        /// the restored generator continues the exact same stream.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.
    use super::{mul_shift, Rng};

    /// Random order / random choice over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` when empty).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = mul_shift(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(mul_shift(rng.next_u64(), self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
