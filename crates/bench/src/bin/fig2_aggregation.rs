//! Fig. 2 — the entity tree and hierarchical aggregation example:
//! aggregate the network by router rank, then by (rank, port), then an
//! extra 6-bin histogram over accumulated global-link traffic (§IV-A).

use hrviz_bench::{run_synthetic, write_csv, Expectations};
use hrviz_core::{AggregateTree, DataSet, EntityKind, Field, TreeLevel};
use hrviz_network::RoutingAlgorithm;
use hrviz_pdes::SimTime;
use hrviz_workloads::SyntheticConfig;

fn main() {
    hrviz_bench::obs_init("fig2_aggregation");
    println!("Fig. 2: hierarchical aggregation over a 5,256-terminal Dragonfly");
    let run = run_synthetic(
        5_256,
        SyntheticConfig::uniform(4096, 10, SimTime::micros(4)),
        RoutingAlgorithm::adaptive_default(),
    );
    let ds = DataSet::builder(&run).build();
    let tree = AggregateTree::build(
        &ds,
        &[
            TreeLevel {
                entity: EntityKind::GlobalLink,
                fields: vec![Field::RouterRank],
                max_bins: None,
            },
            TreeLevel {
                entity: EntityKind::GlobalLink,
                fields: vec![Field::RouterRank, Field::RouterPort],
                max_bins: None,
            },
            TreeLevel {
                entity: EntityKind::GlobalLink,
                fields: vec![Field::RouterId, Field::RouterPort],
                max_bins: Some((Field::Traffic, 6)),
            },
        ],
    );

    let a = run.spec.topology.routers_per_group as usize;
    let h = run.spec.topology.global_ports as usize;
    println!(
        "  level sizes: {} -> {} -> {} (network has {} global links)",
        tree.levels[0].len(),
        tree.levels[1].len(),
        tree.levels[2].len(),
        run.global_links.len()
    );

    let mut rows = vec![vec![
        "level".into(),
        "key".into(),
        "members".into(),
        "traffic".into(),
        "sat_ns".into(),
    ]];
    for (li, level) in tree.levels.iter().enumerate() {
        for item in level {
            rows.push(vec![
                li.to_string(),
                format!("{:?}", item.key),
                item.rows.len().to_string(),
                item.metric(&ds, EntityKind::GlobalLink, Field::Traffic).to_string(),
                item.metric(&ds, EntityKind::GlobalLink, Field::SatTime).to_string(),
            ]);
        }
    }
    write_csv("fig2_aggregate_tree.csv", &rows);

    let mut exp = Expectations::new();
    exp.check("level 0 has one item per router rank", tree.levels[0].len() == a);
    exp.check("level 1 has rank x port items", tree.levels[1].len() == a * h);
    exp.check("histogram level capped at 6 bins", tree.levels[2].len() <= 6);
    let total: usize = tree.levels[2].iter().map(|i| i.rows.len()).sum();
    exp.check("binned level covers every global link", total == run.global_links.len());
    // Aggregation conserves total traffic at every level.
    let t0: f64 =
        tree.levels[0].iter().map(|i| i.metric(&ds, EntityKind::GlobalLink, Field::Traffic)).sum();
    exp.check(
        "aggregation conserves traffic",
        (t0 - run.class_traffic(hrviz_network::LinkClass::Global) as f64).abs() < 1.0,
    );
    std::process::exit(i32::from(!exp.finish("fig2")));
}
