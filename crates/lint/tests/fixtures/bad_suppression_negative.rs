// Fixture: a well-formed allow — known rule, non-empty reason — passes,
// both alone on a line and trailing code.
pub fn reasoned(xs: &[u32]) -> usize {
    // lint:allow(hash_collections, reason="order-insensitive membership probe; never iterated")
    let set: std::collections::HashSet<u32> = xs.iter().copied().collect();
    set.len()
}

pub fn trailing_ns() -> u128 {
    let t0 = std::time::Instant::now(); // lint:allow(wall_clock, reason="telemetry-only timestamp")
    t0.elapsed().as_nanos()
}
