//! Lexical source model the rules run against.
//!
//! A [`SourceFile`] carries the raw text plus three derived views:
//!
//! * `masked` — the same bytes with every comment, string, char and byte
//!   literal blanked to spaces (newlines preserved), so rules can match
//!   identifiers and punctuation without tripping over `"HashMap"` inside
//!   a doc string. Byte offsets in `masked` are valid in `text`.
//! * per-line *test* flags — lines inside `#[cfg(test)]` / `#[test]`
//!   regions (and whole files under `tests/`, `benches/`, `examples/`)
//!   are exempt from every rule.
//! * parsed `// lint:allow(rule, reason="…")` suppressions.

/// One inline suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id named inside `lint:allow(…)`.
    pub rule: String,
    /// The mandatory justification; `None`/empty is itself a finding.
    pub reason: Option<String>,
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Whether the comment is alone on its line (then it covers the next
    /// source line) or trails code (then it covers its own line).
    pub own_line: bool,
}

/// A loaded source file plus the derived views rules need.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// Raw text.
    pub text: String,
    /// `text` with comments/strings/chars blanked to spaces.
    pub masked: Vec<u8>,
    /// Byte offset where each line starts.
    line_starts: Vec<usize>,
    /// Per-line flag: inside test-only code.
    test_lines: Vec<bool>,
    /// Inline `lint:allow` suppressions, in file order.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Build the model for one file. `path` is the workspace-relative
    /// path used for rule scoping and diagnostics.
    pub fn new(path: &str, text: &str) -> SourceFile {
        let (masked, comments) = mask(text.as_bytes());
        let line_starts = line_starts(text.as_bytes());
        let n_lines = line_starts.len();
        let mut f = SourceFile {
            path: path.replace('\\', "/"),
            text: text.to_string(),
            masked,
            line_starts,
            test_lines: vec![false; n_lines],
            suppressions: Vec::new(),
        };
        if f.path.contains("/tests/")
            || f.path.contains("/benches/")
            || f.path.contains("/examples/")
        {
            f.test_lines = vec![true; n_lines];
        } else {
            f.mark_test_regions();
        }
        f.suppressions = comments
            .iter()
            .filter_map(|c| parse_suppression(&f.text, c.start, c.end, f.line_of(c.start)))
            .collect();
        f
    }

    /// 1-based line number of byte offset `at`.
    pub fn line_of(&self, at: usize) -> usize {
        match self.line_starts.binary_search(&at) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The trimmed source text of 1-based line `line`.
    pub fn line_text(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map(|e| e - 1)
            .unwrap_or(self.text.len())
            .min(self.text.len());
        self.text[start..end.max(start)].trim_end_matches(['\n', '\r']).trim()
    }

    /// Is 1-based `line` inside test-only code?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// Does a suppression for `rule` cover 1-based `line`? A trailing
    /// comment covers its own line; a comment alone on a line covers the
    /// next *code* line — consecutive own-line allows stack, so one item
    /// can carry several (e.g. `missing_audit` over `missing_state_saving`
    /// over an `impl Lp` header).
    pub fn suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| {
            s.rule == rule
                && s.reason.as_deref().is_some_and(|r| !r.trim().is_empty())
                && (s.line == line
                    || (s.own_line
                        && s.line < line
                        && (s.line + 1..line).all(|l| self.own_line_suppression_at(l))))
        })
    }

    /// Is 1-based `line` an own-line suppression comment (part of an
    /// allow stack)?
    fn own_line_suppression_at(&self, line: usize) -> bool {
        self.suppressions.iter().any(|s| s.own_line && s.line == line)
    }

    /// Mark the lines of every `#[cfg(test)]` / `#[test]` item as test
    /// code. The region runs from the attribute to the close of the next
    /// brace block (or the next `;` for brace-less items like `use`).
    fn mark_test_regions(&mut self) {
        let pats: [&[u8]; 2] = [b"#[cfg(test)]", b"#[test]"];
        for pat in pats {
            let mut from = 0;
            while let Some(at) = find(&self.masked, pat, from) {
                from = at + pat.len();
                let (start, end) = self.item_span(at + pat.len());
                let (a, b) = (self.line_of(at), self.line_of(end.max(start)));
                for l in a..=b {
                    if let Some(slot) = self.test_lines.get_mut(l - 1) {
                        *slot = true;
                    }
                }
            }
        }
    }

    /// From just past an attribute, the byte span of the annotated item:
    /// up to the matching `}` of its first brace block, or the first `;`
    /// if one comes before any `{`.
    fn item_span(&self, mut at: usize) -> (usize, usize) {
        let start = at;
        while at < self.masked.len() {
            match self.masked[at] {
                b';' => return (start, at),
                b'{' => {
                    let mut depth = 0usize;
                    while at < self.masked.len() {
                        match self.masked[at] {
                            b'{' => depth += 1,
                            b'}' => {
                                depth -= 1;
                                if depth == 0 {
                                    return (start, at);
                                }
                            }
                            _ => {}
                        }
                        at += 1;
                    }
                    return (start, self.masked.len());
                }
                _ => at += 1,
            }
        }
        (start, self.masked.len())
    }
}

/// Byte span of a line comment in the original text.
struct Comment {
    start: usize,
    end: usize,
}

/// Blank comments, strings, chars and byte literals to spaces (newlines
/// kept) and collect the spans of `//` comments for suppression parsing.
fn mask(bytes: &[u8]) -> (Vec<u8>, Vec<Comment>) {
    let mut out = bytes.to_vec();
    let mut comments = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let prev_ident = i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
                comments.push(Comment { start, end: i });
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if !prev_ident => {
                // Possible raw / byte literal prefix (r", r#", b", br#", b'…).
                let raw = b == b'r' || bytes.get(i + 1) == Some(&b'r');
                let mut j = i + if b == b'b' && raw { 2 } else { 1 };
                let mut hashes = 0usize;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') && (raw || (b == b'b' && hashes == 0)) {
                    i = blank_string(bytes, &mut out, j, hashes, raw);
                } else if b == b'b' && bytes.get(i + 1) == Some(&b'\'') {
                    i = blank_char(bytes, &mut out, i + 1);
                } else {
                    i += 1;
                }
            }
            b'"' => i = blank_string(bytes, &mut out, i, 0, false),
            b'\'' if !prev_ident => {
                // Char literal vs lifetime: escaped or `'x'` is a literal.
                if bytes.get(i + 1) == Some(&b'\\')
                    || (bytes.get(i + 2) == Some(&b'\'') && bytes.get(i + 1) != Some(&b'\''))
                {
                    i = blank_char(bytes, &mut out, i);
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    (out, comments)
}

/// Blank a string literal starting at the opening quote `at` (raw strings
/// close with `"` plus `hashes` `#`s; cooked strings honour `\` escapes).
/// Returns the offset just past the literal.
fn blank_string(bytes: &[u8], out: &mut [u8], at: usize, hashes: usize, raw: bool) -> usize {
    let mut i = at;
    out[i] = b' ';
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => {
                out[i] = b' ';
                if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                    out[i + 1] = b' ';
                }
                i += 2;
            }
            b'"' => {
                out[i] = b' ';
                if bytes[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
                    for k in 0..hashes {
                        out[i + 1 + k] = b' ';
                    }
                    return i + 1 + hashes;
                }
                i += 1;
            }
            b'\n' => i += 1,
            _ => {
                out[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

/// Blank a char/byte literal starting at the opening `'`; returns the
/// offset just past the closing quote.
fn blank_char(bytes: &[u8], out: &mut [u8], at: usize) -> usize {
    let mut i = at;
    out[i] = b' ';
    i += 1;
    if bytes.get(i) == Some(&b'\\') {
        out[i] = b' ';
        i += 1;
        // Escape body (covers \u{…} too — blank until the closing quote).
    }
    while i < bytes.len() && bytes[i] != b'\'' && bytes[i] != b'\n' {
        out[i] = b' ';
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        out[i] = b' ';
        i += 1;
    }
    i
}

fn line_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' && i + 1 < bytes.len() {
            starts.push(i + 1);
        }
    }
    starts
}

/// Find `pat` in `hay` at or after `from`.
pub fn find(hay: &[u8], pat: &[u8], from: usize) -> Option<usize> {
    if pat.is_empty() || hay.len() < pat.len() {
        return None;
    }
    (from..=hay.len() - pat.len()).find(|&i| &hay[i..i + pat.len()] == pat)
}

/// Parse `lint:allow(rule)` / `lint:allow(rule, reason="…")` out of the
/// comment span `[start, end)` of `text`.
fn parse_suppression(text: &str, start: usize, end: usize, line: usize) -> Option<Suppression> {
    let comment = &text[start..end];
    // Doc comments never carry suppressions — they may *mention* the
    // allow syntax when documenting it.
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let at = comment.find("lint:allow(")?;
    let inner = &comment[at + "lint:allow(".len()..];
    let close = inner.find(')')?;
    let inner = &inner[..close];
    let (rule, rest) = match inner.find(',') {
        Some(c) => (inner[..c].trim(), inner[c + 1..].trim()),
        None => (inner.trim(), ""),
    };
    let reason = rest.strip_prefix("reason").map(|r| {
        let r = r.trim_start().strip_prefix('=').unwrap_or(r).trim();
        r.trim_matches('"').to_string()
    });
    let own_line = text[..start]
        .rfind('\n')
        .map(|nl| text[nl + 1..start].trim().is_empty())
        .unwrap_or_else(|| text[..start].trim().is_empty());
    Some(Suppression { rule: rule.to_string(), reason, line, own_line })
}
