// Fixture: ambient (unseeded) randomness in sim-crate code must be flagged.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn os_entropy() -> rand::rngs::OsRng {
    rand::rngs::OsRng
}
