//! Crash-recovery convergence (the ISSUE's proptest satellite): kill the
//! save path at an *arbitrary* budgeted write boundary — any manifest,
//! column file, journal, or `GENERATION` write, in any of the three death
//! modes — and assert that reopening the store (fsck) plus one
//! `--resume` sweep always converges to byte-identical run directories
//! and `GENERATION` as an uninterrupted sweep.
//!
//! Journals (`sweeps/`), fsck reports, and quarantined wreckage are
//! *expected* to differ — attempt counters and recovery artifacts record
//! history, not results — so the compared image is scoped to run
//! directories plus `GENERATION`.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use hrviz_network::RoutingAlgorithm;
use hrviz_pdes::SimTime;
use hrviz_sweep::{
    CrashMode, CrashPlan, RunStore, SweepEngine, SweepOptions, SweepSpec, TopologyAxis,
};
use hrviz_workloads::TrafficPattern;
use proptest::prelude::*;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hrviz-sweep-crash-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn grid() -> SweepSpec {
    SweepSpec::new("crashgrid", TopologyAxis::Dragonfly { terminals: 72 })
        .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
        .patterns([TrafficPattern::UniformRandom, TrafficPattern::Tornado])
        .msgs_per_rank(2)
        .msg_bytes(1024)
        .period(SimTime::micros(1))
}

/// The store image that crash recovery must reproduce exactly: every file
/// under a run directory (16-hex names) plus the `GENERATION` counter.
/// Excludes `sweeps/`, `fsck_report.json`, `quarantine/`, `checkpoints/`.
fn store_image(root: &Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(dir: &Path, root: &Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("entry").path();
            if path.is_dir() {
                walk(&path, root, out);
            } else {
                let rel = path.strip_prefix(root).expect("prefix").display().to_string();
                out.insert(rel, fs::read(&path).expect("read"));
            }
        }
    }
    let mut all = BTreeMap::new();
    walk(root, root, &mut all);
    all.into_iter()
        .filter(|(rel, _)| {
            rel == "GENERATION"
                || rel
                    .split('/')
                    .next()
                    .is_some_and(|d| d.len() == 16 && d.chars().all(|c| c.is_ascii_hexdigit()))
        })
        .collect()
}

/// Run dirs + GENERATION of one uninterrupted sweep (computed once).
fn reference() -> &'static BTreeMap<String, Vec<u8>> {
    static REF: OnceLock<BTreeMap<String, Vec<u8>>> = OnceLock::new();
    REF.get_or_init(|| {
        let root = tmp("clean-ref");
        SweepEngine::new(RunStore::open(&root).expect("open"))
            .with_workers(1)
            .run(&grid())
            .expect("clean sweep");
        let image = store_image(&root);
        let _ = fs::remove_dir_all(&root);
        image
    })
}

/// Total budgeted writes one clean sweep performs (measured once, with a
/// fail-point that never fires). Every crash boundary lies below this.
fn write_budget() -> u64 {
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let root = tmp("budget-probe");
        let probe = CrashPlan::after_ops(u64::MAX, CrashMode::BeforeWrite);
        let store = RunStore::open(&root).expect("open").with_crash_plan(probe.clone());
        SweepEngine::new(store).with_workers(1).run(&grid()).expect("probe sweep");
        let _ = fs::remove_dir_all(&root);
        probe.ops_seen()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    /// Death at any write boundary, in any mode, converges after resume.
    #[test]
    fn any_crash_boundary_converges_after_fsck_and_resume(
        raw in 0u64..(1u64 << 40),
        mode_pick in 0u8..3,
    ) {
        let total = write_budget();
        let ops = raw % total;
        let mode = match mode_pick {
            0 => CrashMode::BeforeWrite,
            1 => CrashMode::TornTmp,
            _ => CrashMode::BeforeRename,
        };

        let root = tmp(&format!("boundary-{ops}-{mode_pick}"));
        let plan = CrashPlan::after_ops(ops, mode);
        let store = RunStore::open(&root).expect("open").with_crash_plan(plan.clone());
        let crashed = SweepEngine::new(store).with_workers(1).run(&grid());
        prop_assert!(crashed.is_err(), "ops={} {:?}: injected crash must surface", ops, mode);
        prop_assert!(plan.triggered(), "ops={} {:?}: fail-point must fire", ops, mode);

        // Reopen: fsck reaps torn tmp files and quarantines torn runs.
        let reopened = RunStore::open(&root).expect("fsck must open a crashed store");
        let resumed = SweepEngine::new(reopened)
            .with_workers(1)
            .run_with(&grid(), &SweepOptions::resume());
        prop_assert!(
            resumed.is_ok(),
            "ops={} {:?}: resume failed: {:?}", ops, mode, resumed.err()
        );

        let got = store_image(&root);
        let want = reference();
        prop_assert_eq!(
            got.keys().collect::<Vec<_>>(),
            want.keys().collect::<Vec<_>>(),
            "ops={} {:?}: file set diverged", ops, mode
        );
        for (rel, bytes) in &got {
            prop_assert!(
                want.get(rel) == Some(bytes),
                "ops={} {:?}: {} diverged from the uninterrupted sweep", ops, mode, rel
            );
        }
        let _ = fs::remove_dir_all(&root);
    }
}

/// The one boundary the journaled-intent protocol exists for, pinned
/// deterministically rather than left to the strategy: death exactly on
/// the end-of-sweep `GENERATION` write (second-to-last budgeted op).
#[test]
fn crash_exactly_on_the_generation_write_converges() {
    let bump_op = write_budget() - 2;
    let root = tmp("pinned-bump");
    let plan = CrashPlan::after_ops(bump_op, CrashMode::BeforeRename);
    let store = RunStore::open(&root).expect("open").with_crash_plan(plan.clone());
    assert!(SweepEngine::new(store).with_workers(1).run(&grid()).is_err());
    assert!(plan.triggered());

    let reopened = RunStore::open(&root).expect("fsck");
    let out = SweepEngine::new(reopened)
        .with_workers(1)
        .run_with(&grid(), &SweepOptions::resume())
        .expect("resume");
    assert_eq!(out.store_hits, 4, "all runs were already complete");
    assert_eq!(out.store_misses, 0, "nothing re-simulates");
    assert_eq!(store_image(&root), *reference());
    let _ = fs::remove_dir_all(&root);
}
