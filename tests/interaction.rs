//! Integration tests of the interactive-analysis loop (paper §IV-C):
//! timeline range selection, PCP brushing, and aggregate→detail
//! highlighting, each followed by view rebuilds.

use hrviz::core::{
    brush_axis, build_view, DataSet, DetailView, EntityKind, Field, LevelSpec, ProjectionSpec,
    TimelineView,
};
use hrviz::network::{
    DragonflyConfig, JobMeta, NetworkSpec, RoutingAlgorithm, RunData, Simulation, TerminalId,
};
use hrviz::pdes::SimTime;
use hrviz::workloads::{generate_synthetic, SyntheticConfig};

fn sampled_run() -> RunData {
    let cfg = DragonflyConfig::canonical(3);
    let mut sim = Simulation::new(
        NetworkSpec::new(cfg)
            .with_routing(RoutingAlgorithm::adaptive_default())
            .with_sampling(SimTime::micros(2), 512),
    );
    let all: Vec<TerminalId> = (0..cfg.num_terminals()).map(TerminalId).collect();
    let meta = JobMeta { name: "w".into(), terminals: all };
    let id = sim.add_job(meta.clone());
    // Two bursts 40 µs apart.
    for burst in [0u64, 40_000] {
        let mut cfg = SyntheticConfig::uniform(8 * 1024, 8, SimTime::nanos(500));
        cfg.seed = burst;
        sim.inject_all(generate_synthetic(id, &meta, &cfg).into_iter().map(|mut m| {
            m.time += SimTime(burst);
            m
        }));
    }
    sim.run()
}

fn spec() -> ProjectionSpec {
    ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::LocalLink)
            .aggregate(&[Field::RouterRank])
            .color(Field::SatTime)
            .size(Field::Traffic),
        LevelSpec::new(EntityKind::Terminal).aggregate(&[Field::RouterId]).color(Field::AvgLatency),
    ])
}

#[test]
fn timeline_selection_rebuilds_restricted_views() {
    let run = sampled_run();
    let mut tl = TimelineView::traffic(&run).expect("sampled");
    // Select the first burst only.
    let (t0, t1) = tl.select_bins(0, 10);
    let full = DataSet::builder(&run).build();
    let ranged = DataSet::builder(&run).range(t0, t1).build();
    let inj_full: f64 = full.terminals.iter().map(|t| t.data_size).sum();
    let inj_ranged: f64 = ranged.terminals.iter().map(|t| t.data_size).sum();
    assert!(inj_ranged > 0.0);
    assert!(inj_ranged < inj_full, "second burst excluded");
    // Both datasets build the same spec.
    let v_full = build_view(&full, &spec()).unwrap();
    let v_ranged = build_view(&ranged, &spec()).unwrap();
    assert_eq!(v_full.rings[0].items.len(), v_ranged.rings[0].items.len());
    // Raw traffic in the ranged view is smaller.
    let sum = |v: &hrviz::core::ProjectionView| -> f64 {
        v.rings[0].items.iter().filter_map(|i| i.raw.size).sum()
    };
    assert!(sum(&v_ranged) <= sum(&v_full));
}

#[test]
fn brushing_narrows_and_view_follows() {
    let run = sampled_run();
    let ds = DataSet::builder(&run).build();
    let median = {
        let mut l: Vec<f64> = ds.terminals.iter().map(|t| t.avg_latency).collect();
        l.sort_by(|a, b| a.partial_cmp(b).unwrap());
        l[l.len() / 2]
    };
    let brushed = brush_axis(&ds, Field::AvgLatency, median, f64::INFINITY);
    assert!(!brushed.terminals.is_empty());
    assert!(brushed.terminals.len() <= ds.terminals.len() / 2 + 1);
    let view = build_view(&brushed, &spec()).unwrap();
    let terminals_shown: usize = view.rings[1].items.iter().map(|i| i.rows.len()).sum();
    assert_eq!(terminals_shown, brushed.terminals.len());
}

#[test]
fn aggregate_selection_highlights_detail() {
    let run = sampled_run();
    let ds = DataSet::builder(&run).build();
    let view = build_view(&ds, &spec()).unwrap();
    let mut detail = DetailView::new(&ds);
    // Select ring 1 item 0 (terminals of router 0).
    let (kind, rows) = view.item_rows(1, 0);
    assert_eq!(kind, EntityKind::Terminal);
    detail.highlight(kind, rows);
    assert_eq!(detail.highlighted_terminals(), rows.len());
    // Select ring 0 item 0 (local links of rank 0) — highlights links.
    let (kind, rows) = view.item_rows(0, 0);
    assert_eq!(kind, EntityKind::LocalLink);
    detail.highlight(kind, rows);
    let lit = detail.local_links.points.iter().filter(|p| p.highlighted).count();
    assert_eq!(lit, rows.len());
}

#[test]
fn terminal_means_timeline_tracks_bursts() {
    let run = sampled_run();
    let tl = TimelineView::terminal_means(&run).expect("sampled");
    assert_eq!(tl.series.len(), 2);
    let lat = &tl.series[0].values;
    assert!(lat.iter().any(|&v| v > 0.0));
}
