//! Prometheus text exposition (format 0.0.4) over a [`Snapshot`].
//!
//! `GET /metricsz` keeps its JSON default; clients sending
//! `Accept: text/plain` get this rendering instead. Metric names are the
//! collector's hierarchical names with every non-alphanumeric character
//! mapped to `_` and an `hrviz_` prefix (`serve/latency_us` →
//! `hrviz_serve_latency_us`). Counters gain the conventional `_total`
//! suffix; histograms render as summaries with q50/q90/q99 from the
//! bucket estimator; span aggregates render as `_duration_ns` sum/count
//! plus a `_max` gauge.
//!
//! This module is inside hrviz-lint's panic-freedom scope.

use std::fmt::Write as _;

use crate::collector::Snapshot;
use crate::metrics::metric;

/// The content type to serve alongside [`render_prometheus`] output.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Render `snap` in Prometheus text exposition format. Names registered
/// in the [`crate::metrics::METRICS`] manifest carry their `# HELP` line,
/// so the exposition documents itself.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, &v) in &snap.counters {
        let m = metric_name(name, "_total");
        help_line(&mut out, name, &m);
        let _ = writeln!(out, "# TYPE {m} counter\n{m} {v}");
    }
    for (name, &v) in &snap.gauges {
        let m = metric_name(name, "");
        help_line(&mut out, name, &m);
        let _ = writeln!(out, "# TYPE {m} gauge\n{m} {}", num(v));
    }
    for (name, h) in &snap.hists {
        let m = metric_name(name, "");
        help_line(&mut out, name, &m);
        let _ = writeln!(out, "# TYPE {m} summary");
        for q in [0.5, 0.9, 0.99] {
            let _ = writeln!(out, "{m}{{quantile=\"{q}\"}} {}", num(h.quantile(q)));
        }
        let _ = writeln!(out, "{m}_sum {}\n{m}_count {}", num(h.sum), h.count);
    }
    for (label, s) in &snap.spans {
        let m = metric_name(label, "_duration_ns");
        let _ = writeln!(out, "# TYPE {m}_sum counter\n{m}_sum {}", s.total_ns);
        let _ = writeln!(out, "# TYPE {m}_count counter\n{m}_count {}", s.count);
        let _ = writeln!(out, "# TYPE {m}_max gauge\n{m}_max {}", s.max_ns);
    }
    out
}

/// `# HELP` line for manifest-registered names (ad-hoc names render bare).
fn help_line(out: &mut String, name: &str, mangled: &str) {
    if let Some(def) = metric(name) {
        let _ = writeln!(out, "# HELP {mangled} {}", def.help);
    }
}

/// `serve/latency_us` → `hrviz_serve_latency_us<suffix>`.
fn metric_name(name: &str, suffix: &str) -> String {
    let mut m = String::with_capacity(name.len() + 6 + suffix.len());
    m.push_str("hrviz_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            m.push(ch);
        } else {
            m.push('_');
        }
    }
    m.push_str(suffix);
    m
}

/// Prometheus floats: finite values as-is, non-finite as `NaN`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "NaN".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;

    #[test]
    fn names_mangle_and_prefix() {
        assert_eq!(metric_name("serve/latency_us", ""), "hrviz_serve_latency_us");
        assert_eq!(metric_name("a-b.c", "_total"), "hrviz_a_b_c_total");
    }

    #[test]
    fn all_metric_families_render() {
        let c = Collector::enabled();
        c.counter_add("serve/requests", 3);
        c.gauge_set("pdes/events_per_sec", 1.5e6);
        c.hist_config("serve/latency_us", 0.0, 100.0, 8);
        c.hist_record("serve/latency_us", 250.0);
        drop(c.span("serve/request"));
        let text = render_prometheus(&c.snapshot());
        assert!(text.contains("# TYPE hrviz_serve_requests_total counter"), "{text}");
        assert!(
            text.contains("# HELP hrviz_serve_requests_total HTTP requests accepted"),
            "{text}"
        );
        assert!(text.contains("hrviz_serve_requests_total 3"), "{text}");
        assert!(text.contains("hrviz_pdes_events_per_sec 1500000"), "{text}");
        assert!(text.contains("hrviz_serve_latency_us{quantile=\"0.99\"}"), "{text}");
        assert!(text.contains("hrviz_serve_latency_us_count 1"), "{text}");
        assert!(text.contains("hrviz_serve_request_duration_ns_count 1"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_prometheus(&Snapshot::default()), "");
    }
}
