//! Offline stand-in for the subset of the `proptest` crate API this
//! workspace uses. Cases are generated from a deterministic per-test RNG
//! (seeded from the test's module path + name), so failures reproduce
//! run-to-run. There is **no shrinking**: a failing case reports the case
//! number and the failed assertion only.

// Vendored stand-in: exempt from style lints.
#![allow(clippy::all)]

use std::fmt::Debug;

/// Deterministic generator driving case generation (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seed from an arbitrary string (FNV-1a), typically the test name.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

/// Why a generated case did not complete.
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }
}

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the stub trims this to keep the
        // workspace's tier-1 test wall time reasonable.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V>(Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Union over `strategies` (must be non-empty).
    pub fn new(strategies: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!strategies.is_empty(), "prop_oneof! needs at least one strategy");
        Union(strategies)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod prop {
    //! The `prop::` strategy namespace.

    pub mod collection {
        //! Collection strategies.
        use crate::{Strategy, TestRng};

        /// `Vec` of `elem` values with a length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { elem, size }
        }

        /// Strategy produced by [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start) as u64;
                let n = self.size.start + rng.below(span) as usize;
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.
        use crate::{Strategy, TestRng};

        /// Either boolean, uniformly.
        pub struct Any;

        /// The any-bool strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub mod option {
        //! Option strategies.
        use crate::{Strategy, TestRng};

        /// `Some` of the inner strategy about half the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        /// Strategy produced by [`of`].
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test needs in scope.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declare property tests (see the stub's crate docs for semantics).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __done = 0u32;
            let mut __rejects = 0u32;
            while __done < __cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    Ok(()) => __done += 1,
                    Err($crate::TestCaseError::Reject) => {
                        __rejects += 1;
                        assert!(
                            __rejects < __cfg.cases.saturating_mul(20).max(1_000),
                            "prop_assume! rejected too many cases ({} rejects)",
                            __rejects
                        );
                    }
                    Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}\n\
                             (stub proptest: deterministic seed, no shrinking)",
                            stringify!($name), __done, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("prop_assert!({}) failed", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("prop_assert!({}) failed: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: {:?} != {:?}: {}",
                __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed: both sides are {:?}",
                __l
            )));
        }
    }};
}

/// Reject the current case (retry with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("t1");
        let s = (0u64..10, 5u32..=6, prop::bool::ANY);
        for _ in 0..1000 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::TestRng::deterministic("t2");
        let s = prop::collection::vec(0u8..255, 1..4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assumes(x in 0u64..100, flip in prop::bool::ANY) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(x + 1, x + 1, "arith is broken: {}", x);
            prop_assert_ne!(x, x + 1);
            let _ = flip;
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![Just(1u64), (5u64..10).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || (10..20).contains(&v));
        }

        #[test]
        fn option_of_generates_both(o in prop::option::of(0u32..5)) {
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
