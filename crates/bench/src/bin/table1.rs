//! Table I — Summary of Applications: ranks, data volume, communication
//! pattern. Regenerated from the application-proxy definitions plus the
//! measured injection volume of each generator (paper §V-C).

use hrviz_bench::{data_scale, write_csv};
use hrviz_network::{JobMeta, TerminalId};
use hrviz_pdes::SimTime;
use hrviz_workloads::{generate_app, AppConfig, AppKind};

fn human_bytes(b: u64) -> String {
    if b >= 1_000_000_000 {
        format!("{:.1}GB", b as f64 / 1e9)
    } else {
        format!("{:.1}MB", b as f64 / 1e6)
    }
}

fn main() {
    hrviz_bench::obs_init("table1");
    println!("Table I: Summary of Applications");
    println!("{:<12} {:>6} {:>9} {:<22}", "Application", "Ranks", "Data", "Comm. Pattern");
    let mut rows = vec![[
        "application",
        "ranks",
        "data_bytes",
        "comm_pattern",
        "generated_bytes_at_scale",
        "scale",
    ]
    .map(str::to_string)
    .to_vec()];
    for kind in AppKind::ALL {
        // Verify the generator actually produces the nominal volume.
        let job = JobMeta {
            name: kind.name().into(),
            terminals: (0..kind.ranks()).map(TerminalId).collect(),
        };
        let cfg = AppConfig::new(kind).with_scale(data_scale()).with_duration(SimTime::micros(400));
        let generated: u64 = generate_app(0, &job, &cfg).iter().map(|m| m.bytes).sum();
        println!(
            "{:<12} {:>6} {:>9} {:<22}",
            kind.name(),
            kind.ranks(),
            human_bytes(kind.data_bytes()),
            kind.comm_pattern()
        );
        rows.push(vec![
            kind.name().into(),
            kind.ranks().to_string(),
            kind.data_bytes().to_string(),
            kind.comm_pattern().into(),
            generated.to_string(),
            format!("{:.6}", data_scale()),
        ]);
    }
    write_csv("table1_applications.csv", &rows);
}
