//! Sequential discrete-event engine.
//!
//! Processes events in the deterministic total order defined by
//! [`EventKey`]. This engine is the semantic
//! reference: the parallel scheduler in [`crate::parallel`] is required (and
//! property-tested) to produce identical LP state.

use crate::calendar::{EventQueue, HeapQueue};
use crate::error::{SimError, WatchdogConfig};
use crate::event::{Event, EventKey, LpId, EXTERNAL_SRC};
use crate::lp::{Ctx, Lp};
use crate::time::SimTime;
use crate::wire::{SnapshotError, WirePayload, WireReader, WireWriter};
use hrviz_obs::{Collector, Json};

/// Magic prefix of an engine snapshot (`"hrvZ"`), followed by a format
/// version. Restore rejects anything else as corrupt.
const SNAPSHOT_MAGIC: u32 = 0x6872_765a;
/// Current snapshot format version.
const SNAPSHOT_VERSION: u32 = 1;

/// Aggregate statistics for a completed (or paused) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events delivered to LP handlers.
    pub events_processed: u64,
    /// Events scheduled (including pre-run injections).
    pub events_scheduled: u64,
    /// Timestamp of the last processed event.
    pub end_time: SimTime,
    /// High-water mark of the pending-event queue.
    pub peak_queue_depth: u64,
}

impl EngineStats {
    /// Fold another run's stats into this one: counters add, the end time
    /// and queue high-water mark take the maximum. Used by batch drivers
    /// (the sweep engine) to report totals across isolated runs.
    pub fn accumulate(&mut self, other: &EngineStats) {
        self.events_processed += other.events_processed;
        self.events_scheduled += other.events_scheduled;
        self.end_time = self.end_time.max(other.end_time);
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
    }
}

/// Outcome of [`Engine::run_until`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained completely.
    Drained,
    /// The time bound was reached with events still pending.
    TimeBound,
    /// The event-count budget was exhausted (see [`Engine::set_event_budget`]).
    Budget,
}

/// Sequential event-driven simulation engine over a set of LPs.
pub struct Engine<P, L: Lp<P>> {
    lps: Vec<L>,
    /// Per-LP event sequence counters (provenance for deterministic order).
    seqs: Vec<u64>,
    queue: HeapQueue<P>,
    now: SimTime,
    stats: EngineStats,
    lookahead: SimTime,
    /// External injection counter (events scheduled before/outside LPs).
    ext_seq: u64,
    budget: u64,
    out_buf: Vec<Event<P>>,
    initialized: bool,
    collector: Collector,
    /// Stats already reported to the collector (resumed runs report deltas).
    reported: EngineStats,
    watchdog: WatchdogConfig,
    /// Consecutive events processed without virtual time advancing.
    stalled_events: u64,
}

impl<P, L: Lp<P>> Engine<P, L> {
    /// Build an engine over `lps`. `lookahead` is the minimum cross-LP
    /// event delay the model guarantees; the sequential engine only uses it
    /// for validation, while the parallel engine requires it to be > 0.
    pub fn new(lps: Vec<L>, lookahead: SimTime) -> Self {
        let n = lps.len();
        Engine {
            lps,
            seqs: vec![0; n],
            queue: HeapQueue::new(),
            now: SimTime::ZERO,
            stats: EngineStats::default(),
            lookahead,
            ext_seq: 0,
            budget: u64::MAX,
            out_buf: Vec::with_capacity(16),
            initialized: false,
            collector: Collector::disabled(),
            reported: EngineStats::default(),
            watchdog: WatchdogConfig::default(),
            stalled_events: 0,
        }
    }

    /// Attach a telemetry collector. The engine reports run-level counters
    /// (`pdes/events_processed`, `pdes/events_scheduled`, rates, peak queue
    /// depth) at run boundaries, never per event.
    pub fn set_collector(&mut self, collector: Collector) {
        self.collector = collector;
    }

    /// The attached telemetry collector (disabled by default).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Number of LPs.
    pub fn num_lps(&self) -> usize {
        self.lps.len()
    }

    /// Current simulation time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Immutable access to an LP (e.g. to read out final metrics).
    pub fn lp(&self, id: LpId) -> &L {
        // lint:allow(slice_index, reason="LpId values are minted by add_lp; a stale id is a model bug the panic surfaces")
        &self.lps[id.index()]
    }

    /// Mutable access to an LP.
    pub fn lp_mut(&mut self, id: LpId) -> &mut L {
        // lint:allow(slice_index, reason="LpId values are minted by add_lp; a stale id is a model bug the panic surfaces")
        &mut self.lps[id.index()]
    }

    /// Iterate over all LPs.
    pub fn lps(&self) -> impl Iterator<Item = &L> {
        self.lps.iter()
    }

    /// Consume the engine, returning the LPs.
    pub fn into_lps(self) -> Vec<L> {
        self.lps
    }

    /// Limit the total number of events processed (safety valve for tests
    /// and for detecting runaway models).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Configure the no-progress watchdog used by the checked run APIs
    /// ([`Engine::try_run_until`] / [`Engine::try_run_to_completion`]).
    pub fn set_watchdog(&mut self, cfg: WatchdogConfig) {
        self.watchdog = cfg;
    }

    /// Inject an event from outside the simulation at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, dst: LpId, payload: P) {
        assert!(at >= self.now, "cannot schedule into the past");
        let key = EventKey { time: at, dst, src: EXTERNAL_SRC, seq: self.ext_seq };
        self.ext_seq += 1;
        self.stats.events_scheduled += 1;
        self.queue.push(Event { key, payload });
    }

    fn init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for i in 0..self.lps.len() {
            let id = LpId(i as u32);
            // lint:allow(slice_index, reason="seqs is built in lockstep with lps by add_lp")
            let seq = &mut self.seqs[i];
            let mut ctx = Ctx::new(SimTime::ZERO, id, seq, &mut self.out_buf, self.lookahead);
            self.lps[i].on_init(&mut ctx);
            self.stats.events_scheduled += self.out_buf.len() as u64;
            for ev in self.out_buf.drain(..) {
                self.queue.push(ev);
            }
        }
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.init();
        let Some(ev) = self.queue.pop() else { return false };
        debug_assert!(ev.key.time >= self.now, "event time went backwards");
        if ev.key.time > self.now {
            self.stalled_events = 0;
        } else {
            self.stalled_events += 1;
        }
        self.now = ev.key.time;
        let idx = ev.key.dst.index();
        // lint:allow(slice_index, reason="event destinations are LpIds minted by add_lp; seqs/lps are lockstep arrays")
        let seq = &mut self.seqs[idx];
        let mut ctx = Ctx::new(self.now, ev.key.dst, seq, &mut self.out_buf, self.lookahead);
        // lint:allow(slice_index, reason="event destinations are LpIds minted by add_lp")
        self.lps[idx].on_event(&mut ctx, ev.payload);
        self.stats.events_processed += 1;
        self.stats.events_scheduled += self.out_buf.len() as u64;
        self.stats.end_time = self.now;
        for ev in self.out_buf.drain(..) {
            self.queue.push(ev);
        }
        let depth = self.queue.len() as u64;
        if depth > self.stats.peak_queue_depth {
            self.stats.peak_queue_depth = depth;
        }
        true
    }

    /// Run until the queue drains, `until` is passed, or the budget runs out.
    ///
    /// Events with `time >= until` remain queued, so runs can be resumed.
    pub fn run_until(&mut self, until: SimTime) -> RunOutcome {
        self.init();
        // lint:allow(wall_clock, reason="telemetry only: wall time feeds obs perf reporting and never reaches simulation state or event order")
        let t0 = self.collector.is_enabled().then(std::time::Instant::now);
        let outcome = loop {
            if self.stats.events_processed >= self.budget {
                break RunOutcome::Budget;
            }
            match self.queue.peek_key() {
                None => break RunOutcome::Drained,
                Some(k) if k.time >= until => break RunOutcome::TimeBound,
                Some(_) => {
                    self.step();
                }
            }
        };
        if let Some(t0) = t0 {
            self.report_run(t0.elapsed());
        }
        outcome
    }

    /// Report boundary telemetry for the run segment since the last report.
    fn report_run(&mut self, wall: std::time::Duration) {
        let c = &self.collector;
        let processed = self.stats.events_processed - self.reported.events_processed;
        let scheduled = self.stats.events_scheduled - self.reported.events_scheduled;
        self.reported = self.stats;
        c.counter_add("pdes/events_processed", processed);
        c.counter_add("pdes/events_scheduled", scheduled);
        c.gauge_max("pdes/peak_queue_depth", self.stats.peak_queue_depth as f64);
        let secs = wall.as_secs_f64();
        let rate = if secs > 0.0 { processed as f64 / secs } else { 0.0 };
        if rate > 0.0 {
            c.gauge_set("pdes/events_per_sec", rate);
        }
        c.event(
            "engine_run",
            &[
                ("events_processed", Json::U64(processed)),
                ("events_scheduled", Json::U64(scheduled)),
                ("events_per_sec", Json::F64(rate)),
                ("peak_queue_depth", Json::U64(self.stats.peak_queue_depth)),
                ("wall_us", Json::F64(secs * 1e6)),
            ],
        );
        // One timeline lane for the sequential engine: the run segment as
        // a wall-time span annotated with virtual-time progress and queue
        // depth, for the Chrome trace export.
        if let Some(end_us) = c.now_us() {
            let dur_us = (secs * 1e6) as u64;
            c.record_span(
                "pdes/engine",
                "pdes/engine_run",
                end_us.saturating_sub(dur_us),
                dur_us,
                &[
                    ("events", Json::U64(processed)),
                    ("end_vt_ns", Json::U64(self.stats.end_time.as_nanos())),
                    ("queue_depth", Json::U64(self.queue.len() as u64)),
                ],
            );
        }
    }

    /// Run until no events remain (or the budget runs out).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        let outcome = self.run_until(SimTime::MAX);
        let now = self.now;
        for lp in &mut self.lps {
            lp.on_finish(now);
        }
        outcome
    }

    /// Checked variant of [`Engine::run_until`]: additionally watches for
    /// virtual-time stalls (see [`Engine::set_watchdog`]) and converts them
    /// into a structured [`SimError`] instead of looping forever.
    pub fn try_run_until(&mut self, until: SimTime) -> Result<RunOutcome, SimError> {
        self.init();
        // lint:allow(wall_clock, reason="telemetry only: wall time feeds obs perf reporting and never reaches simulation state or event order")
        let t0 = self.collector.is_enabled().then(std::time::Instant::now);
        let limit = self.watchdog.max_stalled_events;
        let outcome = loop {
            if self.stats.events_processed >= self.budget {
                break Ok(RunOutcome::Budget);
            }
            match self.queue.peek_key() {
                None => break Ok(RunOutcome::Drained),
                Some(k) if k.time >= until => break Ok(RunOutcome::TimeBound),
                Some(_) => {
                    self.step();
                    if self.stalled_events > limit {
                        break Err(SimError::VirtualTimeStall {
                            now: self.now,
                            events: self.stalled_events,
                            limit,
                        });
                    }
                }
            }
        };
        if let Some(t0) = t0 {
            self.report_run(t0.elapsed());
        }
        if let Err(e) = &outcome {
            report_watchdog(&self.collector, e);
        }
        outcome
    }

    /// Checked variant of [`Engine::run_to_completion`]: watches for
    /// virtual-time stalls while running, and after a fully drained run
    /// audits every LP ([`Lp::audit`]), converting violations (e.g. leaked
    /// flow-control credits) into [`SimError::Invariant`].
    pub fn try_run_to_completion(&mut self) -> Result<RunOutcome, SimError> {
        let outcome = self.try_run_until(SimTime::MAX)?;
        let now = self.now;
        for lp in &mut self.lps {
            lp.on_finish(now);
        }
        if outcome == RunOutcome::Drained {
            audit_lps(self.lps.iter().map(|l| l as &dyn Lp<P>), &self.collector)?;
        }
        Ok(outcome)
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Serialize the engine's full dynamic state — virtual clock, stats,
    /// per-LP sequence counters, the pending-event set (sorted by
    /// [`EventKey`], so the bytes are deterministic regardless of heap
    /// layout), and each LP's [`Lp::snapshot`] blob.
    ///
    /// The snapshot deliberately excludes static configuration (lookahead,
    /// budget, watchdog, collector): [`Engine::restore`] is called on a
    /// freshly constructed engine that already carries those, which keeps
    /// snapshots small and lets a restore re-attach a live collector.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError>
    where
        P: WirePayload,
    {
        let mut w = WireWriter::new();
        w.put_u32(SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w.put_u64(self.now.as_nanos());
        w.put_u64(self.ext_seq);
        w.put_u64(self.stalled_events);
        w.put_bool(self.initialized);
        w.put_u64(self.stats.events_processed);
        w.put_u64(self.stats.events_scheduled);
        w.put_u64(self.stats.end_time.as_nanos());
        w.put_u64(self.stats.peak_queue_depth);
        w.put_u64(self.seqs.len() as u64);
        for s in &self.seqs {
            w.put_u64(*s);
        }
        let mut events: Vec<&Event<P>> = self.queue.iter().collect();
        events.sort_by_key(|ev| ev.key);
        w.put_u64(events.len() as u64);
        for ev in events {
            w.put_u64(ev.key.time.as_nanos());
            w.put_u32(ev.key.dst.0);
            w.put_u32(ev.key.src.0);
            w.put_u64(ev.key.seq);
            ev.payload.encode(&mut w);
        }
        w.put_u64(self.lps.len() as u64);
        for lp in &self.lps {
            let mut sub = WireWriter::new();
            lp.snapshot(&mut sub)?;
            w.put_bytes(&sub.into_bytes());
        }
        Ok(w.into_bytes())
    }

    /// Restore state captured by [`Engine::snapshot`] into this engine.
    ///
    /// `self` must be freshly constructed from the *same* model
    /// configuration that produced the snapshot (same LPs in the same
    /// order); only dynamic state is patched, via each LP's
    /// [`Lp::restore`]. After a successful restore the engine continues
    /// exactly where the snapshot was taken: a resumed run is
    /// bit-identical to one that never paused.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>
    where
        P: WirePayload,
    {
        let mut r = WireReader::new(bytes);
        if r.u32()? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::Corrupt("bad snapshot magic".into()));
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot version {version} (engine supports {SNAPSHOT_VERSION})"
            )));
        }
        self.now = SimTime(r.u64()?);
        self.ext_seq = r.u64()?;
        self.stalled_events = r.u64()?;
        self.initialized = r.bool()?;
        self.stats = EngineStats {
            events_processed: r.u64()?,
            events_scheduled: r.u64()?,
            end_time: SimTime(r.u64()?),
            peak_queue_depth: r.u64()?,
        };
        // Resumed segments report telemetry deltas from the restore point.
        self.reported = self.stats;
        let n_seqs = r.u64()? as usize;
        if n_seqs != self.lps.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {n_seqs} LPs, engine has {}",
                self.lps.len()
            )));
        }
        self.seqs.clear();
        for _ in 0..n_seqs {
            self.seqs.push(r.u64()?);
        }
        let n_events = r.u64()? as usize;
        let mut queue = HeapQueue::with_capacity(n_events);
        for _ in 0..n_events {
            let key = EventKey {
                time: SimTime(r.u64()?),
                dst: LpId(r.u32()?),
                src: LpId(r.u32()?),
                seq: r.u64()?,
            };
            let payload = P::decode(&mut r)?;
            queue.push(Event { key, payload });
        }
        self.queue = queue;
        let n_lps = r.u64()? as usize;
        if n_lps != self.lps.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {n_lps} LP blobs, engine has {}",
                self.lps.len()
            )));
        }
        for lp in &mut self.lps {
            let blob = r.bytes()?;
            let mut sub = WireReader::new(blob);
            lp.restore(&mut sub)?;
            sub.finish()?;
        }
        r.finish()
    }
}

/// Emit the watchdog-trip diagnostics shared by both engines: a counter and
/// one structured trace event with the failure detail.
pub(crate) fn report_watchdog(c: &Collector, e: &SimError) {
    c.counter_add("pdes/watchdog_trips", 1);
    c.event(
        "watchdog_trip",
        &[("trip", Json::Str(e.kind().to_string())), ("detail", Json::Str(e.to_string()))],
    );
    // A trip is an incident: preserve the events leading up to it. Best
    // effort — a full disk must not mask the SimError being reported.
    let _ = c.flight_dump("watchdog");
}

/// Run [`Lp::audit`] over every LP (in global id order) and fold failures
/// into a [`SimError::Invariant`]. Reporting keeps at most the first eight
/// violations; the total count is preserved.
pub(crate) fn audit_lps<'a, P: 'a>(
    lps: impl Iterator<Item = &'a dyn Lp<P>>,
    c: &Collector,
) -> Result<(), SimError> {
    let mut failures = Vec::new();
    let mut total = 0u64;
    for (i, lp) in lps.enumerate() {
        if let Err(what) = lp.audit() {
            total += 1;
            if failures.len() < 8 {
                failures.push((i as u32, what));
            }
        }
    }
    if total == 0 {
        return Ok(());
    }
    let e = SimError::Invariant { failures, total };
    report_watchdog(c, &e);
    Err(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: a ring of LPs passing a token `hops` times, each hop
    /// taking 10 ns, recording visits.
    struct RingLp {
        visits: u32,
        n: u32,
    }

    #[derive(Clone, Debug)]
    struct Token {
        hops_left: u32,
    }

    impl Lp<Token> for RingLp {
        fn on_event(&mut self, ctx: &mut Ctx<'_, Token>, t: Token) {
            self.visits += 1;
            if t.hops_left > 0 {
                let next = LpId((ctx.me().0 + 1) % self.n);
                ctx.send(next, SimTime(10), Token { hops_left: t.hops_left - 1 });
            }
        }

        fn snapshot(&self, w: &mut WireWriter) -> Result<(), SnapshotError> {
            w.put_u32(self.visits);
            Ok(())
        }

        fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), SnapshotError> {
            self.visits = r.u32()?;
            Ok(())
        }
    }

    impl WirePayload for Token {
        fn encode(&self, w: &mut WireWriter) {
            w.put_u32(self.hops_left);
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, SnapshotError> {
            Ok(Token { hops_left: r.u32()? })
        }
    }

    fn ring(n: u32, hops: u32) -> Engine<Token, RingLp> {
        let lps = (0..n).map(|_| RingLp { visits: 0, n }).collect();
        let mut eng = Engine::new(lps, SimTime(10));
        eng.schedule(SimTime::ZERO, LpId(0), Token { hops_left: hops });
        eng
    }

    #[test]
    fn token_circulates() {
        let mut eng = ring(4, 7);
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        // Token visits LP0 at t=0 then makes 7 more hops: 8 visits total.
        let total: u32 = eng.lps().map(|l| l.visits).sum();
        assert_eq!(total, 8);
        assert_eq!(eng.now(), SimTime(70));
        assert_eq!(eng.stats().events_processed, 8);
    }

    #[test]
    fn run_until_pauses_and_resumes() {
        let mut eng = ring(4, 7);
        assert_eq!(eng.run_until(SimTime(35)), RunOutcome::TimeBound);
        assert!(eng.now() <= SimTime(35));
        assert!(eng.pending() > 0);
        assert_eq!(eng.run_to_completion(), RunOutcome::Drained);
        assert_eq!(eng.now(), SimTime(70));
    }

    #[test]
    fn budget_halts_runaway() {
        // Each visit schedules another: infinite loop without a budget.
        struct Forever;
        impl Lp<()> for Forever {
            fn on_event(&mut self, ctx: &mut Ctx<'_, ()>, _: ()) {
                ctx.send_self(SimTime(1), ());
            }
        }
        let mut eng = Engine::new(vec![Forever], SimTime(1));
        eng.schedule(SimTime::ZERO, LpId(0), ());
        eng.set_event_budget(100);
        assert_eq!(eng.run_to_completion(), RunOutcome::Budget);
        assert_eq!(eng.stats().events_processed, 100);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut eng = ring(2, 3);
        eng.run_to_completion();
        eng.schedule(SimTime(5), LpId(0), Token { hops_left: 0 });
    }

    #[test]
    fn deterministic_event_order_across_runs() {
        let run = || {
            let mut eng = ring(5, 100);
            eng.run_to_completion();
            eng.lps().map(|l| l.visits).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn collector_reports_run_boundary_counters() {
        let c = hrviz_obs::Collector::enabled();
        let mut eng = ring(4, 7);
        eng.set_collector(c.clone());
        eng.run_to_completion();
        assert_eq!(c.counter("pdes/events_processed"), 8);
        assert_eq!(c.counter("pdes/events_scheduled"), 8);
        assert!(c.gauge("pdes/peak_queue_depth").unwrap() >= 1.0);
        let events = c.drain_events();
        assert!(events.iter().any(|e| e.contains("\"kind\":\"engine_run\"")));
    }

    #[test]
    fn engine_run_records_a_timeline_lane_span() {
        let c = hrviz_obs::Collector::enabled();
        let mut eng = ring(4, 7);
        eng.set_collector(c.clone());
        eng.run_to_completion();
        let recs = c.recent_spans();
        let lane = recs
            .iter()
            .find(|r| r.lane.as_deref() == Some("pdes/engine"))
            .expect("sequential run lands on the pdes/engine lane");
        assert_eq!(lane.label, "pdes/engine_run");
        for key in ["events", "end_vt_ns", "queue_depth"] {
            assert!(lane.args.iter().any(|(k, _)| k == key), "missing arg {key}");
        }
    }

    #[test]
    fn peak_queue_depth_tracks_fanout() {
        // Each event schedules two more for 3 generations: the queue must
        // have held at least 4 pending events at some point.
        struct FanLp;
        impl Lp<u32> for FanLp {
            fn on_event(&mut self, ctx: &mut Ctx<'_, u32>, gen: u32) {
                if gen > 0 {
                    ctx.send_self(SimTime(1), gen - 1);
                    ctx.send_self(SimTime(2), gen - 1);
                }
            }
        }
        let mut eng = Engine::new(vec![FanLp], SimTime(1));
        eng.schedule(SimTime::ZERO, LpId(0), 3);
        eng.run_to_completion();
        assert!(eng.stats().peak_queue_depth >= 4, "peak {}", eng.stats().peak_queue_depth);
    }

    #[test]
    fn watchdog_converts_zero_delay_loop_into_error() {
        struct SpinLp;
        impl Lp<()> for SpinLp {
            fn on_event(&mut self, ctx: &mut Ctx<'_, ()>, _: ()) {
                ctx.send_self(SimTime::ZERO, ());
            }
        }
        let c = hrviz_obs::Collector::enabled();
        let mut eng = Engine::new(vec![SpinLp], SimTime(1));
        eng.set_collector(c.clone());
        eng.schedule(SimTime::ZERO, LpId(0), ());
        eng.set_watchdog(WatchdogConfig { max_stalled_events: 100 });
        let err = eng.try_run_to_completion().unwrap_err();
        assert!(matches!(err, SimError::VirtualTimeStall { limit: 100, .. }), "{err:?}");
        assert_eq!(c.counter("pdes/watchdog_trips"), 1);
        let events = c.drain_events();
        assert!(events.iter().any(|e| e.contains("\"kind\":\"watchdog_trip\"")));
    }

    #[test]
    fn audit_failure_surfaces_as_invariant_error() {
        struct LeakyLp;
        impl Lp<()> for LeakyLp {
            fn on_event(&mut self, _: &mut Ctx<'_, ()>, _: ()) {}
            fn audit(&self) -> Result<(), String> {
                Err("credit leak".into())
            }
        }
        let mut eng = Engine::new(vec![LeakyLp], SimTime(1));
        eng.schedule(SimTime::ZERO, LpId(0), ());
        match eng.try_run_to_completion() {
            Err(SimError::Invariant { failures, total }) => {
                assert_eq!(total, 1);
                assert!(failures[0].1.contains("credit leak"));
            }
            other => panic!("expected invariant error, got {other:?}"),
        }
    }

    #[test]
    fn try_run_matches_unchecked_on_healthy_model() {
        let mut a = ring(4, 7);
        let mut b = ring(4, 7);
        assert_eq!(a.run_to_completion(), RunOutcome::Drained);
        assert_eq!(b.try_run_to_completion(), Ok(RunOutcome::Drained));
        assert_eq!(a.stats().events_processed, b.stats().events_processed);
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn checkpoint_restart_matches_straight_through() {
        // Straight-through reference run.
        let mut straight = ring(4, 7);
        straight.run_to_completion();

        // Pause mid-run, snapshot, restore into a *fresh* engine built
        // from the same model configuration, and finish there.
        let mut first = ring(4, 7);
        assert_eq!(first.run_until(SimTime(35)), RunOutcome::TimeBound);
        let snap = first.snapshot().unwrap();
        let mut resumed = ring(4, 7);
        resumed.restore(&snap).unwrap();
        assert_eq!(resumed.now(), first.now());
        assert_eq!(resumed.pending(), first.pending());
        resumed.run_to_completion();

        assert_eq!(resumed.now(), straight.now());
        assert_eq!(resumed.stats(), straight.stats());
        let a: Vec<u32> = resumed.lps().map(|l| l.visits).collect();
        let b: Vec<u32> = straight.lps().map(|l| l.visits).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let snap = |bound: u64| {
            let mut eng = ring(5, 20);
            eng.run_until(SimTime(bound));
            eng.snapshot().unwrap()
        };
        assert_eq!(snap(55), snap(55));
        // A restored engine snapshots to the same bytes as the original.
        let mut eng = ring(5, 20);
        eng.run_until(SimTime(55));
        let first = eng.snapshot().unwrap();
        let mut resumed = ring(5, 20);
        resumed.restore(&first).unwrap();
        assert_eq!(resumed.snapshot().unwrap(), first);
    }

    #[test]
    fn restore_rejects_damaged_snapshots() {
        let mut eng = ring(3, 5);
        eng.run_until(SimTime(25));
        let snap = eng.snapshot().unwrap();

        let mut truncated = ring(3, 5);
        assert!(matches!(
            truncated.restore(&snap[..snap.len() - 3]),
            Err(SnapshotError::Corrupt(_))
        ));

        let mut bad_magic = ring(3, 5);
        let mut garbled = snap.clone();
        garbled[0] ^= 0xff;
        assert!(matches!(bad_magic.restore(&garbled), Err(SnapshotError::Corrupt(_))));

        // Wrong LP count: model mismatch must be caught, not misapplied.
        let mut wrong_shape = ring(4, 5);
        assert!(matches!(wrong_shape.restore(&snap), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn snapshot_without_lp_support_is_unsupported() {
        struct Opaque;
        impl Lp<u32> for Opaque {
            fn on_event(&mut self, _: &mut Ctx<'_, u32>, _: u32) {}
        }
        let mut eng = Engine::new(vec![Opaque], SimTime(1));
        eng.schedule(SimTime::ZERO, LpId(0), 1);
        assert!(matches!(eng.snapshot(), Err(SnapshotError::Unsupported(_))));
    }

    #[test]
    fn on_init_schedules_events() {
        struct InitLp {
            fired: bool,
        }
        impl Lp<()> for InitLp {
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.send_self(SimTime(42), ());
            }
            fn on_event(&mut self, _ctx: &mut Ctx<'_, ()>, _: ()) {
                self.fired = true;
            }
        }
        let mut eng = Engine::new(vec![InitLp { fired: false }], SimTime(1));
        eng.run_to_completion();
        assert!(eng.lp(LpId(0)).fired);
        assert_eq!(eng.now(), SimTime(42));
    }
}
