// Fixture: file I/O while a guard is live stalls every other thread
// waiting on the lock.
use std::path::Path;
use std::sync::Mutex;

pub struct Journal {
    state: Mutex<Vec<u8>>,
}

impl Journal {
    pub fn persist(&self, path: &Path) -> std::io::Result<()> {
        let g = self.state.lock().unwrap();
        std::fs::write(path, &g[..])
    }
}
