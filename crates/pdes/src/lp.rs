//! Logical processes and the context through which they act on the world.
//!
//! Mirroring ROSS, all simulation state lives inside logical processes
//! (LPs); the only way state crosses LP boundaries is by scheduling events.
//! That restriction is what lets the conservative parallel scheduler in
//! [`crate::parallel`] run disjoint LP sets on different threads while
//! producing output bit-identical to the sequential engine.

use crate::event::{Event, EventKey, LpId};
use crate::time::SimTime;
use crate::wire::{SnapshotError, WireReader, WireWriter};

/// A logical process.
///
/// Implementations are usually an enum over the node kinds of the model
/// (e.g. `Terminal` / `Router` in the Dragonfly model) so the engine stays
/// monomorphic and allocation-free on the hot path.
pub trait Lp<P>: Send {
    /// Called once before any event is delivered, at time zero. LPs use
    /// this to schedule their initial self-events (e.g. injection timers).
    fn on_init(&mut self, ctx: &mut Ctx<'_, P>) {
        let _ = ctx;
    }

    /// Handle one event addressed to this LP.
    fn on_event(&mut self, ctx: &mut Ctx<'_, P>, payload: P);

    /// Called once after the run completes (all events drained or the time
    /// bound reached), letting LPs finalize derived statistics.
    fn on_finish(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Post-run invariant check used by the checked engine APIs
    /// ([`Engine::try_run_to_completion`](crate::Engine::try_run_to_completion)).
    /// Called only after the event set fully drained; return a short
    /// description of any violated invariant (e.g. flow-control credits that
    /// were never returned). The default implementation always passes.
    fn audit(&self) -> Result<(), String> {
        Ok(())
    }

    /// Serialize this LP's dynamic state for an engine checkpoint
    /// ([`Engine::snapshot`](crate::Engine::snapshot)). Implementations
    /// must write a byte-deterministic form (see [`crate::wire`]) that
    /// [`Lp::restore`] inverts exactly. The default refuses, so models opt
    /// into checkpointing explicitly.
    fn snapshot(&self, w: &mut WireWriter) -> Result<(), SnapshotError> {
        let _ = w;
        Err(SnapshotError::Unsupported("LP type does not implement snapshot".into()))
    }

    /// Restore this LP's dynamic state from bytes written by
    /// [`Lp::snapshot`]. Called on a freshly constructed LP (identical
    /// static configuration), so only mutable run state needs patching.
    fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Err(SnapshotError::Unsupported("LP type does not implement restore".into()))
    }
}

/// Execution context handed to an LP while it processes an event.
///
/// Collects newly scheduled events into a buffer owned by the engine; the
/// engine routes them after the handler returns.
pub struct Ctx<'a, P> {
    now: SimTime,
    me: LpId,
    seq: &'a mut u64,
    out: &'a mut Vec<Event<P>>,
    /// Minimum cross-LP delay the scheduler relies on (0 disables checking).
    min_delay: SimTime,
}

impl<'a, P> Ctx<'a, P> {
    pub(crate) fn new(
        now: SimTime,
        me: LpId,
        seq: &'a mut u64,
        out: &'a mut Vec<Event<P>>,
        min_delay: SimTime,
    ) -> Self {
        Ctx { now, me, seq, out, min_delay }
    }

    /// Build a free-standing context for unit-testing LP handlers outside
    /// an engine. Events the handler schedules land in `out`.
    pub fn detached(
        now: SimTime,
        me: LpId,
        seq: &'a mut u64,
        out: &'a mut Vec<Event<P>>,
        min_delay: SimTime,
    ) -> Self {
        Ctx::new(now, me, seq, out, min_delay)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The LP this context belongs to.
    pub fn me(&self) -> LpId {
        self.me
    }

    fn next_seq(&mut self) -> u64 {
        let s = *self.seq;
        *self.seq += 1;
        s
    }

    /// Schedule `payload` for LP `dst`, `delay` from now.
    ///
    /// Cross-LP sends must respect the engine's configured lookahead
    /// (`delay >= lookahead`); violating that is a model bug and panics in
    /// debug builds.
    pub fn send(&mut self, dst: LpId, delay: SimTime, payload: P) {
        debug_assert!(
            dst == self.me || delay >= self.min_delay,
            "cross-LP event from {:?} to {:?} with delay {:?} below lookahead {:?}",
            self.me,
            dst,
            delay,
            self.min_delay
        );
        let key = EventKey { time: self.now + delay, dst, src: self.me, seq: self.next_seq() };
        self.out.push(Event { key, payload });
    }

    /// Schedule `payload` for this LP itself, `delay` from now. Zero delays
    /// are allowed for self-events.
    pub fn send_self(&mut self, delay: SimTime, payload: P) {
        let me = self.me;
        self.send(me, delay, payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_assigns_monotone_seq_and_times() {
        let mut seq = 0u64;
        let mut out: Vec<Event<u32>> = Vec::new();
        let mut ctx = Ctx::new(SimTime(100), LpId(3), &mut seq, &mut out, SimTime(5));
        ctx.send(LpId(7), SimTime(10), 1);
        ctx.send_self(SimTime::ZERO, 2);
        ctx.send(LpId(7), SimTime(10), 3);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].key.time, SimTime(110));
        assert_eq!(out[1].key.time, SimTime(100));
        assert_eq!(out[1].key.dst, LpId(3));
        assert!(out[0].key.seq < out[2].key.seq);
        assert_eq!(seq, 3);
    }

    #[test]
    #[should_panic(expected = "below lookahead")]
    #[cfg(debug_assertions)]
    fn ctx_rejects_sub_lookahead_cross_sends() {
        let mut seq = 0u64;
        let mut out: Vec<Event<u32>> = Vec::new();
        let mut ctx = Ctx::new(SimTime(0), LpId(0), &mut seq, &mut out, SimTime(5));
        ctx.send(LpId(1), SimTime(1), 9);
    }
}
