//! End-to-end integration: simulate → extract → script → project → render,
//! across crate boundaries, with determinism checks.

use hrviz::core::{build_view, parse_script, DataSet};
use hrviz::network::{
    DragonflyConfig, JobMeta, NetworkSpec, RoutingAlgorithm, RunData, Simulation, TerminalId,
};
use hrviz::pdes::SimTime;
use hrviz::render::{render_radial, RadialLayout};
use hrviz::workloads::{
    generate_synthetic, place_jobs, PlacementPolicy, PlacementRequest, SyntheticConfig,
};

fn simulate(seed: u64) -> RunData {
    let cfg = DragonflyConfig::canonical(3); // 342 terminals
    let mut sim = Simulation::new(
        NetworkSpec::new(cfg).with_routing(RoutingAlgorithm::adaptive_default()).with_seed(seed),
    );
    let topo = sim.topology();
    let jobs = place_jobs(
        topo,
        &[PlacementRequest {
            name: "ur".into(),
            ranks: 256,
            policy: PlacementPolicy::RandomRouter,
        }],
        seed,
    )
    .unwrap();
    let id = sim.add_job(jobs[0].clone());
    sim.inject_all(generate_synthetic(
        id,
        &jobs[0],
        &SyntheticConfig::uniform(8 * 1024, 12, SimTime::micros(2)),
    ));
    sim.run()
}

#[test]
fn full_pipeline_produces_plausible_svg() {
    let run = simulate(1);
    assert_eq!(run.total_delivered(), run.total_injected());
    let ds = DataSet::builder(&run).drop_idle().build();
    assert_eq!(ds.terminals.len(), 256);

    let spec = parse_script(
        r#"
        { project: "local_link", aggregate: "router_rank",
          vmap: { color: "sat_time" },
          ribbons: { project: "global_link", size: "traffic", color: "sat_time" } },
        { project: "terminal",
          vmap: { color: "workload", size: "avg_latency", x: "avg_hops", y: "data_size" } }
        "#,
    )
    .unwrap();
    let view = build_view(&ds, &spec).unwrap();
    assert_eq!(view.rings.len(), 2);
    assert_eq!(view.rings[1].items.len(), 256);

    let svg = render_radial(&view, &RadialLayout::default(), "e2e");
    assert!(svg.len() > 10_000, "non-trivial rendering");
    assert!(svg.contains("<circle"), "scatter dots present");
    assert_eq!(svg.matches("<g").count(), svg.matches("</g>").count());
}

#[test]
fn identical_seeds_are_bit_identical() {
    let a = simulate(7);
    let b = simulate(7);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.end_time, b.end_time);
    let ta: Vec<_> = a.terminals.iter().map(|t| (t.packets_finished, t.sat_ns)).collect();
    let tb: Vec<_> = b.terminals.iter().map(|t| (t.packets_finished, t.sat_ns)).collect();
    assert_eq!(ta, tb);
}

#[test]
fn different_seeds_differ() {
    let a = simulate(7);
    let b = simulate(8);
    // Placement and routing randomness differ → different event counts.
    assert_ne!((a.events_processed, a.end_time), (b.events_processed, b.end_time));
}

#[test]
fn parallel_engine_reproduces_sequential_run() {
    let cfg = DragonflyConfig::canonical(3);
    let build = || {
        let mut sim = Simulation::new(
            NetworkSpec::new(cfg).with_routing(RoutingAlgorithm::par_default()).with_seed(3),
        );
        let all: Vec<TerminalId> = (0..cfg.num_terminals()).map(TerminalId).collect();
        let meta = JobMeta { name: "x".into(), terminals: all };
        let id = sim.add_job(meta.clone());
        sim.inject_all(generate_synthetic(
            id,
            &meta,
            &SyntheticConfig::uniform(4 * 1024, 6, SimTime::micros(1)),
        ));
        sim
    };
    let seq = build().run();
    let par = build().run_parallel(6);
    assert_eq!(seq.events_processed, par.events_processed);
    assert_eq!(seq.end_time, par.end_time);
    for (a, b) in seq.local_links.iter().zip(&par.local_links) {
        assert_eq!((a.traffic, a.sat_ns), (b.traffic, b.sat_ns));
    }
    for (a, b) in seq.terminals.iter().zip(&par.terminals) {
        assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
    }
}
