//! Fig. 13 — inter-job interference under three job placement policies on
//! a 5,256-terminal Dragonfly running AMG + AMR Boxlib + MiniFE in
//! parallel with adaptive routing:
//!
//! * (a) random group for all jobs,
//! * (b) random router for all jobs,
//! * (c) the paper's hybrid mitigation: random router for the
//!   communication-heavy AMG and MiniFE, random group for the
//!   interference-sensitive AMR Boxlib,
//! * (d) per-job mean packet latency across the three policies.
//!
//! Paper shapes (Fig. 13d): moving from random group to random router
//! helps AMG (≈26 % lower latency) but hurts AMR Boxlib (≈17 % higher)
//! while MiniFE barely moves; the hybrid policy improves all three jobs
//! relative to random group (AMG ≈11 %, AMR ≈14 %, MiniFE ≈5 %).

use hrviz_bench::{run_three_jobs, write_csv, write_out, Expectations};
use hrviz_core::{
    compare_views, DataSet, EntityKind, Field, LevelSpec, ProjectionSpec, RibbonSpec,
};
use hrviz_network::{JobStats, RoutingAlgorithm, RunData};
use hrviz_render::{render_grouped_bars, render_radial_row, BarGroup, RadialLayout};
use hrviz_workloads::PlacementPolicy;

fn job_spec() -> ProjectionSpec {
    ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::Router)
            .aggregate(&[Field::Workload])
            .color(Field::TotalSatTime)
            .colors(&["white", "purple"]),
        LevelSpec::new(EntityKind::LocalLink)
            .aggregate(&[Field::Workload, Field::RouterRank])
            .color(Field::SatTime)
            .size(Field::Traffic)
            .colors(&["white", "steelblue"]),
        LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::Workload, Field::RouterId])
            .color(Field::AvgLatency)
            .size(Field::AvgHops)
            .colors(&["white", "purple"]),
    ])
    .ribbons(
        RibbonSpec::new(EntityKind::GlobalLink)
            .size(Field::Traffic)
            .color(Field::SatTime)
            .colors(&["white", "purple"]),
    )
    .arc_weight(Field::GlobalTraffic)
}

fn pct_change(from: f64, to: f64) -> f64 {
    if from <= 0.0 {
        return 0.0;
    }
    (to - from) / from * 100.0
}

fn main() {
    hrviz_bench::obs_init("fig13_placement");
    println!("Fig. 13: job placement policies and inter-job interference (5,256 terminals)");
    let configs: [(&str, [PlacementPolicy; 3]); 3] = [
        ("random_group", [PlacementPolicy::RandomGroup; 3]),
        ("random_router", [PlacementPolicy::RandomRouter; 3]),
        (
            "hybrid",
            [
                PlacementPolicy::RandomRouter, // AMG
                PlacementPolicy::RandomGroup,  // AMR Boxlib (protected)
                PlacementPolicy::RandomRouter, // MiniFE
            ],
        ),
    ];

    let runs: Vec<(String, RunData)> = configs
        .iter()
        .map(|(name, policies)| {
            println!("  simulating {name}...");
            (
                name.to_string(),
                run_three_jobs(*policies, RoutingAlgorithm::adaptive_default(), None),
            )
        })
        .collect();

    // (a–c) projection views with job-class arcs and global-link ribbons.
    let datasets: Vec<DataSet> = runs.iter().map(|(_, r)| DataSet::builder(r).build()).collect();
    let refs: Vec<&DataSet> = datasets.iter().collect();
    let views = compare_views(&refs, &job_spec()).expect("views build");
    write_out(
        "fig13_placement.svg",
        &render_radial_row(
            &[
                (&views[0], "(a) Random Group"),
                (&views[1], "(b) Random Router"),
                (&views[2], "(c) Hybrid"),
            ],
            &RadialLayout::default(),
            "Fig 13: job placement policies (arcs = per-job share of global traffic)",
        ),
    );

    // (d) per-job latency bars.
    let stats: Vec<Vec<JobStats>> = runs.iter().map(|(_, r)| r.job_stats()).collect();
    let mut groups = Vec::new();
    let mut csv = vec![vec![
        "job".into(),
        "random_group_us".into(),
        "random_router_us".into(),
        "hybrid_us".into(),
        "rr_vs_rg_pct".into(),
        "hy_vs_rg_pct".into(),
    ]];
    // `j` selects the same job across all three placement runs at once.
    #[allow(clippy::needless_range_loop)]
    for j in 0..3 {
        let lat = |c: usize| stats[c][j].avg_latency_ns / 1e3;
        groups.push(BarGroup {
            label: stats[0][j].name.clone(),
            values: vec![
                ("random group".into(), lat(0)),
                ("random router".into(), lat(1)),
                ("hybrid".into(), lat(2)),
            ],
        });
        csv.push(vec![
            stats[0][j].name.clone(),
            format!("{:.1}", lat(0)),
            format!("{:.1}", lat(1)),
            format!("{:.1}", lat(2)),
            format!("{:+.1}", pct_change(lat(0), lat(1))),
            format!("{:+.1}", pct_change(lat(0), lat(2))),
        ]);
        println!(
            "  {:<11} rg {:>9.1}us  rr {:>9.1}us ({:+.1}%)  hybrid {:>9.1}us ({:+.1}%)",
            stats[0][j].name,
            lat(0),
            lat(1),
            pct_change(lat(0), lat(1)),
            lat(2),
            pct_change(lat(0), lat(2)),
        );
    }
    write_out(
        "fig13d_latency.svg",
        &render_grouped_bars(
            &groups,
            520.0,
            300.0,
            "Fig 13d: avg packet latency per job (lower is better)",
            "avg packet latency (us)",
        ),
    );
    write_csv("fig13d_latency.csv", &csv);

    let lat = |c: usize, j: usize| stats[c][j].avg_latency_ns;
    let (amg, amr, minife) = (0, 1, 2);
    let mut exp = Expectations::new();
    exp.check("random router helps AMG vs random group", lat(1, amg) < lat(0, amg));
    // Paper: random router degrades AMR Boxlib ~17 %. In our substrate the
    // interference penalty and the spreading gain nearly cancel (measured
    // within ±10 % of neutral); we check that AMR — unlike the heavy jobs —
    // gets no significant benefit from random router. See EXPERIMENTS.md.
    exp.check(
        "random router gives AMR Boxlib no significant benefit",
        lat(1, amr) > 0.85 * lat(0, amr),
    );
    exp.check("hybrid improves AMG vs random group", lat(2, amg) < lat(0, amg));
    exp.check("hybrid improves AMR Boxlib vs random group", lat(2, amr) < lat(0, amr));
    exp.check(
        "hybrid does not hurt MiniFE vs random group",
        lat(2, minife) < 1.05 * lat(0, minife),
    );
    exp.check("hybrid protects AMR Boxlib relative to random router", lat(2, amr) <= lat(1, amr));
    exp.check("MiniFE dominates global traffic in (a)", {
        let ds = &datasets[0];
        let by_job = |j: u32| -> f64 {
            ds.global_links.iter().filter(|l| l.src_job == j).map(|l| l.traffic).sum()
        };
        by_job(minife as u32) > by_job(amg as u32) + by_job(amr as u32)
    });
    std::process::exit(i32::from(!exp.finish("fig13")));
}
