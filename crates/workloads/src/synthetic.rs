//! Synthetic traffic patterns (paper §V: nearest neighbor and uniform
//! random, plus the usual suspects as extensions).

use hrviz_network::{JobId, JobMeta, MsgInjection};
use hrviz_pdes::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic communication pattern over a job's ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every message goes to a uniformly random other rank.
    UniformRandom,
    /// Rank `i` sends to rank `(i + 1) mod n` — its nearest neighbor.
    NearestNeighbor,
    /// Rank `i` sends to every other rank in round-robin order.
    AllToAll,
    /// Matrix transpose on the nearest square grid: `i → (i%m)·m + i/m`.
    Transpose,
    /// Rank `i` sends to rank `n − 1 − i`.
    BitComplement,
    /// Rank `i` sends to rank `(i + n/2) mod n` — adversarial for minimal
    /// routing on Dragonfly when placed contiguously.
    Tornado,
    /// A fixed random permutation of ranks (drawn once per run).
    Permutation,
}

impl TrafficPattern {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            TrafficPattern::UniformRandom => "uniform-random",
            TrafficPattern::NearestNeighbor => "nearest-neighbor",
            TrafficPattern::AllToAll => "all-to-all",
            TrafficPattern::Transpose => "transpose",
            TrafficPattern::BitComplement => "bit-complement",
            TrafficPattern::Tornado => "tornado",
            TrafficPattern::Permutation => "permutation",
        }
    }
}

/// Parameters for a synthetic workload.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// The pattern.
    pub pattern: TrafficPattern,
    /// Bytes per message.
    pub msg_bytes: u32,
    /// Messages each rank sends.
    pub msgs_per_rank: u32,
    /// Interval between a rank's consecutive messages.
    pub period: SimTime,
    /// Neighbor stride for [`TrafficPattern::NearestNeighbor`]: rank `i`
    /// sends to `i + stride`. 1 targets the adjacent terminal; setting it
    /// to the machine's terminals-per-router targets the same position on
    /// the *next router*, funneling every rank of a router onto one local
    /// link (the hot-link shape of the paper's Fig. 7).
    pub stride: u32,
    /// RNG seed (random destinations, permutation draw).
    pub seed: u64,
}

impl SyntheticConfig {
    /// A uniform-random workload with the given intensity.
    pub fn uniform(msg_bytes: u32, msgs_per_rank: u32, period: SimTime) -> Self {
        SyntheticConfig {
            pattern: TrafficPattern::UniformRandom,
            msg_bytes,
            msgs_per_rank,
            period,
            stride: 1,
            seed: 0xACE,
        }
    }

    /// A nearest-neighbor workload with the given intensity.
    pub fn nearest_neighbor(msg_bytes: u32, msgs_per_rank: u32, period: SimTime) -> Self {
        SyntheticConfig {
            pattern: TrafficPattern::NearestNeighbor,
            msg_bytes,
            msgs_per_rank,
            period,
            stride: 1,
            seed: 0xACE,
        }
    }

    /// Builder: neighbor stride.
    pub fn with_stride(mut self, stride: u32) -> Self {
        self.stride = stride.max(1);
        self
    }
}

fn square_side(n: u32) -> u32 {
    let mut m = (n as f64).sqrt() as u32;
    while m > 1 && !n.is_multiple_of(m) {
        m -= 1;
    }
    m.max(1)
}

/// Generate the injection list for `job` (rank `i` runs on
/// `job.terminals[i]`).
pub fn generate_synthetic(
    job_id: JobId,
    job: &JobMeta,
    cfg: &SyntheticConfig,
) -> Vec<MsgInjection> {
    let _span = hrviz_obs::get().span("workloads/generate");
    let n = job.terminals.len() as u32;
    if n < 2 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1CE ^ (job_id as u64));
    let perm: Vec<u32> = match cfg.pattern {
        TrafficPattern::Permutation => {
            use rand::seq::SliceRandom;
            let mut p: Vec<u32> = (0..n).collect();
            p.shuffle(&mut rng);
            p
        }
        _ => Vec::new(),
    };
    let m = square_side(n);
    let mut out = Vec::with_capacity((n * cfg.msgs_per_rank) as usize);
    for rank in 0..n {
        // Stagger each rank's phase within one period: real applications
        // are never cycle-synchronized, and lockstep waves would create
        // artificial transient congestion.
        let phase = if cfg.period.as_nanos() > 1 {
            SimTime(rng.gen_range(0..cfg.period.as_nanos()))
        } else {
            SimTime::ZERO
        };
        for k in 0..cfg.msgs_per_rank {
            let dst_rank = match cfg.pattern {
                TrafficPattern::UniformRandom => loop {
                    let d = rng.gen_range(0..n);
                    if d != rank {
                        break d;
                    }
                },
                TrafficPattern::NearestNeighbor => (rank + cfg.stride.max(1) % n) % n,
                TrafficPattern::AllToAll => (rank + 1 + k % (n - 1)) % n,
                TrafficPattern::Transpose => {
                    let (r, c) = (rank / m, rank % m);
                    let t = c * m + r;
                    if t < n && t != rank {
                        t
                    } else {
                        (rank + 1) % n
                    }
                }
                TrafficPattern::BitComplement => {
                    let d = n - 1 - rank;
                    if d == rank {
                        (rank + 1) % n
                    } else {
                        d
                    }
                }
                TrafficPattern::Tornado => (rank + n / 2) % n,
                TrafficPattern::Permutation => {
                    let d = perm[rank as usize];
                    if d == rank {
                        (rank + 1) % n
                    } else {
                        d
                    }
                }
            };
            out.push(MsgInjection {
                time: cfg.period * k as u64 + phase,
                src: job.terminals[rank as usize],
                dst: job.terminals[dst_rank as usize],
                bytes: cfg.msg_bytes as u64,
                job: job_id,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_network::TerminalId;

    fn job(n: u32) -> JobMeta {
        JobMeta { name: "test".into(), terminals: (0..n).map(TerminalId).collect() }
    }

    fn cfg(pattern: TrafficPattern) -> SyntheticConfig {
        SyntheticConfig {
            pattern,
            msg_bytes: 1024,
            msgs_per_rank: 4,
            period: SimTime(100),
            stride: 1,
            seed: 1,
        }
    }

    #[test]
    fn nearest_neighbor_targets_successor() {
        let msgs = generate_synthetic(0, &job(8), &cfg(TrafficPattern::NearestNeighbor));
        assert_eq!(msgs.len(), 32);
        for m in &msgs {
            assert_eq!(m.dst.0, (m.src.0 + 1) % 8);
        }
    }

    #[test]
    fn stride_targets_next_router() {
        let msgs =
            generate_synthetic(0, &job(12), &cfg(TrafficPattern::NearestNeighbor).with_stride(4));
        for m in &msgs {
            assert_eq!(m.dst.0, (m.src.0 + 4) % 12);
        }
    }

    #[test]
    fn uniform_random_never_self() {
        let msgs = generate_synthetic(0, &job(16), &cfg(TrafficPattern::UniformRandom));
        assert!(msgs.iter().all(|m| m.src != m.dst));
        // All ranks participate as sources.
        let srcs: std::collections::HashSet<_> = msgs.iter().map(|m| m.src).collect();
        assert_eq!(srcs.len(), 16);
    }

    #[test]
    fn tornado_offsets_by_half() {
        let msgs = generate_synthetic(0, &job(10), &cfg(TrafficPattern::Tornado));
        for m in &msgs {
            assert_eq!(m.dst.0, (m.src.0 + 5) % 10);
        }
    }

    #[test]
    fn bit_complement_mirrors() {
        let msgs = generate_synthetic(0, &job(10), &cfg(TrafficPattern::BitComplement));
        for m in &msgs {
            assert_eq!(m.dst.0, 9 - m.src.0);
        }
    }

    #[test]
    fn transpose_is_involution_on_square() {
        let msgs = generate_synthetic(0, &job(16), &cfg(TrafficPattern::Transpose));
        for m in &msgs {
            let (r, c) = (m.src.0 / 4, m.src.0 % 4);
            let t = c * 4 + r;
            if t == m.src.0 {
                // Diagonal ranks fall back to their successor.
                assert_eq!(m.dst.0, (m.src.0 + 1) % 16);
            } else {
                assert_eq!(m.dst.0, t);
            }
        }
    }

    #[test]
    fn all_to_all_covers_every_partner() {
        let n = 5;
        let mut cfg = cfg(TrafficPattern::AllToAll);
        cfg.msgs_per_rank = n - 1;
        let msgs = generate_synthetic(0, &job(n), &cfg);
        for rank in 0..n {
            let partners: std::collections::HashSet<_> =
                msgs.iter().filter(|m| m.src.0 == rank).map(|m| m.dst.0).collect();
            assert_eq!(partners.len() as u32, n - 1, "rank {rank}");
        }
    }

    #[test]
    fn permutation_is_fixed_and_self_free() {
        let msgs = generate_synthetic(0, &job(32), &cfg(TrafficPattern::Permutation));
        for rank in 0..32u32 {
            let dsts: std::collections::HashSet<_> =
                msgs.iter().filter(|m| m.src.0 == rank).map(|m| m.dst.0).collect();
            assert_eq!(dsts.len(), 1, "permutation destination must be stable");
            assert!(!dsts.contains(&rank));
        }
    }

    #[test]
    fn messages_are_periodic_with_stable_phase() {
        let msgs = generate_synthetic(0, &job(4), &cfg(TrafficPattern::NearestNeighbor));
        let times: Vec<u64> =
            msgs.iter().filter(|m| m.src.0 == 0).map(|m| m.time.as_nanos()).collect();
        // Per-rank phase offset within one period, then strict periodicity.
        assert!(times[0] < 100);
        for w in times.windows(2) {
            assert_eq!(w[1] - w[0], 100);
        }
    }

    #[test]
    fn phases_are_staggered_across_ranks() {
        let msgs = generate_synthetic(0, &job(64), &cfg(TrafficPattern::NearestNeighbor));
        let first: std::collections::HashSet<u64> =
            msgs.iter().filter(|m| m.time.as_nanos() < 100).map(|m| m.time.as_nanos()).collect();
        assert!(first.len() > 16, "ranks must not inject in lockstep");
    }

    #[test]
    fn single_rank_job_generates_nothing() {
        let msgs = generate_synthetic(0, &job(1), &cfg(TrafficPattern::UniformRandom));
        assert!(msgs.is_empty());
    }

    #[test]
    fn pattern_names() {
        assert_eq!(TrafficPattern::UniformRandom.name(), "uniform-random");
        assert_eq!(TrafficPattern::Tornado.name(), "tornado");
    }
}
