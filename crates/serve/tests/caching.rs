//! Warm-path telemetry: this binary owns the global collector (tests in
//! `loopback.rs` run with it disabled), so it can assert what the cache
//! ladder actually *does* — a warm hit re-runs no aggregation, and
//! `If-None-Match` short-circuits before even the body cache.
//!
//! Kept to a single `#[test]` so the counter readings are ordered.

mod common;

use hrviz_obs::Collector;
use hrviz_serve::ServeConfig;

use common::{get, post, start, test_store, SCRIPT};

fn counter(name: &str) -> u64 {
    hrviz_obs::get().snapshot().counters.get(name).copied().unwrap_or(0)
}

fn span_count(label: &str) -> u64 {
    hrviz_obs::get().snapshot().spans.get(label).map(|s| s.count).unwrap_or(0)
}

#[test]
fn warm_requests_skip_the_pipeline() {
    // Build the store BEFORE installing the collector, so simulation
    // spans don't muddy the request-path readings.
    let (_, runs) = test_store();
    hrviz_obs::install(Collector::enabled());

    let server = start(ServeConfig::default());
    let addr = server.addr;
    let views_path = format!("/views?run={}", runs[0]);
    let compare_path = format!("/compare?runs={},{}", runs[0], runs[1]);

    // Cold: misses the body cache and runs the pipeline.
    let cold = post(addr, &views_path, SCRIPT, &[]);
    assert_eq!(cold.status, 200, "cold body: {}", cold.text());
    let tag = cold.header("ETag").expect("cold reply carries an ETag").to_string();
    assert!(counter("serve/cache_miss") >= 1, "cold request misses");
    assert_eq!(counter("serve/cache_hit"), 0);
    let cold_projects = span_count("core/project");
    assert!(cold_projects >= 1, "cold request projected the dataset");

    // Warm: byte-identical body, a cache hit, and no new projection work.
    let warm = post(addr, &views_path, SCRIPT, &[]);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, cold.body, "warm body is byte-identical");
    assert_eq!(warm.header("ETag"), Some(tag.as_str()));
    assert!(counter("serve/cache_hit") >= 1, "warm request hits the body cache");
    assert_eq!(
        span_count("core/project"),
        cold_projects,
        "warm request must not re-run the projection pipeline"
    );

    // Conditional: the client already holds the bytes — 304, empty body,
    // and still no pipeline work.
    let not_modified = post(addr, &views_path, SCRIPT, &[("If-None-Match", &tag)]);
    assert_eq!(not_modified.status, 304);
    assert!(not_modified.body.is_empty(), "304 carries no body");
    assert_eq!(not_modified.header("ETag"), Some(tag.as_str()));
    assert!(counter("serve/not_modified") >= 1);
    assert_eq!(span_count("core/project"), cold_projects);

    // The same ladder holds for comparisons.
    let cmp_cold = post(addr, &compare_path, SCRIPT, &[]);
    assert_eq!(cmp_cold.status, 200, "compare body: {}", cmp_cold.text());
    let compares = span_count("core/compare");
    assert!(compares >= 1, "cold comparison ran core/compare");
    let cmp_warm = post(addr, &compare_path, SCRIPT, &[]);
    assert_eq!(cmp_warm.status, 200);
    assert_eq!(cmp_warm.body, cmp_cold.body);
    assert_eq!(span_count("core/compare"), compares, "warm comparison re-ran nothing");

    // A different script is a different tag: no false sharing.
    let other_script = r#"{ project: "router", aggregate: "router_rank",
                            vmap: { color: "total_sat_time", size: "total_traffic" } }"#;
    let other = post(addr, &views_path, other_script, &[]);
    assert_eq!(other.status, 200, "other body: {}", other.text());
    assert_ne!(other.header("ETag"), Some(tag.as_str()), "distinct scripts get distinct tags");
    assert_ne!(other.body, cold.body);

    // Single-flight: a concurrent cold burst for a brand-new script runs
    // the projection pipeline exactly once — one leader builds, the rest
    // coalesce onto its flight or hit the body cache it fills.
    let burst_script = r#"{ project: "terminal", aggregate: "group_id",
                            vmap: { color: "traffic", size: "sat_time" } }"#;
    let pre_burst = span_count("core/project");
    let burst: Vec<_> = (0..8)
        .map(|_| {
            let path = views_path.clone();
            std::thread::spawn(move || post(addr, &path, burst_script, &[]))
        })
        .collect();
    let replies: Vec<_> = burst.into_iter().map(|t| t.join().expect("burst client")).collect();
    for reply in &replies {
        assert_eq!(reply.status, 200, "burst body: {}", reply.text());
        assert_eq!(reply.body, replies[0].body, "burst replies are byte-identical");
    }
    assert_eq!(
        span_count("core/project"),
        pre_burst + 1,
        "a concurrent cold burst single-flights into exactly one projection"
    );

    // /metricsz exposes the same counters we just exercised.
    let metrics = get(addr, "/metricsz", &[]);
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("serve/cache_hit"), "metrics: {}", metrics.text());

    let report = server.stop();
    assert!(report.requests >= 7, "all requests counted: {report:?}");
}
