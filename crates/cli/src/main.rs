//! The `hrviz` binary: see [`hrviz_cli`] for the implementation.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match hrviz_cli::parse_args(&args).and_then(|cli| hrviz_cli::run(&cli)) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("hrviz: {e}");
            std::process::exit(2);
        }
    }
}
