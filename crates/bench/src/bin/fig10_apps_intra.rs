//! Fig. 10 — intra-group communication patterns of the three applications
//! (AMG, AMR Boxlib, MiniFE) run individually on a 2,550-terminal
//! Dragonfly with adaptive routing and contiguous placement.
//!
//! Paper shapes: AMG and MiniFE spread load evenly; AMR Boxlib is heavily
//! unbalanced (the first two groups originate >60 % of inter-group traffic
//! and the first two ranks >50 % of intra-group traffic); back pressure
//! from saturated global links shows up as local-link saturation.

use hrviz_bench::{
    class_summary, class_summary_header, dataset_active, intra_group_spec, run_app, write_csv,
    write_out, Expectations,
};
use hrviz_core::compare_views;
use hrviz_network::{RoutingAlgorithm, RunData};
use hrviz_render::{render_radial_row, RadialLayout};
use hrviz_workloads::{AppKind, PlacementPolicy};

/// Share of inter-group (global) traffic originated by the first `n` groups.
fn global_share_of_first_groups(run: &RunData, n: u32) -> f64 {
    let topo = run.topology();
    let total: u64 = run.global_links.iter().map(|l| l.traffic).sum();
    if total == 0 {
        return 0.0;
    }
    let first: u64 = run
        .global_links
        .iter()
        .filter(|l| topo.group_of_router(l.src_router).0 < n)
        .map(|l| l.traffic)
        .sum();
    first as f64 / total as f64
}

/// Share of intra-group (local) traffic originated by the first `n` ranks.
fn local_share_of_first_ranks(run: &RunData, n: u32) -> f64 {
    let topo = run.topology();
    let total: u64 = run.local_links.iter().map(|l| l.traffic).sum();
    if total == 0 {
        return 0.0;
    }
    let first: u64 = run
        .local_links
        .iter()
        .filter(|l| topo.rank_of_router(l.src_router) < n)
        .map(|l| l.traffic)
        .sum();
    first as f64 / total as f64
}

fn main() {
    hrviz_bench::obs_init("fig10_apps_intra");
    println!("Fig. 10: intra-group patterns of AMG / AMR Boxlib / MiniFE (2,550 terminals)");
    let runs: Vec<RunData> = AppKind::ALL
        .iter()
        .map(|&k| {
            run_app(
                2_550,
                k,
                RoutingAlgorithm::adaptive_default(),
                PlacementPolicy::Contiguous,
                None,
            )
        })
        .collect();

    let datasets: Vec<_> = runs.iter().map(dataset_active).collect();
    let refs: Vec<&_> = datasets.iter().collect();
    let views = compare_views(&refs, &intra_group_spec()).expect("views build");
    write_out(
        "fig10_apps_intra.svg",
        &render_radial_row(
            &[(&views[0], "AMG"), (&views[1], "AMR Boxlib"), (&views[2], "MiniFE")],
            &RadialLayout::default(),
            "Fig 10: intra-group communication patterns (shared scales)",
        ),
    );

    let mut rows = vec![class_summary_header()];
    let mut shares = vec![vec![
        "app".into(),
        "global_share_first2_groups".into(),
        "local_share_first2_ranks".into(),
    ]];
    for (kind, run) in AppKind::ALL.iter().zip(&runs) {
        rows.push(class_summary(kind.name(), run));
        shares.push(vec![
            kind.name().into(),
            format!("{:.3}", global_share_of_first_groups(run, 2)),
            format!("{:.3}", local_share_of_first_ranks(run, 2)),
        ]);
    }
    write_csv("fig10_class_summary.csv", &rows);
    write_csv("fig10_load_concentration.csv", &shares);

    let amg = &runs[0];
    let amr = &runs[1];
    let mut exp = Expectations::new();
    // Paper: >60 % of inter-group traffic from the first two groups. Our
    // proxy concentrates ~40-55 % there (the ±64-rank partner window leaks
    // across the 50-terminal groups of this scale, and adaptive detours
    // re-attribute intermediate hops); the concentration is still an order
    // of magnitude above the uniform 2/51 ≈ 4 % share.
    let amr_share = global_share_of_first_groups(amr, 2);
    exp.check(
        "AMR Boxlib concentrates inter-group traffic in its first groups (>35%, 9x uniform)",
        amr_share > 0.35,
    );
    exp.check(
        "AMG spreads inter-group traffic (first 2 groups < 30%)",
        global_share_of_first_groups(amg, 2) < 0.3,
    );
    exp.check(
        "MiniFE dominates total volume (Table I ordering)",
        runs[2].total_injected() > 10 * amr.total_injected(),
    );
    exp.check("all runs deliver their traffic", {
        runs.iter().all(|r| r.total_delivered() == r.total_injected())
    });
    std::process::exit(i32::from(!exp.finish("fig10")));
}
