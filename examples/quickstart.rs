//! Quickstart: simulate a small Dragonfly, explore it with a projection
//! script, and render the view to SVG.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hrviz::core::{build_view, parse_script, DataSet, DetailView, TimelineView};
use hrviz::network::JobMeta;
use hrviz::network::{
    DragonflyConfig, LinkClass, NetworkSpec, RoutingAlgorithm, Simulation, TerminalId,
};
use hrviz::pdes::SimTime;
use hrviz::render::{render_link_scatter, render_radial, render_timeline, RadialLayout};
use hrviz::workloads::{generate_synthetic, SyntheticConfig, TrafficPattern};

fn main() {
    // 1. Describe the network: a canonical Dragonfly with h=4
    //    (g=33 groups x a=8 routers x p=4 terminals = 1,056 terminals,
    //    the scale of Yang et al.'s interference study cited in the paper).
    let cfg = DragonflyConfig::canonical(4);
    println!(
        "network: {} groups x {} routers x {} terminals = {} terminals",
        cfg.groups,
        cfg.routers_per_group,
        cfg.terminals_per_router,
        cfg.num_terminals()
    );
    let spec = NetworkSpec::new(cfg)
        .with_routing(RoutingAlgorithm::adaptive_default())
        .with_sampling(SimTime::micros(1), 512)
        .with_seed(42);

    // 2. Generate a uniform-random workload over the whole machine.
    let mut sim = Simulation::new(spec);
    let all: Vec<TerminalId> = (0..cfg.num_terminals()).map(TerminalId).collect();
    let meta = JobMeta { name: "uniform".into(), terminals: all };
    let job = sim.add_job(meta.clone());
    sim.inject_all(generate_synthetic(
        job,
        &meta,
        &SyntheticConfig {
            pattern: TrafficPattern::UniformRandom,
            msg_bytes: 8 * 1024,
            msgs_per_rank: 20,
            period: SimTime::micros(2),
            stride: 1,
            seed: 7,
        },
    ));

    // 3. Run (packet level, credit flow control, adaptive routing).
    let run = sim.run();
    println!(
        "simulated {} events to t={}; delivered {} / {} bytes",
        run.events_processed,
        run.end_time,
        run.total_delivered(),
        run.total_injected()
    );
    for class in LinkClass::ALL {
        println!(
            "  {:<8} traffic {:>12} B   saturation {:>10} ns",
            class.label(),
            run.class_traffic(class),
            run.class_sat_ns(class)
        );
    }

    // 4. Explore with a projection script (the paper's Fig. 5 syntax).
    let ds = DataSet::builder(&run).build();
    let view_spec = parse_script(
        r#"
        { project : "local_link",
          aggregate : "router_rank",
          vmap : { color : "sat_time" },
          colors : ["white", "steelblue"],
          ribbons : { project : "local_link", size : "traffic", color : "sat_time" } },
        { project : "global_link",
          aggregate : ["router_rank", "router_port"],
          vmap : { color : "sat_time", size : "traffic" },
          colors : ["white", "purple"] },
        { project : "terminal",
          vmap : { color : "workload", size : "avg_latency",
                   x : "avg_hops", y : "data_size" },
          colors : ["green", "orange", "brown"] }
        "#,
    )
    .expect("script parses");
    let view = build_view(&ds, &view_spec).expect("view builds");

    // 5. Render everything.
    std::fs::create_dir_all("out").unwrap();
    std::fs::write(
        "out/quickstart_projection.svg",
        render_radial(&view, &RadialLayout::default(), "quickstart: uniform random"),
    )
    .unwrap();
    let detail = DetailView::new(&ds);
    std::fs::write(
        "out/quickstart_links.svg",
        render_link_scatter(&detail.global_links, 360.0, 240.0, "global links"),
    )
    .unwrap();
    if let Some(tl) = TimelineView::traffic(&run) {
        std::fs::write(
            "out/quickstart_timeline.svg",
            render_timeline(&tl, 700.0, 90.0, "traffic over time"),
        )
        .unwrap();
    }
    println!("wrote out/quickstart_projection.svg, out/quickstart_links.svg, out/quickstart_timeline.svg");
}
