//! JSONL trace sinks.
//!
//! A sink receives one JSON object per line. The in-memory sink backs the
//! snapshot API and tests; the file sink streams events to disk so long
//! runs don't accumulate unbounded state.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Where trace events go.
#[derive(Debug)]
pub enum TraceSink {
    /// Drop events (counters/spans still aggregate).
    Null,
    /// Keep rendered lines in memory (drained via
    /// [`crate::Collector::drain_events`]).
    Memory(Vec<String>),
    /// Stream lines to a JSONL file.
    File(BufWriter<File>),
}

impl TraceSink {
    /// Open a file sink, creating parent directories as needed.
    pub fn file(path: &Path) -> io::Result<TraceSink> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(TraceSink::File(BufWriter::new(File::create(path)?)))
    }

    /// Append one rendered JSON line.
    pub fn write_line(&mut self, line: &str) {
        match self {
            TraceSink::Null => {}
            TraceSink::Memory(lines) => lines.push(line.to_string()),
            TraceSink::File(w) => {
                // Trace output is best-effort; a full disk should not abort
                // the simulation that is being observed.
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// Flush buffered output (no-op for non-file sinks).
    pub fn flush(&mut self) -> io::Result<()> {
        match self {
            TraceSink::File(w) => w.flush(),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_accumulates() {
        let mut s = TraceSink::Memory(Vec::new());
        s.write_line("{\"a\":1}");
        s.write_line("{\"b\":2}");
        match s {
            TraceSink::Memory(lines) => assert_eq!(lines, vec!["{\"a\":1}", "{\"b\":2}"]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn file_sink_writes_jsonl() {
        let dir = std::env::temp_dir().join("hrviz_obs_trace_test");
        let path = dir.join("nested").join("t.jsonl");
        let mut s = TraceSink::file(&path).unwrap();
        s.write_line("{\"x\":1}");
        s.write_line("{\"y\":2}");
        s.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"x\":1}\n{\"y\":2}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn null_sink_discards() {
        let mut s = TraceSink::Null;
        s.write_line("{}");
        s.flush().unwrap();
    }
}
