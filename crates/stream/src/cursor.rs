//! Turning cumulative simulator counters into per-window slices.
//!
//! Simulator LPs carry *cumulative* totals (bytes delivered since t=0);
//! a slice wants the *delta* over one window. [`SliceCursor`] holds the
//! previous boundary's totals and cuts the difference, including the
//! per-terminal latency deltas that feed the window's log₂ histogram —
//! pure integer math, so replays cut byte-identical slices.

use crate::slice::{Slice, LATENCY_BINS};

/// Cumulative network totals at one virtual-time boundary, gathered by
/// the topology crate from its live LP population.
#[derive(Clone, Debug, Default)]
pub struct CumulativeTotals {
    /// Packets delivered to terminals since t=0.
    pub delivered_packets: u64,
    /// Payload bytes delivered since t=0.
    pub delivered_bytes: u64,
    /// Packets injected since t=0.
    pub injected_packets: u64,
    /// Payload bytes injected since t=0.
    pub injected_bytes: u64,
    /// Packets dropped since t=0.
    pub dropped_packets: u64,
    /// VC saturation time summed over all router ports (ns).
    pub vc_sat_ns: u64,
    /// Per-terminal `(latency_sum_ns, packets_finished)`, indexed by
    /// terminal id.
    pub per_terminal: Vec<(u64, u64)>,
}

/// Cuts successive [`Slice`]s from a stream of cumulative totals.
pub struct SliceCursor {
    seq: u64,
    prev_t: u64,
    prev: CumulativeTotals,
}

impl SliceCursor {
    /// A cursor at t=0 with all-zero totals for `terminals` terminals.
    pub fn new(terminals: usize) -> SliceCursor {
        SliceCursor {
            seq: 0,
            prev_t: 0,
            prev: CumulativeTotals {
                per_terminal: vec![(0, 0); terminals],
                ..CumulativeTotals::default()
            },
        }
    }

    /// Slices cut so far.
    pub fn slices(&self) -> u64 {
        self.seq
    }

    /// Cut the window `(prev boundary, t_end_ns]`. Returns `None` (and
    /// stays put) when no virtual time elapsed — a drained run sitting
    /// exactly on the previous boundary has nothing to report.
    pub fn cut(&mut self, t_end_ns: u64, cur: CumulativeTotals) -> Option<Slice> {
        if t_end_ns <= self.prev_t && self.seq > 0 {
            return None;
        }
        let mut latency_hist = [0u64; LATENCY_BINS];
        let mut latency_sum_ns = 0u64;
        for (i, &(lat, pkts)) in cur.per_terminal.iter().enumerate() {
            let (plat, ppkts) = self.prev.per_terminal.get(i).copied().unwrap_or((0, 0));
            let d_pkts = pkts.saturating_sub(ppkts);
            let d_lat = lat.saturating_sub(plat);
            latency_sum_ns += d_lat;
            if d_pkts > 0 {
                latency_hist[Slice::latency_bucket(d_lat / d_pkts)] += d_pkts;
            }
        }
        let slice = Slice {
            seq: self.seq,
            t_start_ns: self.prev_t,
            t_end_ns,
            delivered_packets: cur.delivered_packets.saturating_sub(self.prev.delivered_packets),
            delivered_bytes: cur.delivered_bytes.saturating_sub(self.prev.delivered_bytes),
            injected_packets: cur.injected_packets.saturating_sub(self.prev.injected_packets),
            injected_bytes: cur.injected_bytes.saturating_sub(self.prev.injected_bytes),
            dropped_packets: cur.dropped_packets.saturating_sub(self.prev.dropped_packets),
            latency_sum_ns,
            latency_hist,
            vc_sat_ns: cur.vc_sat_ns.saturating_sub(self.prev.vc_sat_ns),
        };
        self.seq += 1;
        self.prev_t = t_end_ns;
        self.prev = cur;
        Some(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(delivered: u64, lat: &[(u64, u64)]) -> CumulativeTotals {
        CumulativeTotals {
            delivered_packets: delivered,
            delivered_bytes: delivered * 2048,
            injected_packets: delivered + 2,
            injected_bytes: (delivered + 2) * 2048,
            dropped_packets: 0,
            vc_sat_ns: delivered * 10,
            per_terminal: lat.to_vec(),
        }
    }

    #[test]
    fn deltas_and_histogram_come_from_per_terminal_diffs() {
        let mut c = SliceCursor::new(2);
        let s0 = c.cut(1_000, totals(4, &[(8_000, 4), (0, 0)])).unwrap();
        assert_eq!((s0.seq, s0.t_start_ns, s0.t_end_ns), (0, 0, 1_000));
        assert_eq!(s0.delivered_packets, 4);
        assert_eq!(s0.latency_sum_ns, 8_000);
        // Window mean 2000ns = 2µs → bucket 2, weight 4.
        assert_eq!(s0.latency_hist[2], 4);
        let s1 = c.cut(2_000, totals(10, &[(8_000, 4), (3_000, 6)])).unwrap();
        assert_eq!(s1.delivered_packets, 6);
        assert_eq!(s1.latency_sum_ns, 3_000);
        // Terminal 1 window mean 500ns → bucket 0.
        assert_eq!(s1.latency_hist[0], 6);
        assert_eq!(s1.vc_sat_ns, 60);
    }

    #[test]
    fn zero_duration_cut_is_skipped() {
        let mut c = SliceCursor::new(1);
        assert!(c.cut(1_000, totals(1, &[(100, 1)])).is_some());
        assert!(c.cut(1_000, totals(1, &[(100, 1)])).is_none());
        assert_eq!(c.slices(), 1);
    }

    #[test]
    fn slice_sums_reconstruct_the_run_totals() {
        let mut c = SliceCursor::new(1);
        let steps = [(1_000u64, 3u64), (2_000, 3), (3_000, 9)];
        let mut sum = 0;
        for &(t, d) in &steps {
            let s = c.cut(t, totals(d, &[(d * 700, d)])).unwrap();
            sum += s.delivered_packets;
        }
        assert_eq!(sum, 9);
    }
}
