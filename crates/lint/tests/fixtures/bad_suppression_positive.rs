// Fixture: allows without a reason, or naming an unknown rule, must be
// flagged (even in test code — a malformed allow is wrong anywhere).
// lint:allow(hash_collections)
pub fn reasonless(xs: &[u32]) -> usize {
    let set: std::collections::HashSet<u32> = xs.iter().copied().collect();
    set.len()
}

// lint:allow(hash_collections, reason="")
pub fn empty_reason() -> u32 {
    0
}

// lint:allow(made_up_rule, reason="this rule does not exist")
pub fn unknown_rule() -> u32 {
    0
}
