//! Ablation benches for the design choices DESIGN.md calls out. These are
//! *measurement* benches: each configuration runs a fixed adversarial
//! workload and Criterion reports the simulation cost, while the printed
//! metrics (saturation, latency) expose the modelled sensitivity:
//!
//! * VC buffer capacity → saturation-time sensitivity of the congestion
//!   model,
//! * UGAL threshold → the adaptive/minimal crossover,
//! * `maxBins` → aggregation cost vs view size,
//! * sequential vs conservative-parallel scheduler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hrviz_core::{bin_items, group_rows, DataSet, EntityKind, Field};
use hrviz_network::{
    DragonflyConfig, LinkClass, MsgInjection, NetworkSpec, RoutingAlgorithm, RunData, Simulation,
    TerminalId,
};
use hrviz_pdes::SimTime;

fn tornado_sim(mut spec: NetworkSpec) -> Simulation {
    spec = spec.with_seed(11);
    let n = spec.topology.num_terminals();
    let mut sim = Simulation::new(spec);
    for src in 0..n {
        for k in 0..6u64 {
            sim.inject(MsgInjection {
                time: SimTime(k * 2_000),
                src: TerminalId(src),
                dst: TerminalId((src + n / 2) % n),
                bytes: 16 * 1024,
                job: 0,
            });
        }
    }
    sim
}

fn run_tornado(spec: NetworkSpec) -> RunData {
    tornado_sim(spec).run()
}

fn bench_buffer_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_vc_buffer");
    g.sample_size(10);
    for &kb in &[4u32, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(kb), &kb, |b, &kb| {
            b.iter(|| {
                let mut spec = NetworkSpec::new(DragonflyConfig::canonical(3));
                spec.vc_buffer_bytes = kb * 1024;
                spec.routing = RoutingAlgorithm::Minimal;
                run_tornado(spec).class_sat_ns(LinkClass::Local)
            })
        });
    }
    // Print the modelled sensitivity once.
    for &kb in &[4u32, 16, 64] {
        let mut spec = NetworkSpec::new(DragonflyConfig::canonical(3));
        spec.vc_buffer_bytes = kb * 1024;
        spec.routing = RoutingAlgorithm::Minimal;
        let run = run_tornado(spec);
        println!(
            "  vc_buffer={kb}KB  local_sat={}ns  end={}",
            run.class_sat_ns(LinkClass::Local),
            run.end_time
        );
    }
    g.finish();
}

fn bench_ugal_threshold(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_ugal_threshold");
    g.sample_size(10);
    for &t in &[0u64, 2_048, 65_536, u64::MAX / 2] {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                let spec = NetworkSpec::new(DragonflyConfig::canonical(3))
                    .with_routing(RoutingAlgorithm::Adaptive { threshold: t });
                run_tornado(spec).class_traffic(LinkClass::Global)
            })
        });
    }
    for &t in &[0u64, 2_048, 65_536, u64::MAX / 2] {
        let spec = NetworkSpec::new(DragonflyConfig::canonical(3))
            .with_routing(RoutingAlgorithm::Adaptive { threshold: t });
        let run = run_tornado(spec);
        println!(
            "  ugal_threshold={t}  global_traffic={}  local_sat={}ns",
            run.class_traffic(LinkClass::Global),
            run.class_sat_ns(LinkClass::Local)
        );
    }
    g.finish();
}

fn bench_maxbins(c: &mut Criterion) {
    let spec = NetworkSpec::new(DragonflyConfig::try_paper_scale(2_550).expect("paper scale"))
        .with_routing(RoutingAlgorithm::adaptive_default());
    let mut sim = Simulation::new(spec);
    for src in 0..2_550u32 {
        sim.inject(MsgInjection {
            time: SimTime::ZERO,
            src: TerminalId(src),
            dst: TerminalId((src + 1) % 2_550),
            bytes: 8192,
            job: 0,
        });
    }
    let ds = DataSet::builder(&sim.run()).build();
    let items = group_rows(&ds, EntityKind::GlobalLink, &[Field::RouterId, Field::RouterPort]);
    let mut g = c.benchmark_group("ablation_maxbins");
    for &bins in &[4usize, 16, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(bins), &bins, |b, &bins| {
            b.iter(|| {
                bin_items(&ds, EntityKind::GlobalLink, items.clone(), Field::Traffic, bins).len()
            })
        });
    }
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scheduler");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| {
            tornado_sim(NetworkSpec::new(DragonflyConfig::canonical(3))).run().events_processed
        })
    });
    for &parts in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("parallel", parts), &parts, |b, &parts| {
            b.iter(|| {
                tornado_sim(NetworkSpec::new(DragonflyConfig::canonical(3)))
                    .run_parallel(parts)
                    .events_processed
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_buffer_sweep, bench_ugal_threshold, bench_maxbins, bench_scheduler);
criterion_main!(benches);
