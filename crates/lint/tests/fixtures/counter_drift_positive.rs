// Fixture: a metric name the audit cannot see statically must be
// flagged at the write site.
use hrviz_obs::Collector;

pub fn record(c: &Collector, name: &str) {
    c.counter_add(name, 1);
}
