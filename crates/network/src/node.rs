//! The LP enum tying terminals and routers into one engine.

use crate::events::NetEvent;
use crate::router::RouterLp;
use crate::terminal::TerminalLp;
use hrviz_pdes::wire::{SnapshotError, WireReader, WireWriter};
use hrviz_pdes::{Ctx, Lp, SimTime};

/// A simulation node: either a terminal or a router. Using an enum (rather
/// than trait objects) keeps the event loop monomorphic and branch-predicted.
// Terminals dominate the node population; boxing either variant would trade
// the intended flat in-place layout for a pointer chase on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum NetNode {
    /// Compute-node NIC.
    Terminal(TerminalLp),
    /// Dragonfly router.
    Router(RouterLp),
}

impl NetNode {
    /// The terminal, if this node is one.
    pub fn as_terminal(&self) -> Option<&TerminalLp> {
        match self {
            NetNode::Terminal(t) => Some(t),
            NetNode::Router(_) => None,
        }
    }

    /// The router, if this node is one.
    pub fn as_router(&self) -> Option<&RouterLp> {
        match self {
            NetNode::Router(r) => Some(r),
            NetNode::Terminal(_) => None,
        }
    }
}

impl Lp<NetEvent> for NetNode {
    fn on_init(&mut self, ctx: &mut Ctx<'_, NetEvent>) {
        if let NetNode::Terminal(t) = self {
            t.on_init(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, NetEvent>, ev: NetEvent) {
        match self {
            NetNode::Terminal(t) => t.on_event(ctx, ev),
            NetNode::Router(r) => r.on_event(ctx, ev),
        }
    }

    fn on_finish(&mut self, now: SimTime) {
        match self {
            NetNode::Terminal(t) => t.on_finish(now),
            NetNode::Router(r) => r.on_finish(now),
        }
    }

    fn audit(&self) -> Result<(), String> {
        match self {
            NetNode::Terminal(t) => t.audit(),
            NetNode::Router(r) => r.audit(),
        }
    }

    fn snapshot(&self, w: &mut WireWriter) -> Result<(), SnapshotError> {
        match self {
            NetNode::Terminal(t) => {
                w.put_u8(0);
                t.snapshot(w)
            }
            NetNode::Router(r) => {
                w.put_u8(1);
                r.snapshot(w)
            }
        }
    }

    fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), SnapshotError> {
        let tag = r.u8()?;
        match (tag, self) {
            (0, NetNode::Terminal(t)) => t.restore(r),
            (1, NetNode::Router(rt)) => rt.restore(r),
            (tag, _) => Err(SnapshotError::Corrupt(format!(
                "node kind mismatch: snapshot tag {tag} does not match model node"
            ))),
        }
    }
}
