//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names a cartesian grid over the design-space axes the
//! paper explores (§V–§VI): routing policy × traffic pattern × job
//! placement × fault schedule × RNG seed, on one topology. [`SweepSpec::expand`]
//! flattens the grid into concrete [`RunConfig`]s; each config knows how to
//! [`execute`](RunConfig::execute) itself and how to describe itself as a
//! [`canonical`](RunConfig::canonical) string whose fingerprint
//! content-addresses the run in the [store](crate::store::RunStore).

use hrviz_core::DataSet;
use hrviz_fattree::{FatTreeConfig, FatTreeRun, FatTreeSim, UpRouting};
use hrviz_network::{
    DragonflyConfig, FaultSchedule, HrvizError, JobMeta, NetworkSpec, RoutingAlgorithm, RunData,
    Simulation, TerminalId, Topology,
};
use hrviz_pdes::{EngineStats, SimTime};
use hrviz_stream::{SliceSink, StreamedOutcome};
use hrviz_workloads::{
    generate_synthetic, Allocator, PlacementPolicy, PlacementRequest, SyntheticConfig,
    TrafficPattern,
};

/// The topology a sweep runs on. Sweeps are per-topology: cross-topology
/// comparisons load two stores side by side instead of mixing tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyAxis {
    /// A Dragonfly sized by terminal count (paper scale 2550/5256/9702 or
    /// any canonical size `g·a·p` with `a = 2h`, `p = h`).
    Dragonfly {
        /// Total terminal count.
        terminals: u32,
    },
    /// A three-layer fat-tree built from `k`-port switches.
    FatTree {
        /// Switch radix (even, ≥ 2).
        k: u32,
    },
}

impl TopologyAxis {
    /// Stable label used in canonical strings and run labels.
    pub fn label(&self) -> String {
        match self {
            TopologyAxis::Dragonfly { terminals } => format!("dragonfly:{terminals}"),
            TopologyAxis::FatTree { k } => format!("fattree:{k}"),
        }
    }
}

/// One point on the placement axis: how the job's ranks land on terminals.
#[derive(Clone, Debug)]
pub struct PlacementAxis {
    /// Stable label used in canonical strings (e.g. `"whole"`, `"contig"`).
    pub label: String,
    /// `None` fills the whole machine (rank `i` on terminal `i`); `Some`
    /// places `ranks` ranks through the allocator with the given policy.
    /// Policy placements require a Dragonfly topology.
    pub policy: Option<(PlacementPolicy, u32)>,
}

impl PlacementAxis {
    /// Whole-machine placement (the default axis point).
    pub fn whole() -> PlacementAxis {
        PlacementAxis { label: "whole".into(), policy: None }
    }

    /// Place `ranks` ranks with `policy` via the allocator.
    pub fn policy(label: impl Into<String>, policy: PlacementPolicy, ranks: u32) -> PlacementAxis {
        PlacementAxis { label: label.into(), policy: Some((policy, ranks)) }
    }

    fn canonical(&self) -> String {
        match &self.policy {
            None => format!("{}:whole", self.label),
            Some((p, ranks)) => format!("{}:{}:{ranks}", self.label, p.name()),
        }
    }
}

/// One point on the fault axis: a labelled (possibly empty) fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultAxis {
    /// Stable label used in canonical strings (e.g. `"none"`, `"g0-cut"`).
    pub label: String,
    /// The schedule to inject, or `None` for a healthy run.
    pub schedule: Option<FaultSchedule>,
}

impl FaultAxis {
    /// The healthy (no-faults) axis point.
    pub fn none() -> FaultAxis {
        FaultAxis { label: "none".into(), schedule: None }
    }

    /// A labelled fault schedule.
    pub fn schedule(label: impl Into<String>, schedule: FaultSchedule) -> FaultAxis {
        FaultAxis { label: label.into(), schedule: Some(schedule) }
    }

    fn canonical(&self) -> String {
        match &self.schedule {
            None => format!("{}:0", self.label),
            // The schedule's JSON form is canonical (ordered events), so
            // its fingerprint identifies the schedule contents.
            Some(s) => format!("{}:{:016x}", self.label, hrviz_obs::fingerprint64(&s.to_json())),
        }
    }
}

/// A declarative sweep: one topology, a set of values per axis, and the
/// shared workload shape. Expansion order is routing → pattern → placement
/// → fault → seed (last axis varies fastest).
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Sweep name (used for report artifacts).
    pub name: String,
    /// The topology every run uses.
    pub topology: TopologyAxis,
    /// Routing policies to sweep.
    pub routings: Vec<RoutingAlgorithm>,
    /// Traffic patterns to sweep.
    pub patterns: Vec<TrafficPattern>,
    /// Placement axis points to sweep.
    pub placements: Vec<PlacementAxis>,
    /// Fault axis points to sweep.
    pub faults: Vec<FaultAxis>,
    /// RNG seeds to sweep (workload + placement + network RNG).
    pub seeds: Vec<u64>,
    /// Messages each rank sends.
    pub msgs_per_rank: u32,
    /// Bytes per message.
    pub msg_bytes: u32,
    /// Interval between a rank's consecutive messages.
    pub period: SimTime,
}

impl SweepSpec {
    /// A single-point sweep on `topology`: minimal routing, uniform-random
    /// traffic, whole-machine placement, no faults, seed 42. Widen axes
    /// with the builder methods.
    pub fn new(name: impl Into<String>, topology: TopologyAxis) -> SweepSpec {
        SweepSpec {
            name: name.into(),
            topology,
            routings: vec![RoutingAlgorithm::Minimal],
            patterns: vec![TrafficPattern::UniformRandom],
            placements: vec![PlacementAxis::whole()],
            faults: vec![FaultAxis::none()],
            seeds: vec![42],
            msgs_per_rank: 4,
            msg_bytes: 4 * 1024,
            period: SimTime::micros(4),
        }
    }

    /// Replace the routing axis.
    pub fn routings(mut self, routings: impl Into<Vec<RoutingAlgorithm>>) -> SweepSpec {
        self.routings = routings.into();
        self
    }

    /// Replace the traffic-pattern axis.
    pub fn patterns(mut self, patterns: impl Into<Vec<TrafficPattern>>) -> SweepSpec {
        self.patterns = patterns.into();
        self
    }

    /// Replace the placement axis.
    pub fn placements(mut self, placements: impl Into<Vec<PlacementAxis>>) -> SweepSpec {
        self.placements = placements.into();
        self
    }

    /// Replace the fault axis.
    pub fn faults(mut self, faults: impl Into<Vec<FaultAxis>>) -> SweepSpec {
        self.faults = faults.into();
        self
    }

    /// Replace the seed axis.
    pub fn seeds(mut self, seeds: impl Into<Vec<u64>>) -> SweepSpec {
        self.seeds = seeds.into();
        self
    }

    /// Set the per-rank message count.
    pub fn msgs_per_rank(mut self, msgs: u32) -> SweepSpec {
        self.msgs_per_rank = msgs;
        self
    }

    /// Set the message size in bytes.
    pub fn msg_bytes(mut self, bytes: u32) -> SweepSpec {
        self.msg_bytes = bytes;
        self
    }

    /// Set the injection period.
    pub fn period(mut self, period: SimTime) -> SweepSpec {
        self.period = period;
        self
    }

    /// Flatten the grid into concrete run configurations (cartesian
    /// product, deterministic order: routing → pattern → placement →
    /// fault → seed).
    pub fn expand(&self) -> Result<Vec<RunConfig>, HrvizError> {
        for (axis, len) in [
            ("routings", self.routings.len()),
            ("patterns", self.patterns.len()),
            ("placements", self.placements.len()),
            ("faults", self.faults.len()),
            ("seeds", self.seeds.len()),
        ] {
            if len == 0 {
                return Err(HrvizError::config(format!(
                    "sweep {:?}: empty {axis} axis",
                    self.name
                )));
            }
        }
        if matches!(self.topology, TopologyAxis::FatTree { .. })
            && self.placements.iter().any(|p| p.policy.is_some())
        {
            return Err(HrvizError::config("placement-policy sweeps require a Dragonfly topology"));
        }
        let mut out =
            Vec::with_capacity(self.routings.len() * self.patterns.len() * self.seeds.len());
        for &routing in &self.routings {
            for &pattern in &self.patterns {
                for placement in &self.placements {
                    for fault in &self.faults {
                        for &seed in &self.seeds {
                            out.push(RunConfig {
                                topology: self.topology,
                                routing,
                                pattern,
                                placement: placement.clone(),
                                fault: fault.clone(),
                                seed,
                                msgs_per_rank: self.msgs_per_rank,
                                msg_bytes: self.msg_bytes,
                                period: self.period,
                            });
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// One concrete run: a single point of the expanded grid.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Topology of the run.
    pub topology: TopologyAxis,
    /// Routing policy.
    pub routing: RoutingAlgorithm,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Placement axis point.
    pub placement: PlacementAxis,
    /// Fault axis point.
    pub fault: FaultAxis,
    /// RNG seed.
    pub seed: u64,
    /// Messages each rank sends.
    pub msgs_per_rank: u32,
    /// Bytes per message.
    pub msg_bytes: u32,
    /// Injection period.
    pub period: SimTime,
}

impl RunConfig {
    /// The canonical description of this run: every input that affects the
    /// simulation, in a fixed order and rendering. Two configs produce the
    /// same simulation iff their canonical strings are equal, which is what
    /// makes [`RunConfig::hash`] a safe content address.
    pub fn canonical(&self) -> String {
        format!(
            "v1|topo={}|routing={:?}|pattern={}|placement={}|faults={}|seed={}|msgs={}|bytes={}|period_ns={}",
            self.topology.label(),
            self.routing,
            self.pattern.name(),
            self.placement.canonical(),
            self.fault.canonical(),
            self.seed,
            self.msgs_per_rank,
            self.msg_bytes,
            self.period.as_nanos(),
        )
    }

    /// Content-address of the run (FNV-1a of [`RunConfig::canonical`]).
    pub fn hash(&self) -> u64 {
        hrviz_obs::fingerprint64(&self.canonical())
    }

    /// The run's directory name in the store: the hash as 16 hex digits.
    pub fn run_id(&self) -> String {
        format!("{:016x}", self.hash())
    }

    /// Provenance fingerprint of the fault schedule contents (`"0"` for a
    /// healthy run) — the same fingerprint [`FaultAxis`] folds into the
    /// canonical string.
    pub fn fault_hash(&self) -> String {
        match &self.fault.schedule {
            None => "0".to_string(),
            Some(s) => format!("{:016x}", hrviz_obs::fingerprint64(&s.to_json())),
        }
    }

    /// Short human-readable label for reports and progress lines.
    pub fn label(&self) -> String {
        format!(
            "{} {} {} {} {} seed={}",
            self.topology.label(),
            routing_name(self.routing),
            self.pattern.name(),
            self.placement.label,
            self.fault.label,
            self.seed,
        )
    }

    /// Simulate this configuration.
    pub fn execute(&self) -> Result<RunResult, HrvizError> {
        match self.topology {
            TopologyAxis::Dragonfly { terminals } => self.execute_dragonfly(terminals),
            TopologyAxis::FatTree { k } => self.execute_fattree(k),
        }
    }

    /// Simulate this configuration with live slice telemetry: one
    /// [`Slice`](hrviz_stream::Slice) of counter deltas lands in `sink`
    /// per absolute `window` boundary, and the sink may abort the run
    /// mid-flight. A completed streamed run produces the same
    /// [`RunResult`] bytes as [`RunConfig::execute`].
    pub fn execute_streamed(
        &self,
        window: SimTime,
        sink: SliceSink<'_>,
    ) -> Result<StreamedOutcome<RunResult>, HrvizError> {
        match self.topology {
            TopologyAxis::Dragonfly { terminals } => {
                let sim = self.dragonfly_sim(terminals)?;
                Ok(match sim.with_collector(hrviz_obs::get()).try_run_streamed(window, sink)? {
                    StreamedOutcome::Completed(run) => {
                        StreamedOutcome::Completed(dragonfly_result(&run))
                    }
                    StreamedOutcome::Aborted { reason, at_ns, slices } => {
                        StreamedOutcome::Aborted { reason, at_ns, slices }
                    }
                })
            }
            TopologyAxis::FatTree { k } => {
                let sim = self.fattree_sim(k)?;
                Ok(match sim.try_run_streamed(window, sink)? {
                    StreamedOutcome::Completed(run) => {
                        StreamedOutcome::Completed(fattree_result(&run))
                    }
                    StreamedOutcome::Aborted { reason, at_ns, slices } => {
                        StreamedOutcome::Aborted { reason, at_ns, slices }
                    }
                })
            }
        }
    }

    fn synthetic(&self) -> SyntheticConfig {
        SyntheticConfig {
            pattern: self.pattern,
            msg_bytes: self.msg_bytes,
            msgs_per_rank: self.msgs_per_rank,
            period: self.period,
            stride: 1,
            seed: self.seed,
        }
    }

    fn execute_dragonfly(&self, terminals: u32) -> Result<RunResult, HrvizError> {
        let sim = self.dragonfly_sim(terminals)?;
        let run = sim.with_collector(hrviz_obs::get()).try_run()?;
        Ok(dragonfly_result(&run))
    }

    fn execute_fattree(&self, k: u32) -> Result<RunResult, HrvizError> {
        let sim = self.fattree_sim(k)?;
        let run = sim.try_run()?;
        Ok(fattree_result(&run))
    }

    /// Build the Dragonfly simulation with faults, placement, and the
    /// synthetic workload injected — ready for either run path.
    fn dragonfly_sim(&self, terminals: u32) -> Result<Simulation, HrvizError> {
        let cfg = dragonfly_of(terminals)?;
        let spec = NetworkSpec::new(cfg).with_routing(self.routing).with_seed(self.seed);
        let mut sim = Simulation::try_new(spec)?;
        if let Some(s) = &self.fault.schedule {
            sim = sim.with_faults(s.clone());
        }
        let meta = match &self.placement.policy {
            Some((policy, ranks)) => Allocator::new(Topology::new(cfg), self.seed)
                .place(&PlacementRequest {
                    name: self.pattern.name().into(),
                    ranks: *ranks,
                    policy: *policy,
                })
                .map_err(|e| HrvizError::config(format!("placement failed: {e}")))?,
            None => JobMeta {
                name: self.pattern.name().into(),
                terminals: (0..cfg.num_terminals()).map(TerminalId).collect(),
            },
        };
        let job = sim.add_job(meta.clone());
        sim.inject_all(generate_synthetic(job, &meta, &self.synthetic()));
        Ok(sim)
    }

    /// Build the fat-tree simulation with faults and workload injected.
    fn fattree_sim(&self, k: u32) -> Result<FatTreeSim, HrvizError> {
        if self.placement.policy.is_some() {
            return Err(HrvizError::config("placement-policy sweeps require a Dragonfly topology"));
        }
        let cfg = FatTreeConfig::try_new(k)?;
        let routing = match self.routing {
            RoutingAlgorithm::Minimal | RoutingAlgorithm::NonMinimal => UpRouting::Ecmp,
            RoutingAlgorithm::Adaptive { .. } | RoutingAlgorithm::ProgressiveAdaptive { .. } => {
                UpRouting::Adaptive
            }
        };
        let mut sim = FatTreeSim::new(cfg, routing);
        if let Some(s) = &self.fault.schedule {
            sim = sim.with_faults(s.clone());
        }
        let meta = JobMeta {
            name: self.pattern.name().into(),
            terminals: (0..cfg.num_hosts()).map(TerminalId).collect(),
        };
        let job = sim.add_job(meta.clone());
        sim.inject_all(generate_synthetic(job, &meta, &self.synthetic()));
        Ok(sim)
    }
}

/// Fold a completed Dragonfly run into the store-facing result shape.
fn dragonfly_result(run: &RunData) -> RunResult {
    RunResult {
        dataset: DataSet::builder(run).build(),
        stats: EngineStats {
            events_processed: run.events_processed,
            events_scheduled: run.events_scheduled,
            end_time: run.end_time,
            peak_queue_depth: run.peak_queue_depth,
        },
        delivered: run.total_delivered(),
        injected: run.total_injected(),
        dropped: run.total_dropped(),
        rerouted: run.total_rerouted(),
    }
}

/// Fold a completed fat-tree run into the store-facing result shape.
fn fattree_result(run: &FatTreeRun) -> RunResult {
    RunResult {
        dataset: run.to_dataset(),
        stats: EngineStats {
            events_processed: run.events_processed,
            // The fat-tree runner does not report scheduling stats;
            // counters it lacks stay zero rather than being faked.
            events_scheduled: 0,
            end_time: run.end_time,
            peak_queue_depth: 0,
        },
        delivered: run.delivered_bytes(),
        injected: run.injected_bytes(),
        dropped: run.dropped_packets(),
        rerouted: run.rerouted_packets(),
    }
}

/// The in-memory product of one executed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Flattened analytics tables.
    pub dataset: DataSet,
    /// Engine counters (events, end time, queue depth).
    pub stats: EngineStats,
    /// Bytes delivered to terminals.
    pub delivered: u64,
    /// Bytes injected by the workload.
    pub injected: u64,
    /// Packets dropped (faults / TTL).
    pub dropped: u64,
    /// Packets reroute around failed resources.
    pub rerouted: u64,
}

/// Short stable name for a routing policy (threshold-insensitive; the
/// canonical string keeps the full `Debug` form).
pub fn routing_name(r: RoutingAlgorithm) -> &'static str {
    match r {
        RoutingAlgorithm::Minimal => "minimal",
        RoutingAlgorithm::NonMinimal => "nonminimal",
        RoutingAlgorithm::Adaptive { .. } => "adaptive",
        RoutingAlgorithm::ProgressiveAdaptive { .. } => "par",
    }
}

/// Resolve a terminal count to a Dragonfly configuration: the paper scales
/// (2550/5256/9702) or any canonical size (`g·a·p` with `a = 2h`, `p = h`).
pub fn dragonfly_of(terminals: u32) -> Result<DragonflyConfig, HrvizError> {
    match terminals {
        2_550 | 5_256 | 9_702 => DragonflyConfig::try_paper_scale(terminals),
        n => {
            for h in 1..=16 {
                let c = DragonflyConfig::canonical(h);
                if c.num_terminals() == n {
                    return Ok(c);
                }
            }
            Err(HrvizError::config(format!(
                "no canonical Dragonfly with {n} terminals; use a paper scale \
                 (2550/5256/9702) or a canonical size (g*a*p for a=2h, p=h)"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_faults::FaultEvent;

    fn tiny() -> SweepSpec {
        SweepSpec::new("tiny", TopologyAxis::Dragonfly { terminals: 72 })
            .msgs_per_rank(2)
            .msg_bytes(1024)
            .period(SimTime::micros(1))
    }

    #[test]
    fn expand_is_the_cartesian_product_in_axis_order() {
        let spec = tiny()
            .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
            .patterns([TrafficPattern::UniformRandom, TrafficPattern::Tornado])
            .seeds([1, 2]);
        let runs = spec.expand().unwrap();
        assert_eq!(runs.len(), 8);
        // Last axis (seed) varies fastest.
        assert_eq!(runs[0].seed, 1);
        assert_eq!(runs[1].seed, 2);
        assert_eq!(runs[0].pattern, TrafficPattern::UniformRandom);
        assert_eq!(runs[2].pattern, TrafficPattern::Tornado);
        assert!(matches!(runs[0].routing, RoutingAlgorithm::Minimal));
        assert!(matches!(runs[4].routing, RoutingAlgorithm::Adaptive { .. }));
        // All eight canonical strings (and hence run ids) are distinct.
        let ids: std::collections::HashSet<String> = runs.iter().map(RunConfig::run_id).collect();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn empty_axes_and_fattree_placements_are_config_errors() {
        let e = tiny().seeds([]).expand().unwrap_err();
        assert!(e.to_string().contains("empty seeds axis"), "{e}");
        let spec = SweepSpec::new("ft", TopologyAxis::FatTree { k: 4 })
            .placements([PlacementAxis::policy("contig", PlacementPolicy::Contiguous, 8)]);
        let e = spec.expand().unwrap_err();
        assert!(e.to_string().contains("Dragonfly"), "{e}");
    }

    #[test]
    fn canonical_hash_is_stable_and_sensitive() {
        let a = &tiny().expand().unwrap()[0];
        let b = &tiny().expand().unwrap()[0];
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.run_id().len(), 16);
        let c = &tiny().seeds([43]).expand().unwrap()[0];
        assert_ne!(a.hash(), c.hash());
        // Adaptive thresholds are part of the address.
        let t1 =
            &tiny().routings([RoutingAlgorithm::Adaptive { threshold: 1 }]).expand().unwrap()[0];
        let t2 =
            &tiny().routings([RoutingAlgorithm::Adaptive { threshold: 2 }]).expand().unwrap()[0];
        assert_ne!(t1.hash(), t2.hash());
        // Fault schedules are addressed by content, not label.
        let mut s1 = FaultSchedule::new(7);
        s1.push(SimTime::micros(1), FaultEvent::LinkDown { router: 0, port: 1 });
        let f1 = &tiny().faults([FaultAxis::schedule("x", s1.clone())]).expand().unwrap()[0];
        let mut s2 = s1.clone();
        s2.push(SimTime::micros(2), FaultEvent::LinkDown { router: 0, port: 2 });
        let f2 = &tiny().faults([FaultAxis::schedule("x", s2)]).expand().unwrap()[0];
        assert_ne!(f1.hash(), f2.hash());
    }

    #[test]
    fn dragonfly_execute_smoke() {
        let cfg = &tiny().expand().unwrap()[0];
        let r = cfg.execute().unwrap();
        assert!(r.stats.events_processed > 0);
        assert!(r.delivered > 0);
        assert_eq!(r.dataset.terminals.len(), 72);
    }

    #[test]
    fn fattree_execute_smoke() {
        let spec = SweepSpec::new("ft", TopologyAxis::FatTree { k: 4 })
            .msgs_per_rank(2)
            .msg_bytes(1024)
            .period(SimTime::micros(1));
        let r = spec.expand().unwrap()[0].execute().unwrap();
        assert!(r.stats.events_processed > 0);
        assert!(r.delivered > 0);
        assert_eq!(r.dataset.terminals.len(), 16);
    }

    #[test]
    fn placement_policy_runs_through_the_allocator() {
        let spec =
            tiny().placements([PlacementAxis::policy("contig", PlacementPolicy::Contiguous, 16)]);
        let r = spec.expand().unwrap()[0].execute().unwrap();
        // 16 ranks placed; the dataset still covers every terminal.
        assert_eq!(r.dataset.jobs.len(), 1);
        assert!(r.delivered > 0);
    }

    #[test]
    fn dragonfly_of_matches_paper_and_canonical_sizes() {
        assert_eq!(dragonfly_of(72).unwrap().num_terminals(), 72);
        assert_eq!(dragonfly_of(2_550).unwrap().num_terminals(), 2_550);
        assert!(dragonfly_of(1_234).is_err());
    }
}
