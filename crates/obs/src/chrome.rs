//! Chrome trace-event JSON export.
//!
//! Renders the collector's recent-span ring as the trace-event format
//! consumed by Perfetto and `chrome://tracing`: one `ph:"X"` (complete)
//! event per [`SpanRecord`], all under pid 1, with `"M"` metadata events
//! naming the process and every lane. Spans without an explicit lane land
//! on their thread's lane (named after the OS thread — e.g.
//! `hrviz-serve-0`); spans recorded with a lane (engine partitions, sweep
//! runs) get a synthetic tid starting at [`LANE_TID_BASE`] so the engine
//! timeline reads as one row per partition/run regardless of which rayon
//! worker produced it.
//!
//! Span ids and parent ids ride along in `args` — they are telemetry
//! identifiers only and never influence simulation state.
//!
//! This module is inside hrviz-lint's panic-freedom scope.

use std::io;
use std::path::Path;

use crate::collector::Collector;
use crate::json::Json;
use crate::recorder::{thread_names, SpanRecord};

/// First tid used for named (non-thread) lanes.
pub const LANE_TID_BASE: u64 = 1000;

/// Render `records` as a trace-event JSON document.
///
/// `names` maps small thread ids to display names (see
/// [`crate::recorder::thread_names`]); unnamed threads fall back to
/// `thread-<tid>`.
pub fn chrome_trace(records: &[SpanRecord], names: &[(u64, String)]) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(records.len() + 8);
    events.push(Json::obj([
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::U64(1)),
        ("args", Json::obj([("name", Json::Str("hrviz".into()))])),
    ]));

    let mut lanes: Vec<String> = Vec::new();
    let mut thread_tids: Vec<u64> = Vec::new();
    for rec in records {
        let tid = match &rec.lane {
            Some(lane) => {
                let idx = match lanes.iter().position(|l| l == lane) {
                    Some(i) => i,
                    None => {
                        lanes.push(lane.clone());
                        lanes.len() - 1
                    }
                };
                LANE_TID_BASE + idx as u64
            }
            None => {
                if !thread_tids.contains(&rec.tid) {
                    thread_tids.push(rec.tid);
                }
                rec.tid
            }
        };
        events.push(complete_event(rec, tid));
    }

    for tid in &thread_tids {
        let name = names
            .iter()
            .find(|(t, _)| t == tid)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("thread-{tid}"));
        events.push(thread_meta(*tid, &name));
    }
    for (i, lane) in lanes.iter().enumerate() {
        events.push(thread_meta(LANE_TID_BASE + i as u64, lane));
    }

    Json::obj([("traceEvents", Json::Arr(events)), ("displayTimeUnit", Json::Str("ms".into()))])
}

/// Write the trace for `records` to `path`, creating parent directories.
pub fn write_chrome_trace(
    path: &Path,
    records: &[SpanRecord],
    names: &[(u64, String)],
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut text = chrome_trace(records, names).render();
    text.push('\n');
    std::fs::write(path, text)
}

/// Export `collector`'s recent spans to `path`. Returns `false` (writing
/// nothing) when the collector is disabled.
pub fn export(collector: &Collector, path: &Path) -> io::Result<bool> {
    if !collector.is_enabled() {
        return Ok(false);
    }
    write_chrome_trace(path, &collector.recent_spans(), &thread_names())?;
    Ok(true)
}

fn complete_event(rec: &SpanRecord, tid: u64) -> Json {
    let mut args: Vec<(String, Json)> = Vec::with_capacity(rec.args.len() + 2);
    args.push(("id".into(), Json::U64(rec.id)));
    args.push(("parent".into(), Json::U64(rec.parent)));
    for (k, v) in &rec.args {
        args.push((k.clone(), v.clone()));
    }
    Json::obj([
        ("name", Json::Str(rec.label.clone())),
        ("cat", Json::Str(category(&rec.label).to_string())),
        ("ph", Json::Str("X".into())),
        ("ts", Json::U64(rec.start_us)),
        ("dur", Json::U64(rec.dur_us)),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(tid)),
        ("args", Json::Obj(args)),
    ])
}

fn thread_meta(tid: u64, name: &str) -> Json {
    Json::obj([
        ("name", Json::Str("thread_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(tid)),
        ("args", Json::obj([("name", Json::Str(name.to_string()))])),
    ])
}

/// The label's top-level prefix (`serve/request` → `serve`).
fn category(label: &str) -> &str {
    label.split('/').next().unwrap_or(label)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, tid: u64, lane: Option<&str>, label: &str) -> SpanRecord {
        SpanRecord {
            id,
            parent: 0,
            tid,
            lane: lane.map(str::to_string),
            label: label.into(),
            start_us: 10 * id,
            dur_us: 5,
            args: Vec::new(),
        }
    }

    #[test]
    fn trace_is_valid_and_parseable() {
        let records = [
            rec(1, 1, None, "serve/request"),
            rec(2, 1, None, "core/project"),
            rec(3, 2, Some("pdes/p0"), "pdes/window"),
        ];
        let names = [(1, "hrviz-serve-0".to_string())];
        let doc = chrome_trace(&records, &names);
        let parsed = Json::parse(&doc.render()).expect("chrome trace parses");
        let events = parsed.get("traceEvents").and_then(Json::as_array).expect("traceEvents");
        // 1 process meta + 3 spans + 1 thread meta (both thread spans
        // share tid 1; the lane span does not add a thread) + 1 lane meta.
        assert_eq!(events.len(), 6);
    }

    #[test]
    fn lanes_get_synthetic_tids_and_names() {
        let records = [rec(1, 3, Some("sweep/abc"), "sweep/exec")];
        let doc = chrome_trace(&records, &[]).render();
        assert!(doc.contains(&format!("\"tid\":{LANE_TID_BASE}")), "{doc}");
        assert!(doc.contains("\"sweep/abc\""), "{doc}");
        assert!(doc.contains("\"thread_name\""), "{doc}");
    }

    #[test]
    fn thread_lanes_fall_back_to_generic_names() {
        let records = [rec(1, 42, None, "x/y")];
        let doc = chrome_trace(&records, &[]).render();
        assert!(doc.contains("thread-42"), "{doc}");
        assert!(doc.contains("\"cat\":\"x\""), "{doc}");
    }

    #[test]
    fn export_skips_disabled_collectors() {
        let path = std::env::temp_dir().join("hrviz-chrome-disabled.json");
        let wrote = export(&Collector::disabled(), &path).expect("export");
        assert!(!wrote);
    }
}
