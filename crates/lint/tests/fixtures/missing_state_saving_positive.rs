// Fixture: an Lp impl that handles events without snapshot/restore
// overrides must be flagged (audit alone is not enough).
use hrviz_pdes::{Ctx, Lp};

pub struct Forgetful {
    credits: i64,
}

impl Lp<u32> for Forgetful {
    fn on_event(&mut self, _ctx: &mut Ctx<'_, u32>, payload: u32) {
        self.credits += payload as i64;
    }

    fn audit(&self) -> Result<(), String> {
        Ok(())
    }
}
