//! Live run telemetry over SSE: one tailer thread for every watcher.
//!
//! `GET /runs/{id}/stream` hands its socket to the [`StreamHub`] instead
//! of holding a worker: the worker writes the SSE preamble, registers a
//! [`Watcher`], and returns to the pool. A single hub thread then owns
//! every watcher socket, polling each run's `progress.json` watermark,
//! replaying sealed slices from the watcher's `since` cursor (`event:
//! slice`), and closing with a terminal `event: end` once the run stops
//! producing. Eight watchers on one run cost eight sockets and zero
//! additional threads.
//!
//! Slow or dead watchers are dropped by the socket write timeout the
//! accept loop already set — a stuck peer can delay only its own events,
//! never another watcher's, and never a request worker.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use hrviz_stream::{read_progress, read_slices};

/// How often the tailer thread re-checks every watcher's watermark.
const POLL: Duration = Duration::from_millis(25);
/// Poll rounds between `: hb` keep-alive comments on an idle watcher
/// (~2 s at [`POLL`]), so dead sockets surface between slices.
const HEARTBEAT_ROUNDS: u32 = 80;

/// One attached SSE client.
pub struct Watcher {
    /// The handed-over socket (write timeout already set).
    pub stream: TcpStream,
    /// Run id, echoed in the terminal event.
    pub run: String,
    /// The run directory holding `progress.json` + `slices/`.
    pub dir: PathBuf,
    /// Next slice sequence number to send (the `since` cursor).
    pub next_seq: u64,
    rounds_idle: u32,
}

impl Watcher {
    /// A watcher starting at slice `since`.
    pub fn new(stream: TcpStream, run: String, dir: PathBuf, since: u64) -> Watcher {
        Watcher { stream, run, dir, next_seq: since, rounds_idle: 0 }
    }
}

/// The response head an SSE hand-over writes before registering its
/// watcher: no `Content-Length` (the body is open-ended), explicitly
/// uncacheable, and `Connection: close` since the stream is the rest of
/// the connection's life.
pub const SSE_PREAMBLE: &str = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
     Cache-Control: no-store\r\nConnection: close\r\n\r\n";

/// Render one SSE frame.
pub fn sse_frame(event: &str, data: &str) -> String {
    format!("event: {event}\ndata: {data}\n\n")
}

/// The terminal frame for a run: its lifecycle state and final watermark.
pub fn end_frame(run: &str, state: &str, sealed: u64) -> String {
    sse_frame("end", &format!("{{\"run\":\"{run}\",\"state\":\"{state}\",\"sealed\":{sealed}}}"))
}

struct Shared {
    watchers: Mutex<Vec<Watcher>>,
    stop: AtomicBool,
}

/// Owns every SSE watcher; see the module docs.
pub struct StreamHub {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl Default for StreamHub {
    fn default() -> StreamHub {
        StreamHub::new()
    }
}

impl StreamHub {
    /// An empty hub; the tailer thread spawns on the first attach.
    pub fn new() -> StreamHub {
        StreamHub {
            shared: Arc::new(Shared {
                watchers: Mutex::new(Vec::new()),
                stop: AtomicBool::new(false),
            }),
            thread: Mutex::new(None),
        }
    }

    /// Register a watcher (the SSE preamble must already be on the wire)
    /// and make sure the tailer thread is running.
    pub fn attach(&self, watcher: Watcher) {
        hrviz_obs::get().counter_add("stream/sse_watchers", 1);
        self.shared.watchers.lock().unwrap_or_else(PoisonError::into_inner).push(watcher);
        let mut slot = self.thread.lock().unwrap_or_else(PoisonError::into_inner);
        let respawn = match slot.as_ref() {
            None => true,
            Some(handle) => handle.is_finished(),
        };
        if respawn && !self.shared.stop.load(Ordering::SeqCst) {
            let shared = Arc::clone(&self.shared);
            *slot = std::thread::Builder::new()
                .name("sse-tailer".into())
                // lint:allow(blocking_under_lock, reason="tail_loop runs on the spawned thread, not inside this lock region; spawn itself only allocates")
                .spawn(move || tail_loop(&shared))
                .ok();
        }
    }

    /// Watchers currently attached (drained ones are gone).
    pub fn watchers(&self) -> usize {
        self.shared.watchers.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Stop the tailer thread and close every remaining watcher socket.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let handle = self.thread.lock().unwrap_or_else(PoisonError::into_inner).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        self.shared.watchers.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }
}

impl Drop for StreamHub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The tailer thread: poll, replay, tail, close.
fn tail_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        let mut batch = {
            let mut guard = shared.watchers.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        let mut keep = Vec::with_capacity(batch.len());
        for watcher in batch.drain(..) {
            if let Some(watcher) = advance(watcher) {
                keep.push(watcher);
            }
        }
        shared.watchers.lock().unwrap_or_else(PoisonError::into_inner).append(&mut keep);
        std::thread::sleep(POLL);
    }
}

/// Send everything newly sealed to one watcher. `None` means the watcher
/// is finished (terminal event sent) or its socket is gone.
fn advance(mut w: Watcher) -> Option<Watcher> {
    let progress = match read_progress(&w.dir) {
        Ok(Some(p)) => p,
        // The watermark vanished or tore mid-read (quarantine, manual
        // deletion): nothing further to say, close the stream.
        Ok(None) | Err(_) => return None,
    };
    let obs = hrviz_obs::get();
    let mut sent = false;
    if progress.sealed > w.next_seq {
        let slices = match read_slices(&w.dir, w.next_seq) {
            Ok(s) => s,
            Err(_) => return None,
        };
        for slice in &slices {
            if w.stream.write_all(sse_frame("slice", &slice.to_json()).as_bytes()).is_err() {
                return None;
            }
            w.next_seq = slice.seq + 1;
            sent = true;
            obs.counter_add("stream/sse_events", 1);
        }
    }
    if progress.is_terminal() && w.next_seq >= progress.sealed {
        let frame = end_frame(&w.run, &progress.state, progress.sealed);
        let _ = w.stream.write_all(frame.as_bytes());
        obs.counter_add("stream/sse_events", 1);
        let _ = w.stream.shutdown(Shutdown::Both);
        return None;
    }
    if sent {
        w.rounds_idle = 0;
    } else {
        w.rounds_idle += 1;
        if w.rounds_idle >= HEARTBEAT_ROUNDS {
            w.rounds_idle = 0;
            // Comment frame: keeps intermediaries open and surfaces dead
            // sockets between slices.
            if w.stream.write_all(b": hb\n\n").is_err() {
                return None;
            }
        }
    }
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_sse_shaped() {
        assert_eq!(sse_frame("slice", "{\"seq\":0}"), "event: slice\ndata: {\"seq\":0}\n\n");
        let end = end_frame("00c0ffee00c0ffee", "completed", 7);
        assert_eq!(
            end,
            "event: end\ndata: {\"run\":\"00c0ffee00c0ffee\",\"state\":\"completed\",\"sealed\":7}\n\n"
        );
        assert!(SSE_PREAMBLE.ends_with("\r\n\r\n"));
        assert!(!SSE_PREAMBLE.contains("Content-Length"));
    }

    #[test]
    fn hub_starts_empty_and_shuts_down_idempotently() {
        let hub = StreamHub::new();
        assert_eq!(hub.watchers(), 0);
        hub.shutdown();
        hub.shutdown();
    }
}
