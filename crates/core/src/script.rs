//! Parser for projection-view scripts (paper §IV-B3, Fig. 5).
//!
//! The paper's script syntax is JavaScript-object-like, *not* JSON:
//! unquoted keys, trailing commas, single- or double-quoted strings. A
//! script is a comma-separated sequence of level objects:
//!
//! ```text
//! {
//!   filter: { group_id : [0, 8] },
//!   aggregate : "group_id",
//!   project : "router",
//!   vmap : { size : "global_traffic" },
//!   colors : ["white", "purple"]
//! },
//! {
//!   project : "terminal",
//!   aggregate : ["router_rank", "router_port"],
//!   vmap: { color : "workload", size : "data_size" },
//!   colors: ["green", "orange", "brown"],
//!   border: false
//! }
//! ```
//!
//! Extensions beyond the figures: a level may carry a `ribbons` object
//! (`{ project: "local_link", size: "traffic", color: "sat_time" }`) and
//! an `arc_weight` field name; both configure the view center.

use crate::entity::{EntityKind, Field};
use crate::spec::{FilterClause, LevelSpec, ProjectionSpec, RibbonSpec, SpecError};

/// A parsed script value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// null / missing.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Numeric literal.
    Num(f64),
    /// String (quoted or bare word).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

type PResult<T> = Result<T, SpecError>;

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src: src.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> SpecError {
        // Report a 1-based line number for the current position.
        let line =
            1 + self.src[..self.pos.min(self.src.len())].iter().filter(|&&c| c == b'\n').count();
        SpecError(format!("script parse error (line {line}): {msg}"))
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Line comments with //.
            if self.src[self.pos..].starts_with(b"//") {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> PResult<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn eat_if(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn word(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.' || c == b'#' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn quoted(&mut self, quote: u8) -> PResult<String> {
        self.pos += 1; // opening quote
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != quote {
            self.pos += 1;
        }
        if self.pos >= self.src.len() {
            return Err(self.err("unterminated string"));
        }
        let s = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.pos += 1; // closing quote
        Ok(s)
    }

    fn value(&mut self) -> PResult<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.quoted(b'"')?)),
            Some(b'\'') => Ok(Value::Str(self.quoted(b'\'')?)),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_digit()
                        || matches!(self.src[self.pos], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
                text.parse::<f64>().map(Value::Num).map_err(|_| self.err("bad number"))
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let w = self.word();
                Ok(match w.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    "null" => Value::Null,
                    _ => Value::Str(w), // bare word = string
                })
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> PResult<Value> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        loop {
            if self.eat_if(b'}') {
                break;
            }
            let key = match self.peek() {
                Some(b'"') => self.quoted(b'"')?,
                Some(b'\'') => self.quoted(b'\'')?,
                Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.word(),
                _ => return Err(self.err("expected an object key")),
            };
            self.eat(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            if !self.eat_if(b',') {
                self.eat(b'}')?;
                break;
            }
        }
        Ok(Value::Obj(pairs))
    }

    fn array(&mut self) -> PResult<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        loop {
            if self.eat_if(b']') {
                break;
            }
            items.push(self.value()?);
            if !self.eat_if(b',') {
                self.eat(b']')?;
                break;
            }
        }
        Ok(Value::Arr(items))
    }

    /// Top level: `[obj,...]` or `obj, obj, ...` or a single obj.
    fn script(&mut self) -> PResult<Vec<Value>> {
        if self.peek() == Some(b'[') {
            match self.array()? {
                Value::Arr(items) => return Ok(items),
                _ => unreachable!(),
            }
        }
        let mut objs = Vec::new();
        loop {
            objs.push(self.object()?);
            if !self.eat_if(b',') {
                break;
            }
            if self.peek().is_none() {
                break; // trailing comma
            }
        }
        self.skip_ws();
        if self.pos < self.src.len() {
            return Err(self.err("trailing garbage after script"));
        }
        Ok(objs)
    }
}

/// Parse raw script text into values (exposed for tooling/tests).
pub fn parse_values(src: &str) -> Result<Vec<Value>, SpecError> {
    Parser::new(src).script()
}

fn field_of(v: &Value, ctx: &str) -> Result<Field, SpecError> {
    let s = v.as_str().ok_or_else(|| SpecError(format!("{ctx}: expected a field name string")))?;
    Field::parse(s).ok_or_else(|| SpecError(format!("{ctx}: unknown field {s:?}")))
}

fn fields_of(v: &Value, ctx: &str) -> Result<Vec<Field>, SpecError> {
    match v {
        Value::Arr(items) => items.iter().map(|i| field_of(i, ctx)).collect(),
        other => Ok(vec![field_of(other, ctx)?]),
    }
}

fn colors_of(v: &Value, ctx: &str) -> Result<Vec<String>, SpecError> {
    match v {
        Value::Arr(items) => items
            .iter()
            .map(|i| {
                i.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| SpecError(format!("{ctx}: colors must be strings")))
            })
            .collect(),
        _ => Err(SpecError(format!("{ctx}: colors must be an array"))),
    }
}

fn decode_level(
    obj: &Value,
    idx: usize,
) -> Result<(LevelSpec, Option<RibbonSpec>, Option<Field>), SpecError> {
    let ctx = format!("level {idx}");
    let entity_name = obj
        .get("project")
        .and_then(Value::as_str)
        .ok_or_else(|| SpecError(format!("{ctx}: missing project")))?;
    let entity = EntityKind::parse(entity_name)
        .ok_or_else(|| SpecError(format!("{ctx}: unknown entity {entity_name:?}")))?;
    let mut level = LevelSpec::new(entity);

    if let Some(v) = obj.get("aggregate") {
        level.aggregate = fields_of(v, &format!("{ctx}.aggregate"))?;
    }
    if let Some(v) = obj.get("filter") {
        let Value::Obj(pairs) = v else {
            return Err(SpecError(format!("{ctx}.filter: expected an object")));
        };
        for (k, clause) in pairs {
            let field = Field::parse(k)
                .ok_or_else(|| SpecError(format!("{ctx}.filter: unknown field {k:?}")))?;
            let (min, max) = match clause {
                Value::Arr(range) if range.len() == 2 => {
                    let lo = range[0].as_num().ok_or_else(|| {
                        SpecError(format!("{ctx}.filter.{k}: range bounds must be numbers"))
                    })?;
                    let hi = range[1].as_num().ok_or_else(|| {
                        SpecError(format!("{ctx}.filter.{k}: range bounds must be numbers"))
                    })?;
                    (lo, hi)
                }
                Value::Num(n) => (*n, *n),
                _ => {
                    return Err(SpecError(format!(
                        "{ctx}.filter.{k}: expected [min, max] or a number"
                    )))
                }
            };
            level.filter.push(FilterClause { field, min, max });
        }
    }
    if let Some(v) = obj.get("maxBins").or_else(|| obj.get("max_bins")) {
        let n = v.as_num().ok_or_else(|| SpecError(format!("{ctx}.maxBins: expected a number")))?;
        level.max_bins = Some(n as usize);
    }
    if let Some(v) = obj.get("vmap") {
        let Value::Obj(pairs) = v else {
            return Err(SpecError(format!("{ctx}.vmap: expected an object")));
        };
        for (k, fv) in pairs {
            let f = field_of(fv, &format!("{ctx}.vmap.{k}"))?;
            match k.as_str() {
                "color" => level.vmap.color = Some(f),
                "size" => level.vmap.size = Some(f),
                "x" => level.vmap.x = Some(f),
                "y" => level.vmap.y = Some(f),
                other => return Err(SpecError(format!("{ctx}.vmap: unknown encoding {other:?}"))),
            }
        }
    }
    if let Some(v) = obj.get("colors") {
        let names = colors_of(v, &ctx)?;
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        level.colors = crate::color::ColorScale::from_names(&refs);
    }
    if let Some(Value::Bool(b)) = obj.get("border") {
        level.border = *b;
    }

    // Extensions: ribbons + arc weighting, allowed on any level object but
    // conventionally on the first.
    let mut ribbons = None;
    if let Some(r) = obj.get("ribbons") {
        let rctx = format!("{ctx}.ribbons");
        let ent = r
            .get("project")
            .and_then(Value::as_str)
            .and_then(EntityKind::parse)
            .ok_or_else(|| SpecError(format!("{rctx}: missing/unknown project")))?;
        let mut spec = RibbonSpec::new(ent);
        if let Some(v) = r.get("size") {
            spec.size = Some(field_of(v, &rctx)?);
        }
        if let Some(v) = r.get("color") {
            spec.color = Some(field_of(v, &rctx)?);
        }
        if let Some(v) = r.get("colors") {
            let names = colors_of(v, &rctx)?;
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            spec.colors = crate::color::ColorScale::from_names(&refs);
        }
        ribbons = Some(spec);
    }
    let arc_weight = match obj.get("arc_weight") {
        Some(v) => Some(field_of(v, &format!("{ctx}.arc_weight"))?),
        None => None,
    };

    Ok((level, ribbons, arc_weight))
}

/// Parse a complete projection script into a validated [`ProjectionSpec`].
pub fn parse_script(src: &str) -> Result<ProjectionSpec, SpecError> {
    let _span = hrviz_obs::get().span("core/parse_script");
    let objs = parse_values(src)?;
    if objs.is_empty() {
        return Err(SpecError("empty script".into()));
    }
    let mut levels = Vec::with_capacity(objs.len());
    let mut ribbons = None;
    let mut arc_weight = None;
    for (i, obj) in objs.iter().enumerate() {
        let (level, r, aw) = decode_level(obj, i)?;
        levels.push(level);
        ribbons = ribbons.or(r);
        arc_weight = arc_weight.or(aw);
    }
    let spec = ProjectionSpec { levels, ribbons, arc_weight };
    spec.validate()?;
    Ok(spec)
}

/// Serialize a [`ProjectionSpec`] back to script text (the paper's "save
/// the specification for analyzing another dataset or comparing between
/// datasets", §IV-B2). `parse_script(&to_script(&s))` reproduces `s`.
pub fn to_script(spec: &ProjectionSpec) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, lv) in spec.levels.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("{\n");
        let _ = writeln!(out, "  project : \"{}\",", lv.entity.name());
        if !lv.aggregate.is_empty() {
            let fields: Vec<String> =
                lv.aggregate.iter().map(|f| format!("\"{}\"", f.name())).collect();
            let _ = writeln!(out, "  aggregate : [{}],", fields.join(", "));
        }
        if !lv.filter.is_empty() {
            let clauses: Vec<String> = lv
                .filter
                .iter()
                .map(|c| format!("{} : [{}, {}]", c.field.name(), c.min, c.max))
                .collect();
            let _ = writeln!(out, "  filter : {{ {} }},", clauses.join(", "));
        }
        if let Some(cap) = lv.max_bins {
            let _ = writeln!(out, "  maxBins : {cap},");
        }
        let entries = lv.vmap.entries();
        if !entries.is_empty() {
            let maps: Vec<String> =
                entries.iter().map(|(e, f)| format!("{e} : \"{}\"", f.name())).collect();
            let _ = writeln!(out, "  vmap : {{ {} }},", maps.join(", "));
        }
        let stops: Vec<String> =
            (0..lv.colors.len()).map(|k| format!("\"{}\"", lv.colors.pick(k).hex())).collect();
        let _ = writeln!(out, "  colors : [{}],", stops.join(", "));
        if !lv.border {
            out.push_str("  border : false,\n");
        }
        if i == 0 {
            if let Some(r) = &spec.ribbons {
                let mut parts = vec![format!("project : \"{}\"", r.entity.name())];
                if let Some(f) = r.size {
                    parts.push(format!("size : \"{}\"", f.name()));
                }
                if let Some(f) = r.color {
                    parts.push(format!("color : \"{}\"", f.name()));
                }
                let rstops: Vec<String> = (0..r.colors.len())
                    .map(|k| format!("\"{}\"", r.colors.pick(k).hex()))
                    .collect();
                parts.push(format!("colors : [{}]", rstops.join(", ")));
                let _ = writeln!(out, "  ribbons : {{ {} }},", parts.join(", "));
            }
            if let Some(w) = spec.arc_weight {
                let _ = writeln!(out, "  arc_weight : \"{}\",", w.name());
            }
        }
        out.push('}');
    }
    out
}

/// The paper's Fig. 5(a) script, verbatim (with its ribbons made explicit).
pub const FIG5A_SCRIPT: &str = r#"
{
  aggregate : "group_id",
  maxBins : 8,
  project : "global_link",
  vmap : { color : "sat_time", size : "traffic" },
  colors : ["white", "purple"],
  ribbons : { project : "global_link", size : "traffic", color : "sat_time" }
},
{
  project : "router",
  aggregate : "router_rank",
  vmap : { color : "total_sat_time" },
  colors : ["white", "steelblue"],
},
{
  project : "terminal",
  aggregate : ["router_port", "workload"],
  vmap: { color : "workload", size : "avg_hops" },
  colors: ["green", "orange", "brown"],
}
"#;

/// The paper's Fig. 5(b) script, verbatim.
pub const FIG5B_SCRIPT: &str = r#"
{
  filter: { group_id : [0, 8] },
  aggregate : "group_id",
  project : "router",
  vmap : { size : "global_traffic" },
  colors : ["white", "purple"],
  ribbons : { project : "global_link", size : "traffic", color : "sat_time" }
},
{
  project : "local_link",
  aggregate : ["router_rank", "router_port"],
  filter: { group_id : [0, 8] },
  vmap : { color : "traffic", x : "router_rank", y : "router_port" },
  colors : ["white", "steelblue"],
},
{
  project : "terminal",
  aggregate : ["router_rank", "router_port"],
  filter: { group_id : [0, 8] },
  vmap: { color : "workload", size : "data_size", x : "router_rank", y : "router_port" },
  colors: ["green", "orange", "brown"],
  border: false
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PlotKind;

    #[test]
    fn parses_bare_words_numbers_strings() {
        let v = parse_values("{ a: foo, b: 3.5, c: 'x', d: \"y\", e: true, f: null }").unwrap();
        let obj = &v[0];
        assert_eq!(obj.get("a"), Some(&Value::Str("foo".into())));
        assert_eq!(obj.get("b"), Some(&Value::Num(3.5)));
        assert_eq!(obj.get("c"), Some(&Value::Str("x".into())));
        assert_eq!(obj.get("d"), Some(&Value::Str("y".into())));
        assert_eq!(obj.get("e"), Some(&Value::Bool(true)));
        assert_eq!(obj.get("f"), Some(&Value::Null));
    }

    #[test]
    fn tolerates_trailing_commas_and_comments() {
        let v = parse_values("{ a: [1, 2, 3,], }, // ring one\n{ b: 2, }").unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(
            v[0].get("a"),
            Some(&Value::Arr(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)]))
        );
    }

    #[test]
    fn fig5a_script_parses_to_expected_spec() {
        let spec = parse_script(FIG5A_SCRIPT).unwrap();
        assert_eq!(spec.levels.len(), 3);
        let l0 = &spec.levels[0];
        assert_eq!(l0.entity.name(), "global_link");
        assert_eq!(l0.aggregate, vec![crate::entity::Field::GroupId]);
        assert_eq!(l0.max_bins, Some(8));
        assert_eq!(l0.vmap.plot_kind(), PlotKind::Bar);
        let l2 = &spec.levels[2];
        assert_eq!(l2.aggregate.len(), 2);
        assert!(spec.ribbons.is_some());
    }

    #[test]
    fn fig5b_script_parses_with_filter_and_border() {
        let spec = parse_script(FIG5B_SCRIPT).unwrap();
        assert_eq!(spec.levels.len(), 3);
        let l0 = &spec.levels[0];
        assert_eq!(l0.filter.len(), 1);
        assert_eq!(l0.filter[0].min, 0.0);
        assert_eq!(l0.filter[0].max, 8.0);
        assert_eq!(spec.levels[1].vmap.plot_kind(), PlotKind::Heatmap2D);
        assert_eq!(spec.levels[2].vmap.plot_kind(), PlotKind::Scatter);
        assert!(!spec.levels[2].border);
        assert_eq!(spec.ribbons.as_ref().unwrap().entity.name(), "global_link");
    }

    #[test]
    fn error_reports_line_numbers() {
        let err = parse_script("{ project: \"terminal\" },\n{ project: }").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn unknown_field_and_entity_rejected() {
        let err = parse_script("{ project: \"flux_capacitor\" }").unwrap_err();
        assert!(err.to_string().contains("flux_capacitor"));
        let err = parse_script("{ project: \"terminal\", vmap: { color: \"warp\" } }").unwrap_err();
        assert!(err.to_string().contains("warp"));
        let err =
            parse_script("{ project: \"terminal\", vmap: { sparkle: \"traffic\" } }").unwrap_err();
        assert!(err.to_string().contains("sparkle"));
    }

    #[test]
    fn validation_runs_after_decode() {
        // avg_latency is not a router field: decoder accepts, validator rejects.
        let err =
            parse_script("{ project: \"router\", vmap: { color: \"avg_latency\" } }").unwrap_err();
        assert!(err.to_string().contains("router has no field"));
    }

    #[test]
    fn scalar_filter_becomes_point_range() {
        let spec = parse_script(
            "{ project: \"terminal\", filter: { workload: 2 }, vmap: { color: \"sat_time\" } }",
        )
        .unwrap();
        assert_eq!(spec.levels[0].filter[0].min, 2.0);
        assert_eq!(spec.levels[0].filter[0].max, 2.0);
    }

    #[test]
    fn array_wrapped_script_accepted() {
        let spec =
            parse_script("[ { project: \"terminal\", vmap: { color: \"sat_time\" } } ]").unwrap();
        assert_eq!(spec.levels.len(), 1);
    }

    #[test]
    fn to_script_roundtrips_fig5() {
        for src in [FIG5A_SCRIPT, FIG5B_SCRIPT] {
            let spec = parse_script(src).unwrap();
            let text = to_script(&spec);
            let re = parse_script(&text).unwrap_or_else(|e| panic!("{e}\n--- script:\n{text}"));
            assert_eq!(re.levels.len(), spec.levels.len());
            for (a, b) in re.levels.iter().zip(&spec.levels) {
                assert_eq!(a.entity, b.entity);
                assert_eq!(a.aggregate, b.aggregate);
                assert_eq!(a.filter, b.filter);
                assert_eq!(a.max_bins, b.max_bins);
                assert_eq!(a.vmap, b.vmap);
                assert_eq!(a.border, b.border);
            }
            assert_eq!(re.ribbons.is_some(), spec.ribbons.is_some());
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_script("").is_err());
        assert!(parse_script("{ project: \"terminal\" } extra").is_err());
        assert!(parse_script("{ project \"terminal\" }").is_err());
        assert!(parse_script("{ 'unterminated: 1 }").is_err());
    }
}
