//! Dragonfly connectivity arithmetic: id spaces, port layout, and the
//! global-channel wiring.
//!
//! Global channels use the standard "consecutive" allocation (as in CODES):
//! group `i`'s channel `c` (`c = rank·h + port`, `c ∈ 0..a·h = g−1` in the
//! balanced sizing) connects to group `(i + c + 1) mod g`, and the paired
//! reverse channel in that group is `c' = (g − c − 2) mod g`. Each ordered
//! group pair therefore has exactly one channel, and the wiring is an
//! involution (the channel you arrive on points back at the group you came
//! from).

use crate::config::DragonflyConfig;
use hrviz_pdes::LpId;

/// Terminal index, `0..num_terminals`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TerminalId(pub u32);

/// Router index, `0..num_routers`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RouterId(pub u32);

/// Group index, `0..groups`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GroupId(pub u32);

/// Topology helper bound to a concrete [`DragonflyConfig`].
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    cfg: DragonflyConfig,
}

impl Topology {
    /// Wrap a configuration.
    pub fn new(cfg: DragonflyConfig) -> Self {
        Topology { cfg }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &DragonflyConfig {
        &self.cfg
    }

    // ---- id space ---------------------------------------------------------

    /// The router a terminal is attached to.
    pub fn router_of_terminal(&self, t: TerminalId) -> RouterId {
        RouterId(t.0 / self.cfg.terminals_per_router)
    }

    /// The port (0-based, within the terminal port class) the terminal
    /// occupies on its router.
    pub fn terminal_port(&self, t: TerminalId) -> u32 {
        t.0 % self.cfg.terminals_per_router
    }

    /// The `k`-th terminal of a router.
    pub fn terminal_of(&self, r: RouterId, k: u32) -> TerminalId {
        debug_assert!(k < self.cfg.terminals_per_router);
        TerminalId(r.0 * self.cfg.terminals_per_router + k)
    }

    /// The group a router belongs to.
    pub fn group_of_router(&self, r: RouterId) -> GroupId {
        GroupId(r.0 / self.cfg.routers_per_group)
    }

    /// The router's rank within its group.
    pub fn rank_of_router(&self, r: RouterId) -> u32 {
        r.0 % self.cfg.routers_per_group
    }

    /// Router with `rank` in `group`.
    pub fn router_in_group(&self, g: GroupId, rank: u32) -> RouterId {
        debug_assert!(rank < self.cfg.routers_per_group);
        RouterId(g.0 * self.cfg.routers_per_group + rank)
    }

    // ---- LP layout --------------------------------------------------------
    // LPs 0..T are terminals; LPs T..T+R are routers.

    /// LP id of a terminal.
    pub fn terminal_lp(&self, t: TerminalId) -> LpId {
        LpId(t.0)
    }

    /// LP id of a router.
    pub fn router_lp(&self, r: RouterId) -> LpId {
        LpId(self.cfg.num_terminals() + r.0)
    }

    /// Total LPs in the simulation.
    pub fn num_lps(&self) -> u32 {
        self.cfg.num_terminals() + self.cfg.num_routers()
    }

    // ---- router port layout ----------------------------------------------
    // Out-port indices on every router:
    //   [0, p)            terminal (ejection) ports, one per attached terminal
    //   [p, p + a)        local ports, indexed by *peer rank* (own rank unused)
    //   [p + a, p + a + h) global ports
    //
    // Indexing local ports by peer rank (leaving the self slot empty) keeps
    // the arithmetic branch-free; the self slot is never enqueued to.

    /// Number of out ports on every router (including the unused self slot).
    pub fn ports_per_router(&self) -> u32 {
        self.cfg.terminals_per_router + self.cfg.routers_per_group + self.cfg.global_ports
    }

    /// Out-port index for ejecting to the router's `k`-th terminal.
    pub fn eject_port(&self, k: u32) -> u32 {
        debug_assert!(k < self.cfg.terminals_per_router);
        k
    }

    /// Out-port index for the local link to `peer_rank`.
    pub fn local_port(&self, peer_rank: u32) -> u32 {
        debug_assert!(peer_rank < self.cfg.routers_per_group);
        self.cfg.terminals_per_router + peer_rank
    }

    /// Out-port index for global port `gp` (`gp ∈ 0..h`).
    pub fn global_port(&self, gp: u32) -> u32 {
        debug_assert!(gp < self.cfg.global_ports);
        self.cfg.terminals_per_router + self.cfg.routers_per_group + gp
    }

    /// Classify an out-port index into (class, index-within-class).
    pub fn classify_port(&self, port: u32) -> (crate::config::LinkClass, u32) {
        use crate::config::LinkClass;
        let p = self.cfg.terminals_per_router;
        let a = self.cfg.routers_per_group;
        if port < p {
            (LinkClass::Terminal, port)
        } else if port < p + a {
            (LinkClass::Local, port - p)
        } else {
            (LinkClass::Global, port - p - a)
        }
    }

    // ---- global wiring ----------------------------------------------------

    /// Group-level channel index of (router rank, global port).
    pub fn channel_index(&self, rank: u32, gp: u32) -> u32 {
        rank * self.cfg.global_ports + gp
    }

    /// The group that channel `c` of group `g` connects to.
    pub fn channel_target_group(&self, g: GroupId, c: u32) -> GroupId {
        GroupId((g.0 + c + 1) % self.cfg.groups)
    }

    /// The channel index of the reverse direction of (`g`, `c`), i.e. the
    /// channel in the target group that points back at `g`.
    pub fn reverse_channel(&self, _g: GroupId, c: u32) -> u32 {
        (self.cfg.groups - c - 2) % self.cfg.groups
    }

    /// The channel of group `src` that reaches group `dst` (balanced sizing:
    /// exactly one per ordered pair). Panics if `src == dst`.
    pub fn channel_to_group(&self, src: GroupId, dst: GroupId) -> u32 {
        assert_ne!(src.0, dst.0, "no global channel within a group");
        (dst.0 + self.cfg.groups - src.0 - 1) % self.cfg.groups
    }

    /// The router (and its global port) owning channel `c` of a group.
    pub fn channel_owner(&self, g: GroupId, c: u32) -> (RouterId, u32) {
        let rank = c / self.cfg.global_ports;
        let gp = c % self.cfg.global_ports;
        (self.router_in_group(g, rank), gp)
    }

    /// Given a router and one of its global ports, the remote router and the
    /// remote global port the link lands on.
    pub fn global_peer(&self, r: RouterId, gp: u32) -> (RouterId, u32) {
        let g = self.group_of_router(r);
        let c = self.channel_index(self.rank_of_router(r), gp);
        let tg = self.channel_target_group(g, c);
        let rc = self.reverse_channel(g, c);
        self.channel_owner(tg, rc)
    }

    /// In group `src_group`, the router rank owning the channel to
    /// `dst_group` and the global port to use.
    pub fn gateway(&self, src_group: GroupId, dst_group: GroupId) -> (RouterId, u32) {
        let c = self.channel_to_group(src_group, dst_group);
        self.channel_owner(src_group, c)
    }

    /// Number of router-to-router hops on the minimal path from router
    /// `from` to terminal-owning router `to` (0 if equal).
    pub fn minimal_hops(&self, from: RouterId, to: RouterId) -> u32 {
        if from == to {
            return 0;
        }
        let gf = self.group_of_router(from);
        let gt = self.group_of_router(to);
        if gf == gt {
            return 1;
        }
        let (gw, gp) = self.gateway(gf, gt);
        let (lander, _) = self.global_peer(gw, gp);
        // hops = (from→gateway if needed) + global + (lander→to if needed)
        u32::from(from != gw) + 1 + u32::from(lander != to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn topo(h: u32) -> Topology {
        Topology::new(DragonflyConfig::canonical(h))
    }

    #[test]
    fn terminal_router_group_roundtrip() {
        let t = topo(3); // g=19, a=6, p=3
        let cfg = *t.config();
        for term in 0..cfg.num_terminals() {
            let tid = TerminalId(term);
            let r = t.router_of_terminal(tid);
            let k = t.terminal_port(tid);
            assert_eq!(t.terminal_of(r, k), tid);
            let g = t.group_of_router(r);
            let rank = t.rank_of_router(r);
            assert_eq!(t.router_in_group(g, rank), r);
        }
    }

    #[test]
    fn global_wiring_is_an_involution() {
        for h in 1..=5 {
            let t = topo(h);
            let cfg = *t.config();
            for r in 0..cfg.num_routers() {
                for gp in 0..cfg.global_ports {
                    let (pr, pgp) = t.global_peer(RouterId(r), gp);
                    let (back, bgp) = t.global_peer(pr, pgp);
                    assert_eq!(back, RouterId(r), "h={h} r={r} gp={gp}");
                    assert_eq!(bgp, gp);
                    // A global link never stays within the group.
                    assert_ne!(t.group_of_router(pr), t.group_of_router(RouterId(r)));
                }
            }
        }
    }

    #[test]
    fn every_group_pair_has_exactly_one_channel() {
        let t = topo(3);
        let g = t.config().groups;
        for src in 0..g {
            let mut seen = vec![0u32; g as usize];
            for c in 0..t.config().global_channels_per_group() {
                let tg = t.channel_target_group(GroupId(src), c);
                seen[tg.0 as usize] += 1;
            }
            for dst in 0..g {
                let expect = u32::from(dst != src);
                assert_eq!(seen[dst as usize], expect, "src={src} dst={dst}");
            }
        }
    }

    #[test]
    fn channel_to_group_inverts_target() {
        let t = topo(4);
        let g = t.config().groups;
        for src in 0..g {
            for dst in 0..g {
                if src == dst {
                    continue;
                }
                let c = t.channel_to_group(GroupId(src), GroupId(dst));
                assert_eq!(t.channel_target_group(GroupId(src), c), GroupId(dst));
            }
        }
    }

    #[test]
    fn gateway_reaches_destination_group() {
        let t = topo(3);
        let g = t.config().groups;
        for src in 0..g {
            for dst in 0..g {
                if src == dst {
                    continue;
                }
                let (gw, gp) = t.gateway(GroupId(src), GroupId(dst));
                assert_eq!(t.group_of_router(gw), GroupId(src));
                let (lander, _) = t.global_peer(gw, gp);
                assert_eq!(t.group_of_router(lander), GroupId(dst));
            }
        }
    }

    #[test]
    fn port_layout_partitions_cleanly() {
        let t = topo(3);
        let cfg = *t.config();
        use crate::config::LinkClass;
        let mut counts = [0u32; 3];
        for port in 0..t.ports_per_router() {
            let (class, idx) = t.classify_port(port);
            match class {
                LinkClass::Terminal => {
                    assert_eq!(t.eject_port(idx), port);
                    counts[0] += 1;
                }
                LinkClass::Local => {
                    assert_eq!(t.local_port(idx), port);
                    counts[1] += 1;
                }
                LinkClass::Global => {
                    assert_eq!(t.global_port(idx), port);
                    counts[2] += 1;
                }
            }
        }
        assert_eq!(counts, [cfg.terminals_per_router, cfg.routers_per_group, cfg.global_ports]);
    }

    #[test]
    fn minimal_hops_bounds() {
        let t = topo(3);
        let cfg = *t.config();
        for from in (0..cfg.num_routers()).step_by(7) {
            for to in (0..cfg.num_routers()).step_by(5) {
                let hops = t.minimal_hops(RouterId(from), RouterId(to));
                if from == to {
                    assert_eq!(hops, 0);
                } else if t.group_of_router(RouterId(from)) == t.group_of_router(RouterId(to)) {
                    assert_eq!(hops, 1);
                } else {
                    assert!((1..=3).contains(&hops), "{from}->{to} = {hops}");
                }
            }
        }
    }

    #[test]
    fn lp_layout_is_dense() {
        let t = topo(2);
        let cfg = *t.config();
        assert_eq!(t.terminal_lp(TerminalId(0)).0, 0);
        assert_eq!(t.router_lp(RouterId(0)).0, cfg.num_terminals());
        assert_eq!(t.num_lps(), cfg.num_terminals() + cfg.num_routers());
    }

    proptest! {
        #[test]
        fn prop_global_involution(h in 1u32..6, seed in 0u32..10_000) {
            let t = topo(h);
            let cfg = *t.config();
            let r = RouterId(seed % cfg.num_routers());
            let gp = seed % cfg.global_ports;
            let (pr, pgp) = t.global_peer(r, gp);
            let (back, bgp) = t.global_peer(pr, pgp);
            prop_assert_eq!(back, r);
            prop_assert_eq!(bgp, gp);
        }
    }
}
