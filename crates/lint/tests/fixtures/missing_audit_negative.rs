// Fixture: an audit + snapshot/restore override, stacked reasoned
// suppressions, and test-only Lp impls must all pass.
use hrviz_pdes::{Ctx, Lp, SnapshotError, WireReader, WireWriter};

pub struct Counted {
    credits: i64,
}

impl Lp<u32> for Counted {
    fn on_event(&mut self, _ctx: &mut Ctx<'_, u32>, payload: u32) {
        self.credits += payload as i64;
    }

    fn audit(&self) -> Result<(), String> {
        if self.credits == 0 {
            Ok(())
        } else {
            Err(format!("{} credits leaked", self.credits))
        }
    }

    fn snapshot(&self, w: &mut WireWriter) -> Result<(), SnapshotError> {
        w.write_i64(self.credits);
        Ok(())
    }

    fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), SnapshotError> {
        self.credits = r.read_i64()?;
        Ok(())
    }
}

pub struct Stateless;

// lint:allow(missing_audit, reason="stateless relay: holds no credits or in-flight packets")
// lint:allow(missing_state_saving, reason="stateless relay: nothing to snapshot, restore is a no-op")
impl Lp<u32> for Stateless {
    fn on_event(&mut self, _ctx: &mut Ctx<'_, u32>, _payload: u32) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestLp;

    impl Lp<()> for TestLp {
        fn on_event(&mut self, _ctx: &mut Ctx<'_, ()>, _payload: ()) {}
    }
}
