//! Entity kinds and fields — the vocabulary of the entity tree (paper
//! Fig. 2a) and of projection-view scripts (Fig. 5).
//!
//! Every entity row exposes its attributes and performance metrics as
//! `f64` through [`Field`]; scripts reference fields by the same snake_case
//! names the paper uses (`group_id`, `router_rank`, `sat_time`,
//! `workload`, …).

use std::fmt;

/// The entity types of a Dragonfly performance dataset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EntityKind {
    /// Routers (aggregate records).
    Router,
    /// Intra-group router-to-router links.
    LocalLink,
    /// Inter-group links.
    GlobalLink,
    /// Terminals (with their terminal-link metrics).
    Terminal,
}

impl EntityKind {
    /// All kinds.
    pub const ALL: [EntityKind; 4] =
        [EntityKind::Router, EntityKind::LocalLink, EntityKind::GlobalLink, EntityKind::Terminal];

    /// Script name (`project: "local_link"`).
    pub fn name(&self) -> &'static str {
        match self {
            EntityKind::Router => "router",
            EntityKind::LocalLink => "local_link",
            EntityKind::GlobalLink => "global_link",
            EntityKind::Terminal => "terminal",
        }
    }

    /// Parse a script name.
    pub fn parse(s: &str) -> Option<EntityKind> {
        match s {
            "router" | "routers" => Some(EntityKind::Router),
            "local_link" | "local_links" => Some(EntityKind::LocalLink),
            "global_link" | "global_links" => Some(EntityKind::GlobalLink),
            "terminal" | "terminals" => Some(EntityKind::Terminal),
            _ => None,
        }
    }
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A field (attribute or metric) of an entity row.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Field {
    // --- structural attributes ---
    /// Group id (source side for links).
    GroupId,
    /// Router id (source side for links; owning router for terminals).
    RouterId,
    /// Router rank within its group.
    RouterRank,
    /// Port index within the link class (links: source port; terminals:
    /// their port on the router).
    RouterPort,
    /// Terminal id.
    TerminalId,
    /// Job/workload index (terminals: their job; links & routers: the job
    /// dominating the source router's terminals; proxies get the index one
    /// past the last job).
    Workload,
    /// Destination group id (links).
    DstGroupId,
    /// Destination router id (links).
    DstRouterId,
    /// Destination router rank (links).
    DstRouterRank,
    /// Destination port (links).
    DstRouterPort,
    /// Destination-side workload (links).
    DstWorkload,
    // --- metrics ---
    /// Bytes carried (links) / bytes injected (terminals).
    Traffic,
    /// Saturation time in ns.
    SatTime,
    /// Terminal: workload bytes injected ("Data size").
    DataSize,
    /// Terminal: bytes received.
    RecvBytes,
    /// Terminal: injection-link busy time (ns).
    BusyTime,
    /// Terminal: packets received.
    PacketsFinished,
    /// Terminal: packets sent.
    PacketsSent,
    /// Terminal: mean packet latency (ns).
    AvgLatency,
    /// Terminal: mean hop count.
    AvgHops,
    /// Router: bytes on outgoing global links.
    GlobalTraffic,
    /// Router: saturation ns on outgoing global links.
    GlobalSatTime,
    /// Router: bytes on outgoing local links.
    LocalTraffic,
    /// Router: saturation ns on outgoing local links.
    LocalSatTime,
    /// Router: global + local traffic.
    TotalTraffic,
    /// Router: global + local saturation ns.
    TotalSatTime,
}

/// How values aggregate when rows merge (paper §IV-A: "sum is used for
/// most performance metrics, except the average value is used for the
/// metric of average hop count and packet latency").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggRule {
    /// Sum member values.
    Sum,
    /// Mean of member values.
    Mean,
    /// Group key / identity (structural attributes).
    Key,
}

impl Field {
    /// Script name.
    pub fn name(&self) -> &'static str {
        match self {
            Field::GroupId => "group_id",
            Field::RouterId => "router_id",
            Field::RouterRank => "router_rank",
            Field::RouterPort => "router_port",
            Field::TerminalId => "terminal_id",
            Field::Workload => "workload",
            Field::DstGroupId => "dst_group_id",
            Field::DstRouterId => "dst_router_id",
            Field::DstRouterRank => "dst_router_rank",
            Field::DstRouterPort => "dst_router_port",
            Field::DstWorkload => "dst_workload",
            Field::Traffic => "traffic",
            Field::SatTime => "sat_time",
            Field::DataSize => "data_size",
            Field::RecvBytes => "recv_bytes",
            Field::BusyTime => "busy_time",
            Field::PacketsFinished => "packets_finished",
            Field::PacketsSent => "packets_sent",
            Field::AvgLatency => "avg_latency",
            Field::AvgHops => "avg_hops",
            Field::GlobalTraffic => "global_traffic",
            Field::GlobalSatTime => "global_sat_time",
            Field::LocalTraffic => "local_traffic",
            Field::LocalSatTime => "local_sat_time",
            Field::TotalTraffic => "total_traffic",
            Field::TotalSatTime => "total_sat_time",
        }
    }

    /// Parse a script name (several paper aliases accepted).
    pub fn parse(s: &str) -> Option<Field> {
        Some(match s {
            "group_id" | "group" => Field::GroupId,
            "router_id" | "router" => Field::RouterId,
            "router_rank" | "rank" => Field::RouterRank,
            "router_port" | "port" => Field::RouterPort,
            "terminal_id" | "terminal" => Field::TerminalId,
            "workload" | "job" | "job_id" => Field::Workload,
            "dst_group_id" | "dst_group" => Field::DstGroupId,
            "dst_router_id" | "dst_router" => Field::DstRouterId,
            "dst_router_rank" | "dst_rank" => Field::DstRouterRank,
            "dst_router_port" | "dst_port" => Field::DstRouterPort,
            "dst_workload" | "dst_job" => Field::DstWorkload,
            "traffic" => Field::Traffic,
            "sat_time" | "saturation" | "saturation_time" => Field::SatTime,
            "data_size" => Field::DataSize,
            "recv_bytes" => Field::RecvBytes,
            "busy_time" => Field::BusyTime,
            "packets_finished" | "packet_finished" => Field::PacketsFinished,
            "packets_sent" => Field::PacketsSent,
            "avg_latency" | "avg_packet_latency" | "avg_package_latency" => Field::AvgLatency,
            "avg_hops" | "avg_hop_count" => Field::AvgHops,
            "global_traffic" | "total_global_traffic" => Field::GlobalTraffic,
            "global_sat_time" | "total_global_sat_time" => Field::GlobalSatTime,
            "local_traffic" | "total_local_traffic" => Field::LocalTraffic,
            "local_sat_time" | "total_local_sat_time" => Field::LocalSatTime,
            "total_traffic" => Field::TotalTraffic,
            "total_sat_time" => Field::TotalSatTime,
            _ => return None,
        })
    }

    /// Aggregation rule for this field.
    pub fn rule(&self) -> AggRule {
        use Field::*;
        match self {
            AvgLatency | AvgHops => AggRule::Mean,
            Traffic | SatTime | DataSize | RecvBytes | BusyTime | PacketsFinished | PacketsSent
            | GlobalTraffic | GlobalSatTime | LocalTraffic | LocalSatTime | TotalTraffic
            | TotalSatTime => AggRule::Sum,
            _ => AggRule::Key,
        }
    }

    /// Whether the field is a structural attribute (vs a metric).
    pub fn is_attribute(&self) -> bool {
        self.rule() == AggRule::Key
    }

    /// For link bundling: the destination-side counterpart of a
    /// source-side attribute.
    pub fn dst_counterpart(&self) -> Option<Field> {
        Some(match self {
            Field::GroupId => Field::DstGroupId,
            Field::RouterId => Field::DstRouterId,
            Field::RouterRank => Field::DstRouterRank,
            Field::RouterPort => Field::DstRouterPort,
            Field::Workload => Field::DstWorkload,
            _ => return None,
        })
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_names_roundtrip() {
        for k in EntityKind::ALL {
            assert_eq!(EntityKind::parse(k.name()), Some(k));
        }
        assert_eq!(EntityKind::parse("nope"), None);
    }

    #[test]
    fn field_names_roundtrip() {
        let fields = [
            Field::GroupId,
            Field::RouterRank,
            Field::Workload,
            Field::Traffic,
            Field::SatTime,
            Field::AvgLatency,
            Field::TotalSatTime,
            Field::DstWorkload,
        ];
        for f in fields {
            assert_eq!(Field::parse(f.name()), Some(f), "{f}");
        }
        assert_eq!(Field::parse("no_such_field"), None);
    }

    #[test]
    fn paper_aliases_parse() {
        assert_eq!(Field::parse("avg_package_latency"), Some(Field::AvgLatency));
        assert_eq!(Field::parse("job"), Some(Field::Workload));
        assert_eq!(Field::parse("saturation"), Some(Field::SatTime));
    }

    #[test]
    fn rules_match_paper() {
        assert_eq!(Field::AvgLatency.rule(), AggRule::Mean);
        assert_eq!(Field::AvgHops.rule(), AggRule::Mean);
        assert_eq!(Field::Traffic.rule(), AggRule::Sum);
        assert_eq!(Field::GroupId.rule(), AggRule::Key);
        assert!(Field::RouterRank.is_attribute());
        assert!(!Field::SatTime.is_attribute());
    }

    #[test]
    fn dst_counterparts() {
        assert_eq!(Field::GroupId.dst_counterpart(), Some(Field::DstGroupId));
        assert_eq!(Field::Workload.dst_counterpart(), Some(Field::DstWorkload));
        assert_eq!(Field::Traffic.dst_counterpart(), None);
    }
}
