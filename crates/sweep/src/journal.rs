//! Persisted sweep journals.
//!
//! One journal file per sweep, `<store>/sweeps/<sweep-id>.json`, written
//! atomically on every run-state transition. The journal is *advisory*:
//! run manifests are the source of truth for lifecycle state, and a stale
//! journal (crash between a run's manifest write and the journal write)
//! only costs `--resume` a redundant health check, never correctness. Its
//! `attempts` counters are what seed the deterministic retry backoff.
//!
//! The format has no wall-clock fields, but attempt counters legitimately
//! differ between an interrupted-then-resumed sweep and an uninterrupted
//! one — byte-identity guarantees for the store therefore cover run
//! directories and `GENERATION`, not `sweeps/`.

use std::collections::BTreeMap;
use std::path::PathBuf;

use hrviz_faults::json::{self, Value};
use hrviz_faults::HrvizError;
use hrviz_obs::Json;

use crate::store::{RunState, RunStore};

/// Per-run progress within one sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Last recorded lifecycle state.
    pub state: RunState,
    /// Simulation attempts so far (across crashes — this is what makes the
    /// resume backoff grow).
    pub attempts: u64,
}

/// The persisted progress of one sweep over a store.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepJournal {
    /// Deterministic sweep id (FNV-1a of name + grid run ids).
    pub sweep_id: String,
    /// Sweep name.
    pub name: String,
    /// The combined generation the store must reach once every entry
    /// completes (0 = no bump outstanding). Legacy single-counter intent;
    /// [`SweepJournal::pending_shards`] is the authoritative per-shard
    /// form. Recorded *before* any simulation so a crash landing exactly
    /// on a `GENERATION` write leaves a visible intent: the next sweep
    /// over this grid finishes the bump instead of silently keeping the
    /// stale counter.
    pub pending_generation: u64,
    /// Per-shard bump intents: shard index → the generation that shard's
    /// counter must reach. Empty = no bump outstanding. Applied
    /// idempotently (absolute targets, not increments), so resume can
    /// re-apply after a crash between two shard bumps.
    pub pending_shards: BTreeMap<u32, u64>,
    /// Per-run entries, keyed (and serialized) by run id.
    pub entries: BTreeMap<String, JournalEntry>,
}

impl SweepJournal {
    /// An empty journal for `sweep_id`.
    pub fn new(sweep_id: impl Into<String>, name: impl Into<String>) -> SweepJournal {
        SweepJournal {
            sweep_id: sweep_id.into(),
            name: name.into(),
            pending_generation: 0,
            pending_shards: BTreeMap::new(),
            entries: BTreeMap::new(),
        }
    }

    /// The journal's path within `store`.
    pub fn path_in(store: &RunStore, sweep_id: &str) -> PathBuf {
        store.sweeps_dir().join(format!("{sweep_id}.json"))
    }

    /// Load the journal for `sweep_id`, if one exists. A missing *or*
    /// unparseable file yields `None` — manifests are the source of truth,
    /// so a damaged journal degrades to a fresh one instead of erroring.
    pub fn load(store: &RunStore, sweep_id: &str) -> Option<SweepJournal> {
        let text = std::fs::read_to_string(Self::path_in(store, sweep_id)).ok()?;
        Self::parse(&text).ok()
    }

    /// Persist atomically into `store`.
    pub fn persist(&self, store: &RunStore) -> Result<(), HrvizError> {
        let dir = store.sweeps_dir();
        std::fs::create_dir_all(&dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
        let path = Self::path_in(store, &self.sweep_id);
        store.write_atomic(&path, (self.to_json().render() + "\n").as_bytes(), true)
    }

    /// Record a state transition, optionally counting a new attempt.
    pub fn record(&mut self, run: &str, state: RunState, new_attempt: bool) {
        let e = self.entries.entry(run.to_string()).or_insert(JournalEntry { state, attempts: 0 });
        e.state = state;
        if new_attempt {
            e.attempts += 1;
        }
    }

    /// Attempts recorded so far for `run`.
    pub fn attempts(&self, run: &str) -> u64 {
        self.entries.get(run).map(|e| e.attempts).unwrap_or(0)
    }

    /// JSON form (deterministic: runs sorted, no wall-clock fields).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("sweep_id", Json::Str(self.sweep_id.clone())),
            ("name", Json::Str(self.name.clone())),
            ("pending_generation", Json::U64(self.pending_generation)),
            (
                "pending_shards",
                Json::Arr(
                    self.pending_shards
                        .iter()
                        .map(|(&shard, &generation)| {
                            Json::obj([
                                ("shard", Json::U64(u64::from(shard))),
                                ("generation", Json::U64(generation)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total", Json::U64(self.entries.len() as u64)),
            (
                "runs",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|(run, e)| {
                            Json::obj([
                                ("run", Json::Str(run.clone())),
                                ("state", Json::Str(e.state.name().to_string())),
                                ("attempts", Json::U64(e.attempts)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`SweepJournal::to_json`].
    pub fn parse(text: &str) -> Result<SweepJournal, String> {
        let v = json::parse(text)?;
        let s = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("journal missing string field {key:?}"))
        };
        let mut journal = SweepJournal::new(s("sweep_id")?, s("name")?);
        // Absent in journals written before the fields existed: no intent.
        journal.pending_generation =
            v.get("pending_generation").and_then(Value::as_u64).unwrap_or(0);
        if let Some(shards) = v.get("pending_shards").and_then(Value::as_arr) {
            for intent in shards {
                let shard = intent
                    .get("shard")
                    .and_then(Value::as_u64)
                    .ok_or("pending_shards entry missing shard")?;
                let generation = intent
                    .get("generation")
                    .and_then(Value::as_u64)
                    .ok_or("pending_shards entry missing generation")?;
                let shard =
                    u32::try_from(shard).map_err(|_| format!("shard index {shard} too large"))?;
                journal.pending_shards.insert(shard, generation);
            }
        }
        let runs = v.get("runs").and_then(Value::as_arr).ok_or("journal missing runs array")?;
        for entry in runs {
            let run = entry
                .get("run")
                .and_then(Value::as_str)
                .ok_or("journal entry missing run")?
                .to_string();
            let state_name =
                entry.get("state").and_then(Value::as_str).ok_or("journal entry missing state")?;
            let state = RunState::parse(state_name)
                .ok_or_else(|| format!("unknown journal state {state_name:?}"))?;
            let attempts = entry
                .get("attempts")
                .and_then(Value::as_u64)
                .ok_or("journal entry missing attempts")?;
            journal.entries.insert(run, JournalEntry { state, attempts });
        }
        Ok(journal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hrviz-sweep-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_round_trips_and_persists_atomically() {
        let root = tmp("roundtrip");
        let store = RunStore::open(&root).unwrap();
        let mut j = SweepJournal::new("abcd", "grid");
        j.record("00000000000000aa", RunState::Running, true);
        j.record("00000000000000aa", RunState::Completed, false);
        j.record("00000000000000bb", RunState::Failed, true);
        j.record("00000000000000bb", RunState::Failed, true);
        j.persist(&store).unwrap();
        let back = SweepJournal::load(&store, "abcd").unwrap();
        assert_eq!(back, j);
        assert_eq!(back.attempts("00000000000000bb"), 2);
        assert_eq!(back.attempts("00000000000000aa"), 1);
        assert_eq!(back.attempts("missing"), 0);
        // No stray tmp file after the atomic write.
        assert!(!SweepJournal::path_in(&store, "abcd.tmp").exists());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn damaged_journal_degrades_to_none() {
        let root = tmp("damaged");
        let store = RunStore::open(&root).unwrap();
        assert!(SweepJournal::load(&store, "nope").is_none());
        std::fs::create_dir_all(store.sweeps_dir()).unwrap();
        std::fs::write(SweepJournal::path_in(&store, "torn"), "{\"sweep_id\":").unwrap();
        assert!(SweepJournal::load(&store, "torn").is_none());
        let _ = std::fs::remove_dir_all(&root);
    }
}
