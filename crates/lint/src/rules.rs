//! The rule catalog and per-file checks.
//!
//! Six families, mirroring the contracts earlier PRs established:
//!
//! * **determinism** — scoped to the simulation crates (`pdes`,
//!   `network`, `fattree`, `workloads`, `faults`, `sweep`): byte-identical
//!   replay is the foundation every comparison view stands on, so nothing
//!   order-sensitive (hash-map iteration, wall-clock reads, ambient RNG,
//!   unordered parallel float reductions) may reach simulation state.
//! * **panic-freedom** — scoped to the error boundary plus the engine and
//!   render hot paths (`cli`, `faults`, `serve`, `pdes`, `render`, the
//!   linter itself, the `network`/`fattree` config paths and the obs
//!   exporters): user input must surface as `HrvizError` or an HTTP
//!   error, never a panic. The indexing rule is syntax-aware: indexing a
//!   const-sized array in bounds, or an index the function already
//!   compared against `.len()`, is allowed.
//! * **concurrency** — workspace-wide: the token-tree lock pass in
//!   [`crate::locks`] flags nested-lock cycles and blocking calls under a
//!   live guard.
//! * **telemetry** — workspace-wide: the counter-drift audit in
//!   [`crate::counters`] keeps write sites, the `hrviz_obs::METRICS`
//!   manifest and DESIGN.md's telemetry table identical.
//! * **invariants** — workspace-wide: every `Lp` impl must override
//!   `audit`, and every `Lp` impl that handles events must override
//!   `snapshot`/`restore` (the Time Warp prerequisite).
//! * **meta** — malformed suppressions, stale baseline entries and
//!   baseline debt itself.

use crate::source::{find, SourceFile};
use crate::tokens::{TokKind, TokenFile};
use std::collections::BTreeMap;

/// One rule's identity and documentation.
pub struct RuleInfo {
    /// Stable id used in diagnostics, suppressions and the baseline.
    pub id: &'static str,
    /// Rule family.
    pub family: &'static str,
    /// One-line description for `--list-rules` and the README catalog.
    pub desc: &'static str,
}

/// The full catalog. `bad_suppression`, `stale_baseline` and
/// `baseline_debt` are meta-rules: they police the escape hatches and can
/// be neither suppressed nor baselined.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "hash_collections",
        family: "determinism",
        desc: "no HashMap/HashSet in sim-crate non-test code (iteration order is unseeded); \
               use BTreeMap/BTreeSet or sort before iterating",
    },
    RuleInfo {
        id: "wall_clock",
        family: "determinism",
        desc: "no std::time::Instant/SystemTime in sim-crate non-test code; wall-clock reads \
               make replays diverge (telemetry-only uses need lint:allow with a reason)",
    },
    RuleInfo {
        id: "ambient_rng",
        family: "determinism",
        desc: "no thread_rng/OsRng/from_entropy/rand::random in sim-crate non-test code; all \
               randomness must flow from the run's seed",
    },
    RuleInfo {
        id: "unordered_float_reduction",
        family: "determinism",
        desc: "no .sum()/.reduce()/.fold()/.product() on a par_iter chain in sim crates; \
               float addition is not associative, so reduce sequentially or over sorted parts",
    },
    RuleInfo {
        id: "panic_unwrap",
        family: "panic",
        desc: "no unwrap/expect/panic!/unreachable!/todo! in the panic-free scope (cli, \
               faults, serve, pdes, render, lint, config paths, obs exporters); return \
               HrvizError instead",
    },
    RuleInfo {
        id: "slice_index",
        family: "panic",
        desc: "no unproven slice/array indexing in the panic-free scope; const-bounded and \
               len-guarded indexing pass, everything else uses .get() and surfaces HrvizError",
    },
    RuleInfo {
        id: "lock_order_cycle",
        family: "concurrency",
        desc: "lock acquisition order must be acyclic across the workspace, and no lock may \
               be re-acquired while its own guard is live (std locks are non-reentrant)",
    },
    RuleInfo {
        id: "blocking_under_lock",
        family: "concurrency",
        desc: "no file I/O, fsync, socket accept/connect, channel recv, pool submit or sleep \
               while a Mutex/RwLock guard is live (directly or through a same-file callee)",
    },
    RuleInfo {
        id: "counter_drift",
        family: "telemetry",
        desc: "every metric written must be registered in hrviz_obs::METRICS and documented \
               in DESIGN.md's telemetry table, and vice versa; names must be string literals",
    },
    RuleInfo {
        id: "missing_audit",
        family: "invariant",
        desc: "every Lp impl must override audit() (conservation checks the watchdog engine \
               runs post-drain) or carry lint:allow(missing_audit, reason=…)",
    },
    RuleInfo {
        id: "missing_state_saving",
        family: "invariant",
        desc: "every Lp impl that handles events (overrides on_event) must override \
               snapshot() and restore(): the Time Warp rollback prerequisite",
    },
    RuleInfo {
        id: "bad_suppression",
        family: "meta",
        desc: "every lint:allow must name a known rule and carry a non-empty reason=\"…\"",
    },
    RuleInfo {
        id: "stale_baseline",
        family: "meta",
        desc: "baseline entries whose code is gone must be deleted (run --fix-baseline)",
    },
    RuleInfo {
        id: "baseline_debt",
        family: "meta",
        desc: "the baseline must be empty: fix the finding or carry an inline \
               lint:allow(rule, reason=…) at the site",
    },
];

/// Look a rule up by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (one of [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Trimmed source line (also the baseline matching key).
    pub snippet: String,
    /// Human explanation.
    pub message: String,
    /// Set by baseline application: grandfathered, does not fail --check.
    pub baselined: bool,
}

/// Crates whose non-test code must be deterministic.
const SIM_CRATES: &[&str] =
    &["pdes", "network", "fattree", "workloads", "faults", "sweep", "stream"];

/// The crate a workspace-relative path belongs to (`crates/pdes/…` →
/// `pdes`; the root `src/` is the `hrviz` facade).
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or(if path.starts_with("src/") { "hrviz" } else { "" })
}

fn in_sim_scope(path: &str) -> bool {
    SIM_CRATES.contains(&crate_of(path))
}

/// The panic-free scope: the error-boundary crates (`cli`, `faults`,
/// `serve`), the engine and render hot paths (`pdes`, `render` — a panic
/// there takes a whole sweep or request down), the linter itself (the
/// self-check CI job), the config (user-input) paths of the two topology
/// crates, and the obs exporter/ring-buffer modules invoked from failure
/// handlers.
fn in_panic_scope(path: &str) -> bool {
    matches!(crate_of(path), "cli" | "faults" | "serve" | "pdes" | "render" | "lint")
        || path == "crates/network/src/config.rs"
        || path == "crates/fattree/src/config.rs"
        // The observability exporters run inside failure handlers
        // (watchdog trips, worker panics): they must not panic there.
        || path == "crates/obs/src/chrome.rs"
        || path == "crates/obs/src/recorder.rs"
        || path == "crates/obs/src/prom.rs"
}

/// Run the path-scoped token/lexical rules over one file. The lock and
/// counter passes live in their own modules; [`crate::analyze_file`]
/// composes all three.
pub fn check_file(f: &SourceFile, tf: &TokenFile) -> Vec<Finding> {
    let mut out = Vec::new();
    if in_sim_scope(&f.path) {
        ident_rule(f, "hash_collections", &["HashMap", "HashSet"], &mut out, |w| {
            format!("{w} in simulation code: iteration order is unseeded and varies per run")
        });
        ident_rule(f, "wall_clock", &["Instant", "SystemTime"], &mut out, |w| {
            format!("std::time::{w} in simulation code: wall-clock reads break replay")
        });
        ident_rule(
            f,
            "ambient_rng",
            &["thread_rng", "ThreadRng", "OsRng", "from_entropy", "entropy_rng"],
            &mut out,
            |w| format!("{w} in simulation code: randomness must flow from the run seed"),
        );
        float_reduction_rule(f, &mut out);
    }
    if in_panic_scope(&f.path) {
        panic_rule(f, &mut out);
        // The linter itself is unwrap-free but exempt from the index
        // audit: its token arrays (`toks`, `match_of`) are same-length by
        // construction and indices flow through the delimiter matcher,
        // an invariant the rule's local proof shapes cannot express.
        if crate_of(&f.path) != "lint" {
            slice_index_rule(f, tf, &mut out);
        }
    }
    lp_contract_rules(f, tf, &mut out);
    bad_suppression_rule(f, &mut out);
    out
}

/// Emit a finding unless the line is test code or carries a suppression.
fn emit(f: &SourceFile, rule: &'static str, at: usize, message: String, out: &mut Vec<Finding>) {
    let line = f.line_of(at);
    if f.is_test_line(line) || f.suppressed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        file: f.path.clone(),
        line,
        snippet: f.line_text(line).to_string(),
        message,
        baselined: false,
    });
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Every word-boundary occurrence of `word` in the masked text.
fn ident_occurrences(f: &SourceFile, word: &str) -> Vec<usize> {
    let (hay, pat) = (&f.masked, word.as_bytes());
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(at) = find(hay, pat, from) {
        from = at + 1;
        let before_ok = at == 0 || !is_ident(hay[at - 1]);
        let after_ok = at + pat.len() >= hay.len() || !is_ident(hay[at + pat.len()]);
        if before_ok && after_ok {
            hits.push(at);
        }
    }
    hits
}

fn ident_rule(
    f: &SourceFile,
    rule: &'static str,
    words: &[&str],
    out: &mut Vec<Finding>,
    msg: impl Fn(&str) -> String,
) {
    for word in words {
        for at in ident_occurrences(f, word) {
            emit(f, rule, at, msg(word), out);
        }
    }
}

/// A `par_iter`-family call whose statement also contains a float-style
/// reduction combinator. The statement is approximated as "up to the next
/// `;`", which keeps closures from earlier statements out of the window.
fn float_reduction_rule(f: &SourceFile, out: &mut Vec<Finding>) {
    const SOURCES: &[&str] =
        &["par_iter", "par_iter_mut", "into_par_iter", "par_chunks", "par_bridge"];
    const SINKS: &[&[u8]] = &[b".sum(", b".product(", b".reduce(", b".fold("];
    for src in SOURCES {
        for at in ident_occurrences(f, src) {
            let end = f.masked[at..]
                .iter()
                .position(|&b| b == b';')
                .map(|p| at + p)
                .unwrap_or(f.masked.len());
            let span = &f.masked[at..end];
            if SINKS.iter().any(|sink| find(span, sink, 0).is_some()) {
                emit(
                    f,
                    "unordered_float_reduction",
                    at,
                    format!(
                        "{src} chain ends in a reduction: parallel float reduction order is \
                         nondeterministic; collect and reduce sequentially"
                    ),
                    out,
                );
            }
        }
    }
}

/// `.unwrap()`, `.expect(` and the panicking macros in the panic scope.
fn panic_rule(f: &SourceFile, out: &mut Vec<Finding>) {
    for pat in [".unwrap()", ".expect("] {
        let mut from = 0;
        while let Some(at) = find(&f.masked, pat.as_bytes(), from) {
            from = at + 1;
            emit(
                f,
                "panic_unwrap",
                at,
                format!("`{pat}` in panic-free code: return an HrvizError instead"),
                out,
            );
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for at in ident_occurrences(f, mac) {
            if f.masked.get(at + mac.len()) == Some(&b'!') {
                emit(
                    f,
                    "panic_unwrap",
                    at,
                    format!("`{mac}!` in panic-free code: return an HrvizError instead"),
                    out,
                );
            }
        }
    }
}

/// Keywords that may directly precede a `[`-group without it being an
/// index expression (`for x in [..]`, `return [..]`, `as [..]`, …).
const NOT_AN_EXPR: &[&str] = &[
    "in", "return", "break", "else", "match", "if", "while", "loop", "move", "mut", "ref", "as",
    "const", "static", "let", "dyn", "where", "yield", "box",
];

/// Syntax-aware indexing rule: `expr[…]` is flagged unless the function
/// proves the access in one of the recognised shapes:
///
/// * a numeric literal into a base declared `[T; N]` (or `&[T; N]`) in
///   the same function, with literal < N;
/// * a single-identifier index `i` where the function earlier compares
///   `i` against `base.len()` (directly, through `assert!`/`while`/`if`,
///   or via `let n = base.len()`), or iterates `for i in … base.len()` /
///   `for i in … n`;
/// * the full-range slice `[..]`, which cannot panic.
fn slice_index_rule(f: &SourceFile, tf: &TokenFile, out: &mut Vec<Finding>) {
    for (i, tok) in tf.toks.iter().enumerate() {
        if tok.kind != TokKind::Open(b'[') || i == 0 {
            continue;
        }
        let base = match tf.toks[i - 1].kind {
            TokKind::Ident => {
                let word = tf.text(f, i - 1);
                if NOT_AN_EXPR.contains(&word) {
                    continue;
                }
                Some(word.to_string())
            }
            TokKind::Close(b')') | TokKind::Close(b']') => None,
            _ => continue,
        };
        let close = tf.match_of[i];
        if close == usize::MAX {
            continue;
        }
        // The function this index lives in (innermost body containing it).
        let scope = tf
            .fns
            .iter()
            .filter_map(|fun| fun.body)
            .filter(|&(o, c)| o < i && i < c)
            .max_by_key(|&(o, _)| o);
        let inner = i + 1..close;
        if proves_in_bounds(f, tf, scope, base.as_deref(), inner, i) {
            continue;
        }
        emit(
            f,
            "slice_index",
            tok.start,
            "unproven indexing can panic on out-of-range input: guard the index against \
             .len(), use a const-sized array, or use .get() and surface an HrvizError"
                .to_string(),
            out,
        );
    }
}

/// Can the index expression `inner` into `base` be shown in-bounds from
/// the tokens of the enclosing function?
fn proves_in_bounds(
    f: &SourceFile,
    tf: &TokenFile,
    scope: Option<(usize, usize)>,
    base: Option<&str>,
    inner: std::ops::Range<usize>,
    open: usize,
) -> bool {
    let toks: Vec<usize> = inner.clone().collect();
    // `[..]` — full-range slices cannot panic.
    if toks.len() == 2 && tf.is_punct(toks[0], b'.') && tf.is_punct(toks[1], b'.') {
        return true;
    }
    let (Some((fn_open, fn_close)), Some(base)) = (scope, base) else {
        return false;
    };
    // The searchable window: the whole function (a guard after the index
    // proves nothing, but for-loop heads precede their bodies anyway, and
    // same-statement guards like `if i < v.len() { v[i] }` sit earlier in
    // token order too).
    let window = fn_open..=fn_close.min(tf.toks.len().saturating_sub(1));
    if toks.len() == 1 {
        let t = toks[0];
        match tf.toks[t].kind {
            TokKind::Num => {
                let lit: Option<usize> = tf.text(f, t).parse().ok();
                if let (Some(lit), Some(n)) = (lit, const_len_of(f, tf, window.clone(), base)) {
                    return lit < n;
                }
                false
            }
            TokKind::Ident => {
                let idx = tf.text(f, t);
                index_is_guarded(f, tf, window, base, idx, open)
            }
            _ => false,
        }
    } else {
        false
    }
}

/// `base: [T; N]` / `base: &[T; N]` declared in the function → `N`.
fn const_len_of(
    f: &SourceFile,
    tf: &TokenFile,
    window: std::ops::RangeInclusive<usize>,
    base: &str,
) -> Option<usize> {
    for i in window {
        if !tf.is_ident(f, i, base) || !tf.is_punct(i + 1, b':') || tf.is_punct(i + 2, b':') {
            continue;
        }
        let mut j = i + 2;
        while tf.is_punct(j, b'&')
            || matches!(tf.toks.get(j).map(|t| t.kind), Some(TokKind::Lifetime))
            || tf.is_ident(f, j, "mut")
        {
            j += 1;
        }
        let Some(t) = tf.toks.get(j) else { continue };
        if t.kind != TokKind::Open(b'[') {
            continue;
        }
        let close = tf.match_of[j];
        if close == usize::MAX {
            continue;
        }
        // The length is the last numeric token before the `]` (after `;`).
        let semi = (j + 1..close).rev().find(|&k| tf.is_punct(k, b';'))?;
        let num = (semi + 1..close).find(|&k| matches!(tf.toks[k].kind, TokKind::Num))?;
        if let Ok(n) = tf.text(f, num).parse() {
            return Some(n);
        }
    }
    None
}

/// Does the function compare `idx` against `base.len()` (or a recorded
/// `let n = base.len()` alias), or drive it from a `for idx in …` loop
/// bounded by them, before using it?
fn index_is_guarded(
    f: &SourceFile,
    tf: &TokenFile,
    window: std::ops::RangeInclusive<usize>,
    base: &str,
    idx: &str,
    _open: usize,
) -> bool {
    // Aliases: `let n = base.len()` (or `… = base.len().min(..)` — still a
    // bound on base).
    let mut aliases: Vec<String> = Vec::new();
    let (lo, hi) = (*window.start(), *window.end());
    let len_call_at = |k: usize| {
        tf.is_ident(f, k, base)
            && tf.is_method_dot(k + 1)
            && tf.is_ident(f, k + 2, "len")
            && matches!(tf.toks.get(k + 3).map(|t| t.kind), Some(TokKind::Open(b'(')))
    };
    for k in lo..hi.saturating_sub(4) {
        if tf.is_ident(f, k, "let")
            && matches!(tf.toks.get(k + 1).map(|t| t.kind), Some(TokKind::Ident))
            && tf.is_punct(k + 2, b'=')
            && len_call_at(k + 3)
        {
            aliases.push(tf.text(f, k + 1).to_string());
        }
    }
    let bound_at = |k: usize| -> bool {
        // `base.len()` at k, or an alias ident at k.
        len_call_at(k)
            || (matches!(tf.toks.get(k).map(|t| t.kind), Some(TokKind::Ident))
                && aliases.iter().any(|a| a == tf.text(f, k)))
    };
    for k in lo..hi {
        // `idx < bound` / `idx >= bound` (early-exit guard shape).
        if tf.is_ident(f, k, idx) {
            if tf.is_punct(k + 1, b'<') && !tf.is_punct(k + 2, b'=') && bound_at(k + 2) {
                return true;
            }
            if tf.is_punct(k + 1, b'>') && tf.is_punct(k + 2, b'=') && bound_at(k + 3) {
                return true;
            }
        }
        // `bound > idx`.
        if bound_at(k) {
            let after = if len_call_at(k) { k + 5 } else { k + 1 };
            if tf.is_punct(after, b'>')
                && !tf.is_punct(after + 1, b'=')
                && tf.is_ident(f, after + 1, idx)
            {
                return true;
            }
        }
        // `for idx in … bound` — the loop head ends at its `{`.
        if tf.is_ident(f, k, "for") && tf.is_ident(f, k + 1, idx) && tf.is_ident(f, k + 2, "in") {
            let mut j = k + 3;
            while j < hi && !matches!(tf.toks[j].kind, TokKind::Open(b'{')) {
                if bound_at(j) {
                    return true;
                }
                j += 1;
            }
        }
    }
    false
}

/// Both `Lp` contracts, from the impl blocks the token tree extracted:
/// every `impl Lp<…> for T` must override `audit`, and any that overrides
/// `on_event` must also override `snapshot` and `restore`.
fn lp_contract_rules(f: &SourceFile, tf: &TokenFile, out: &mut Vec<Finding>) {
    for im in &tf.impls {
        if im.trait_path.last().map(String::as_str) != Some("Lp") {
            continue;
        }
        let (open, close) = im.body;
        let has = |name: &str| {
            tf.fns.iter().any(|fun| fun.name == name && open < fun.kw && fun.kw < close)
        };
        let at = tf.toks[im.kw].start;
        if !has("audit") {
            emit(
                f,
                "missing_audit",
                at,
                "Lp impl without an audit() override: conservation invariants (credits, \
                 in-flight packets) go unchecked post-drain"
                    .to_string(),
                out,
            );
        }
        if has("on_event") && (!has("snapshot") || !has("restore")) {
            emit(
                f,
                "missing_state_saving",
                at,
                "Lp impl handles events but does not override snapshot()/restore(): \
                 checkpointing skips it silently and Time Warp rollback cannot ever \
                 include it"
                    .to_string(),
                out,
            );
        }
    }
}

/// Suppressions must name a known rule and carry a non-empty reason; the
/// meta-rules cannot be suppressed at all. Fires even on test lines: a
/// malformed allow is wrong anywhere.
fn bad_suppression_rule(f: &SourceFile, out: &mut Vec<Finding>) {
    for s in &f.suppressions {
        let known = rule(&s.rule).is_some();
        let meta = rule(&s.rule).is_some_and(|r| r.family == "meta");
        let reasoned = s.reason.as_deref().is_some_and(|r| !r.trim().is_empty());
        if known && reasoned && !meta {
            continue;
        }
        let message = if !known {
            format!("lint:allow names unknown rule `{}`", s.rule)
        } else if meta {
            format!("lint:allow({}) is not allowed: meta-rules cannot be suppressed", s.rule)
        } else {
            format!("lint:allow({}) is missing its mandatory reason=\"…\"", s.rule)
        };
        out.push(Finding {
            rule: "bad_suppression",
            file: f.path.clone(),
            line: s.line,
            snippet: f.line_text(s.line).to_string(),
            message,
            baselined: false,
        });
    }
}

/// For `--fix-baseline` reporting: findings per rule id.
pub fn count_by_rule(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for f in findings {
        *m.entry(f.rule).or_insert(0) += 1;
    }
    m
}
