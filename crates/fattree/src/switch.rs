//! Fat-Tree switch logical process, reusing the Dragonfly model's
//! credit-gated [`OutPort`]s and event vocabulary.

use crate::config::{FatTreeConfig, Layer, UpRouting};
use hrviz_faults::{FaultEvent, FaultView};
use hrviz_network::config::{LinkClass, LinkClassParams, SamplingConfig};
use hrviz_network::events::{CreditReturn, NetEvent};
use hrviz_network::packet::Packet;
use hrviz_network::port::{OutPort, PortAction};
use hrviz_network::DropCounters;
use hrviz_pdes::{Ctx, LpId, SimTime};

/// Per-class link parameters for the Fat Tree.
#[derive(Clone, Copy, Debug)]
pub struct FtLinks {
    /// Host ↔ edge.
    pub host: LinkClassParams,
    /// Edge ↔ aggregation (in pod).
    pub pod: LinkClassParams,
    /// Aggregation ↔ core.
    pub core: LinkClassParams,
}

impl Default for FtLinks {
    fn default() -> Self {
        FtLinks {
            host: LinkClassParams { bandwidth_bytes_per_ns: 5.25, latency: SimTime::nanos(30) },
            pod: LinkClassParams { bandwidth_bytes_per_ns: 5.25, latency: SimTime::nanos(50) },
            core: LinkClassParams { bandwidth_bytes_per_ns: 5.25, latency: SimTime::nanos(100) },
        }
    }
}

enum FtDrop {
    SwitchDown,
    NoRoute,
    Ttl,
}

/// One Fat-Tree switch.
#[derive(Debug)]
pub struct SwitchLp {
    /// Switch id (see [`FatTreeConfig`] id space).
    pub id: u32,
    cfg: FatTreeConfig,
    layer: Layer,
    /// Pod (edges/aggs) or 0 (cores).
    pod: u32,
    /// Index within the layer.
    idx: u32,
    my_lp: LpId,
    routing: UpRouting,
    ports: Vec<OutPort>,
    faults: FaultView,
    hop_limit: u8,
    drop_without_credit: bool,
    drops: DropCounters,
    reroutes: u64,
}

impl SwitchLp {
    /// Build the switch with its wired port complement.
    pub fn new(
        cfg: FatTreeConfig,
        id: u32,
        routing: UpRouting,
        links: &FtLinks,
        num_vcs: u8,
        vc_buffer_bytes: u32,
        sampling: Option<SamplingConfig>,
    ) -> SwitchLp {
        let (layer, pod, idx) = cfg.classify(id);
        let h = cfg.half();
        let mut ports = Vec::new();
        let port = |class, class_idx, peer_lp, peer_port, params: LinkClassParams| {
            OutPort::new(
                class,
                class_idx,
                peer_lp,
                peer_port,
                params,
                num_vcs,
                vc_buffer_bytes,
                sampling,
            )
        };
        match layer {
            Layer::Edge => {
                // Down: k/2 hosts; class-idx = host position.
                for p in 0..h {
                    let hst = id * h + p;
                    ports.push(port(LinkClass::Terminal, p, cfg.host_lp(hst), 0, links.host));
                }
                // Up: to every aggregation of the pod; peer's down port = my
                // edge index.
                for j in 0..h {
                    let agg = cfg.agg_id(pod, j);
                    ports.push(port(LinkClass::Local, j, cfg.switch_lp(agg), idx, links.pod));
                }
            }
            Layer::Aggregation => {
                // Down: to every edge of the pod; peer's up port = my index.
                for e in 0..h {
                    let edge = cfg.edge_id(pod, e);
                    ports.push(port(LinkClass::Local, e, cfg.switch_lp(edge), h + idx, links.pod));
                }
                // Up: to cores idx*h .. (idx+1)*h; core's down port = my pod.
                for i in 0..h {
                    let core = idx * h + i;
                    ports.push(port(
                        LinkClass::Global,
                        i,
                        cfg.switch_lp(cfg.core_id(core)),
                        pod,
                        links.core,
                    ));
                }
            }
            Layer::Core => {
                // Down: one port per pod, to aggregation agg_index_of_core.
                let j = cfg.agg_index_of_core(idx);
                for p in 0..cfg.pods() {
                    let agg = cfg.agg_id(p, j);
                    ports.push(port(
                        LinkClass::Global,
                        p,
                        cfg.switch_lp(agg),
                        h + cfg.core_fan_index(idx),
                        links.core,
                    ));
                }
            }
        }
        SwitchLp {
            id,
            cfg,
            layer,
            pod,
            idx,
            my_lp: cfg.switch_lp(id),
            routing,
            ports,
            faults: FaultView::new(),
            hop_limit: 16,
            drop_without_credit: false,
            drops: DropCounters::default(),
            reroutes: 0,
        }
    }

    /// Set the per-packet hop budget (TTL) and the credit-drop mode.
    pub fn set_fault_policy(&mut self, hop_limit: u8, drop_without_credit: bool) {
        self.hop_limit = hop_limit;
        self.drop_without_credit = drop_without_credit;
    }

    /// Packets discarded at this switch.
    pub fn drops(&self) -> &DropCounters {
        &self.drops
    }

    /// Packets steered to an alternate up-port because their first choice
    /// was dead.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// Post-drain invariant check: every credit lent out came back.
    pub fn audit(&self) -> Result<(), String> {
        for p in &self.ports {
            p.audit().map_err(|e| format!("switch {}: {e}", self.id))?;
        }
        Ok(())
    }

    /// The switch's layer.
    pub fn layer(&self) -> Layer {
        self.layer
    }

    /// (pod, index-within-layer) of this switch (pod is 0 for cores).
    pub fn position(&self) -> (u32, u32) {
        (self.pod, self.idx)
    }

    /// The switch's ports (metric extraction).
    pub fn ports(&self) -> &[OutPort] {
        &self.ports
    }

    fn up_range(&self) -> std::ops::Range<usize> {
        let h = self.cfg.half() as usize;
        h..2 * h
    }

    /// A port is usable when its link is up and its switch-class peer is
    /// alive; host links always accept ejection.
    fn port_is_live(&self, port: usize) -> bool {
        let p = &self.ports[port];
        if p.class == LinkClass::Terminal {
            return true;
        }
        if self.faults.link_dead(self.id, port as u32) {
            return false;
        }
        let peer_sw = p.peer_lp.0 - self.cfg.num_hosts();
        !self.faults.router_dead(peer_sw)
    }

    /// Pick an up-port among the live ones. With a clean fault view this is
    /// identical to plain ECMP / least-queued over the full up fan.
    fn choose_up(&self, pkt: &Packet) -> Option<usize> {
        let live: Vec<usize> = self.up_range().filter(|&p| self.port_is_live(p)).collect();
        if live.is_empty() {
            return None;
        }
        match self.routing {
            UpRouting::Ecmp => {
                let h = (pkt.id ^ (pkt.src.0 as u64) << 17 ^ (pkt.dst.0 as u64) << 31)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                Some(live[(h >> 33) as usize % live.len()])
            }
            UpRouting::Adaptive => live.into_iter().min_by_key(|&p| self.ports[p].queued_bytes),
        }
    }

    /// Next-hop port and whether the packet was steered around dead
    /// up-capacity. `None` means no live port can make progress: the
    /// caller drops and counts the packet (down-paths in a tree are
    /// unique, so a dead down-link is unroutable by construction).
    fn route_live(&self, pkt: &Packet) -> Option<(usize, bool)> {
        let dst = pkt.dst.0;
        let h = self.cfg.half();
        let down = match self.layer {
            Layer::Edge => {
                (self.cfg.edge_of_host(dst) == self.id).then(|| self.cfg.host_port(dst) as usize)
            }
            Layer::Aggregation => (self.cfg.pod_of_host(dst) == self.pod)
                .then(|| (self.cfg.edge_of_host(dst) % h) as usize),
            Layer::Core => Some(self.cfg.pod_of_host(dst) as usize),
        };
        if let Some(port) = down {
            return self.port_is_live(port).then_some((port, false));
        }
        let degraded = self.up_range().any(|p| !self.port_is_live(p));
        self.choose_up(pkt).map(|port| (port, degraded))
    }

    #[cfg(test)]
    fn route(&self, pkt: &Packet) -> usize {
        self.route_live(pkt).expect("no live route for packet").0
    }

    fn drop_packet(
        &mut self,
        ctx: &mut Ctx<'_, NetEvent>,
        pkt: &Packet,
        from: CreditReturn,
        reason: FtDrop,
    ) {
        match reason {
            FtDrop::SwitchDown => self.drops.router_down += 1,
            FtDrop::NoRoute => self.drops.no_route += 1,
            FtDrop::Ttl => self.drops.ttl += 1,
        }
        self.drops.bytes += pkt.bytes as u64;
        if !self.drop_without_credit {
            ctx.send(
                from.lp,
                from.latency,
                NetEvent::Credit { port: from.port, vc: from.vc, bytes: from.bytes },
            );
        }
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, NetEvent>, port: usize, action: PortAction) {
        if let PortAction::StartXmit { finish } = action {
            ctx.send_self(finish - ctx.now(), NetEvent::XmitDone { port: port as u16 });
        }
    }

    /// Handle one event.
    pub fn on_event(&mut self, ctx: &mut Ctx<'_, NetEvent>, ev: NetEvent) {
        match ev {
            NetEvent::RouterArrive { mut pkt, from } => {
                pkt.hops = pkt.hops.saturating_add(1);
                if self.faults.router_dead(self.id) {
                    self.drop_packet(ctx, &pkt, from, FtDrop::SwitchDown);
                    return;
                }
                if pkt.hops > self.hop_limit {
                    self.drop_packet(ctx, &pkt, from, FtDrop::Ttl);
                    return;
                }
                let Some((port, rerouted)) = self.route_live(&pkt) else {
                    self.drop_packet(ctx, &pkt, from, FtDrop::NoRoute);
                    return;
                };
                if rerouted {
                    self.reroutes += 1;
                }
                // Up/down routing needs no VC escape ordering: the channel
                // dependency graph of a tree is acyclic on a single VC.
                let action = self.ports[port].offer(ctx.now(), pkt, 0, from);
                self.apply(ctx, port, action);
            }
            NetEvent::Credit { port, vc, bytes } => {
                let action = self.ports[port as usize].credit(ctx.now(), vc, bytes);
                self.apply(ctx, port as usize, action);
            }
            NetEvent::XmitDone { port } => {
                let now = ctx.now();
                let (pkt, vc, from) = self.ports[port as usize].complete_xmit(now);
                let (peer_lp, latency, class) = {
                    let p = &self.ports[port as usize];
                    (p.peer_lp, p.params.latency, p.class)
                };
                ctx.send(
                    from.lp,
                    from.latency,
                    NetEvent::Credit { port: from.port, vc: from.vc, bytes: from.bytes },
                );
                let next_from =
                    CreditReturn { lp: self.my_lp, port, vc, bytes: pkt.bytes, latency };
                if class == LinkClass::Terminal {
                    ctx.send(peer_lp, latency, NetEvent::TerminalArrive { pkt, from: next_from });
                } else {
                    ctx.send(peer_lp, latency, NetEvent::RouterArrive { pkt, from: next_from });
                }
                let action = self.ports[port as usize].after_xmit(now);
                self.apply(ctx, port as usize, action);
            }
            NetEvent::Fault(fev) => {
                self.faults.apply(&fev);
                match fev {
                    FaultEvent::DegradedLink { router, port, factor } if router == self.id => {
                        if let Some(p) = self.ports.get_mut(port as usize) {
                            p.set_degrade_factor(factor);
                        }
                    }
                    FaultEvent::LinkUp { router, port } if router == self.id => {
                        if let Some(p) = self.ports.get_mut(port as usize) {
                            p.set_degrade_factor(1.0);
                        }
                    }
                    _ => {}
                }
            }
            other => unreachable!("host event delivered to switch: {other:?}"),
        }
    }

    /// Close open saturation intervals.
    pub fn on_finish(&mut self, now: SimTime) {
        for p in &mut self.ports {
            p.finish(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_network::packet::RoutePlan;
    use hrviz_network::topology::TerminalId;

    fn pkt(src: u32, dst: u32) -> Packet {
        Packet {
            id: 1,
            src: TerminalId(src),
            dst: TerminalId(dst),
            bytes: 1024,
            inject_time: SimTime::ZERO,
            job: 0,
            hops: 0,
            global_hops: 0,
            diverted: false,
            plan: RoutePlan::Minimal,
        }
    }

    fn switch(cfg: FatTreeConfig, id: u32) -> SwitchLp {
        SwitchLp::new(cfg, id, UpRouting::Ecmp, &FtLinks::default(), 1, 16 * 1024, None)
    }

    #[test]
    fn edge_ejects_attached_host() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let s = switch(cfg, cfg.edge_id(0, 0)); // hosts 0, 1
        assert_eq!(s.route(&pkt(5, 1)), 1);
        // Remote host goes up.
        let up = s.route(&pkt(0, 15));
        assert!((2..4).contains(&up));
    }

    #[test]
    fn agg_descends_within_pod_and_climbs_otherwise() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let s = switch(cfg, cfg.agg_id(1, 0)); // pod 1
                                               // Host 5 lives in pod 1 (edge 2): descend via down port 0 (edge 2 % 2).
        assert_eq!(s.route(&pkt(0, 5)), 0);
        // Host 15 is pod 3: climb.
        assert!((2..4).contains(&s.route(&pkt(0, 15))));
    }

    #[test]
    fn core_picks_destination_pod() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let s = switch(cfg, cfg.core_id(0));
        assert_eq!(s.route(&pkt(0, 13)), 3); // pod 3
        assert_eq!(s.route(&pkt(0, 2)), 0); // pod 0
    }

    #[test]
    fn wiring_is_consistent_both_ways() {
        let cfg = FatTreeConfig::try_new(6).expect("valid k");
        // For every switch port, the peer's port at peer_port points back.
        let links = FtLinks::default();
        let all: Vec<SwitchLp> = (0..cfg.num_switches())
            .map(|id| SwitchLp::new(cfg, id, UpRouting::Ecmp, &links, 1, 1024, None))
            .collect();
        for s in &all {
            for p in s.ports() {
                if p.class == LinkClass::Terminal {
                    continue;
                }
                let peer_sw = p.peer_lp.0 - cfg.num_hosts();
                let peer = &all[peer_sw as usize];
                let back = &peer.ports()[p.peer_port as usize];
                assert_eq!(back.peer_lp, cfg.switch_lp(s.id), "switch {} port", s.id);
            }
        }
    }

    #[test]
    fn ecmp_is_deterministic_adaptive_prefers_idle() {
        let cfg = FatTreeConfig::try_new(4).expect("valid k");
        let s = switch(cfg, cfg.edge_id(0, 0));
        assert_eq!(s.route(&pkt(0, 15)), s.route(&pkt(0, 15)));
        let s2 = SwitchLp::new(
            cfg,
            cfg.edge_id(0, 0),
            UpRouting::Adaptive,
            &FtLinks::default(),
            1,
            16 * 1024,
            None,
        );
        // With empty queues adaptive picks the first up port.
        assert_eq!(s2.route(&pkt(0, 15)), 2);
    }
}
