//! Hierarchical and binned data aggregation (paper §IV-A).
//!
//! Entities are grouped by one or more attribute fields ("aggregate the
//! data by the rank of the routers", Fig. 2b); when a level still has more
//! items than `maxBins`, an extra *binned aggregation* merges items into a
//! histogram over one of their aggregated metrics ("divide the global
//! links into a histogram of six bins based on accumulated traffic").
//! Sums are used for volume/time metrics and means for the latency/hop
//! metrics, per [`Field::rule`](crate::entity::Field::rule).

use crate::dataset::DataSet;
use crate::entity::{AggRule, EntityKind, Field};

/// One aggregate item: a group key plus the member row indices.
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateItem {
    /// Values of the group-by fields (empty for a whole-table aggregate).
    pub key: Vec<f64>,
    /// Member rows (indices into the dataset's table for the entity kind).
    pub rows: Vec<usize>,
}

impl AggregateItem {
    /// Aggregated value of `field` over the members.
    pub fn metric(&self, ds: &DataSet, kind: EntityKind, field: Field) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.rows.iter().map(|&i| ds.value(kind, i, field)).sum();
        match field.rule() {
            AggRule::Mean => sum / self.rows.len() as f64,
            AggRule::Sum => sum,
            // Attributes: representative value (identical across members by
            // construction when the field is part of the key).
            AggRule::Key => ds.value(kind, self.rows[0], field),
        }
    }
}

fn key_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y) {
            Some(std::cmp::Ordering::Equal) | None => continue,
            Some(o) => return o,
        }
    }
    a.len().cmp(&b.len())
}

/// Group rows of `kind` by `fields` (all attributes); returns items sorted
/// by key. Empty `fields` yields one item per row (individual entities).
pub fn group_rows(ds: &DataSet, kind: EntityKind, fields: &[Field]) -> Vec<AggregateItem> {
    for f in fields {
        assert!(f.is_attribute(), "cannot group by metric field {f}");
        assert!(DataSet::has_field(kind, *f), "{kind} rows have no field {f}");
    }
    let n = ds.len(kind);
    if fields.is_empty() {
        return (0..n).map(|i| AggregateItem { key: vec![i as f64], rows: vec![i] }).collect();
    }
    let mut keyed: Vec<(Vec<f64>, usize)> =
        (0..n).map(|i| (fields.iter().map(|&f| ds.value(kind, i, f)).collect(), i)).collect();
    keyed.sort_by(|a, b| key_cmp(&a.0, &b.0).then(a.1.cmp(&b.1)));
    let mut items: Vec<AggregateItem> = Vec::new();
    for (key, row) in keyed {
        match items.last_mut() {
            Some(last) if last.key == key => last.rows.push(row),
            _ => items.push(AggregateItem { key, rows: vec![row] }),
        }
    }
    items
}

/// Binned aggregation: merge `items` into at most `max_bins` equal-width
/// histogram bins over their aggregated `by` metric. Item keys become the
/// bin index. No-op when already within the limit.
pub fn bin_items(
    ds: &DataSet,
    kind: EntityKind,
    items: Vec<AggregateItem>,
    by: Field,
    max_bins: usize,
) -> Vec<AggregateItem> {
    assert!(max_bins >= 1);
    if items.len() <= max_bins {
        return items;
    }
    let values: Vec<f64> = items.iter().map(|it| it.metric(ds, kind, by)).collect();
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let width = (max - min) / max_bins as f64;
    let mut bins: Vec<AggregateItem> =
        (0..max_bins).map(|b| AggregateItem { key: vec![b as f64], rows: Vec::new() }).collect();
    for (item, v) in items.into_iter().zip(values) {
        let b = if width > 0.0 { (((v - min) / width) as usize).min(max_bins - 1) } else { 0 };
        bins[b].rows.extend(item.rows);
    }
    bins.retain(|b| !b.rows.is_empty());
    bins
}

/// One level of an aggregate tree: which entity, grouped how.
#[derive(Clone, Debug)]
pub struct TreeLevel {
    /// Entity kind projected at this level.
    pub entity: EntityKind,
    /// Group-by fields.
    pub fields: Vec<Field>,
    /// Optional binned-aggregation cap.
    pub max_bins: Option<(Field, usize)>,
}

/// A multi-level aggregate tree (paper Fig. 2b): each level is an
/// independent aggregation of one entity kind, stacked for display.
#[derive(Clone, Debug)]
pub struct AggregateTree {
    /// Per-level aggregate items.
    pub levels: Vec<Vec<AggregateItem>>,
}

impl AggregateTree {
    /// Build the tree over a dataset.
    pub fn build(ds: &DataSet, levels: &[TreeLevel]) -> AggregateTree {
        let _span = hrviz_obs::get().span("core/aggregate");
        let levels = levels
            .iter()
            .map(|lv| {
                let items = group_rows(ds, lv.entity, &lv.fields);
                match lv.max_bins {
                    Some((by, cap)) => bin_items(ds, lv.entity, items, by, cap),
                    None => items,
                }
            })
            .collect();
        AggregateTree { levels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::TerminalRow;

    /// Hand-built dataset: 8 terminals on 4 routers in 2 groups.
    fn ds() -> DataSet {
        let mut d = DataSet { jobs: vec!["a".into()], ..DataSet::default() };
        for i in 0..8u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i / 2,
                group: i / 4,
                rank: (i / 2) % 2,
                port: i % 2,
                job: 0,
                data_size: (i + 1) as f64 * 100.0,
                recv_bytes: 0.0,
                busy: 10.0,
                sat: i as f64,
                packets_finished: 2.0,
                packets_sent: 2.0,
                avg_latency: (i + 1) as f64 * 1000.0,
                avg_hops: 3.0,
            });
        }
        d
    }

    #[test]
    fn grouping_by_router_creates_pairs() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::RouterId]);
        assert_eq!(items.len(), 4);
        for (r, it) in items.iter().enumerate() {
            assert_eq!(it.key, vec![r as f64]);
            assert_eq!(it.rows.len(), 2);
        }
    }

    #[test]
    fn multi_field_grouping_is_lexicographic() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::GroupId, Field::RouterRank]);
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].key, vec![0.0, 0.0]);
        assert_eq!(items[1].key, vec![0.0, 1.0]);
        assert_eq!(items[2].key, vec![1.0, 0.0]);
        assert_eq!(items[3].key, vec![1.0, 1.0]);
    }

    #[test]
    fn empty_fields_yield_individual_entities() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[]);
        assert_eq!(items.len(), 8);
        assert!(items.iter().all(|it| it.rows.len() == 1));
    }

    #[test]
    fn sum_and_mean_rules() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::RouterId]);
        // Router 0 hosts terminals 0 and 1: data 100 + 200.
        assert_eq!(items[0].metric(&d, EntityKind::Terminal, Field::DataSize), 300.0);
        // Latency is averaged: (1000 + 2000) / 2.
        assert_eq!(items[0].metric(&d, EntityKind::Terminal, Field::AvgLatency), 1500.0);
        // Key fields return the representative value.
        assert_eq!(items[0].metric(&d, EntityKind::Terminal, Field::RouterId), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot group by metric")]
    fn grouping_by_metric_rejected() {
        let d = ds();
        group_rows(&d, EntityKind::Terminal, &[Field::DataSize]);
    }

    #[test]
    fn binning_merges_to_cap() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::TerminalId]);
        assert_eq!(items.len(), 8);
        let binned = bin_items(&d, EntityKind::Terminal, items, Field::DataSize, 3);
        assert!(binned.len() <= 3);
        let total_rows: usize = binned.iter().map(|b| b.rows.len()).sum();
        assert_eq!(total_rows, 8, "binning must not drop rows");
        // Bin keys are indices in metric order: bin 0 holds the smallest.
        assert!(binned[0].rows.iter().all(|&r| d.terminals[r].data_size <= 300.0));
    }

    #[test]
    fn binning_noop_when_within_cap() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::RouterId]);
        let binned = bin_items(&d, EntityKind::Terminal, items.clone(), Field::DataSize, 10);
        assert_eq!(binned, items);
    }

    #[test]
    fn binning_constant_metric_collapses_to_one() {
        let d = ds();
        let items = group_rows(&d, EntityKind::Terminal, &[Field::TerminalId]);
        let binned = bin_items(&d, EntityKind::Terminal, items, Field::AvgHops, 4);
        assert_eq!(binned.len(), 1);
    }

    #[test]
    fn tree_builds_fig2_shape() {
        // Fig. 2b: aggregate by router rank, then by (rank, port), then a
        // histogram capped at 6 bins.
        let d = ds();
        let tree = AggregateTree::build(
            &d,
            &[
                TreeLevel {
                    entity: EntityKind::Terminal,
                    fields: vec![Field::RouterRank],
                    max_bins: None,
                },
                TreeLevel {
                    entity: EntityKind::Terminal,
                    fields: vec![Field::RouterRank, Field::RouterPort],
                    max_bins: None,
                },
                TreeLevel {
                    entity: EntityKind::Terminal,
                    fields: vec![Field::TerminalId],
                    max_bins: Some((Field::DataSize, 6)),
                },
            ],
        );
        assert_eq!(tree.levels[0].len(), 2);
        assert_eq!(tree.levels[1].len(), 4);
        assert!(tree.levels[2].len() <= 6);
    }
}
