//! # hrviz-workloads — workload generation for Dragonfly simulations
//!
//! The paper drives its CODES simulations with synthetic traffic patterns
//! and DUMPI application traces under several job placement policies
//! (§III, §V). This crate provides all three ingredients:
//!
//! * [`TrafficPattern`] / [`generate_synthetic`] — uniform random, nearest
//!   neighbor, and friends;
//! * [`AppKind`] / [`generate_app`] — synthetic proxies of the AMG, AMR
//!   Boxlib, and MiniFE traces of Table I (structure-preserving stand-ins
//!   for the unavailable DUMPI data; see DESIGN.md);
//! * [`PlacementPolicy`] / [`place_jobs`] — contiguous, random-group,
//!   random-router and random-node placement, composable per job into the
//!   paper's hybrid strategy;
//! * [`trace`] — portable CSV message traces (the open stand-in for the
//!   paper's DUMPI input path).
//!
//! ## Example
//!
//! ```
//! use hrviz_network::{DragonflyConfig, Topology};
//! use hrviz_workloads::{place_jobs, PlacementPolicy, PlacementRequest,
//!                       generate_synthetic, SyntheticConfig};
//! use hrviz_pdes::SimTime;
//!
//! let topo = Topology::new(DragonflyConfig::canonical(2));
//! let jobs = place_jobs(topo, &[PlacementRequest {
//!     name: "toy".into(),
//!     ranks: 16,
//!     policy: PlacementPolicy::RandomRouter,
//! }], 42).unwrap();
//! let msgs = generate_synthetic(0, &jobs[0],
//!     &SyntheticConfig::uniform(4096, 8, SimTime::micros(1)));
//! assert_eq!(msgs.len(), 16 * 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod placement;
pub mod synthetic;
pub mod trace;

pub use apps::{generate_app, AppConfig, AppKind};
pub use placement::{place_jobs, Allocator, PlacementError, PlacementPolicy, PlacementRequest};
pub use synthetic::{generate_synthetic, SyntheticConfig, TrafficPattern};
pub use trace::{load_trace, read_trace, save_trace, write_trace, TraceError};
