//! Fig. 5 — script-specified projection views: (a) the whole 73-group
//! network binned to at most 8 partitions (maxBins) and (b) a filtered
//! detail view of the first 9 groups (filter: group_id [0, 8]), both
//! parsed from the paper's own script syntax.

use hrviz_bench::{run_three_jobs, write_csv, write_out, Expectations};
use hrviz_core::{build_view, parse_script, DataSet, FIG5A_SCRIPT, FIG5B_SCRIPT};
use hrviz_network::RoutingAlgorithm;
use hrviz_render::{render_radial, RadialLayout};
use hrviz_workloads::PlacementPolicy;

fn main() {
    hrviz_bench::obs_init("fig5_scripts");
    println!("Fig. 5: script-driven projection views (73-group network, 3 jobs, random router)");
    let run = run_three_jobs(
        [PlacementPolicy::RandomRouter; 3],
        RoutingAlgorithm::adaptive_default(),
        None,
    );
    let ds = DataSet::builder(&run).build();

    let spec_a = parse_script(FIG5A_SCRIPT).expect("Fig. 5a script parses");
    let view_a = build_view(&ds, &spec_a).expect("view builds");
    write_out(
        "fig5a_partitions.svg",
        &render_radial(
            &view_a,
            &RadialLayout::default(),
            "Fig 5a: 73 groups binned to <=8 partitions",
        ),
    );

    let spec_b = parse_script(FIG5B_SCRIPT).expect("Fig. 5b script parses");
    let view_b = build_view(&ds, &spec_b).expect("view builds");
    write_out(
        "fig5b_first9groups.svg",
        &render_radial(&view_b, &RadialLayout::default(), "Fig 5b: detail of groups 0-8"),
    );

    let mut rows = vec![vec!["view".into(), "ring".into(), "items".into()]];
    for (name, view) in [("a", &view_a), ("b", &view_b)] {
        for (i, ring) in view.rings.iter().enumerate() {
            rows.push(vec![name.into(), i.to_string(), ring.items.len().to_string()]);
        }
    }
    write_csv("fig5_ring_sizes.csv", &rows);

    let a = run.spec.topology.routers_per_group as usize;
    let mut exp = Expectations::new();
    exp.check(
        "5a ring 0 collapses 73 groups into <=8 partitions",
        view_a.rings[0].items.len() <= 8,
    );
    exp.check("5a ring 1 shows the 12 router ranks", view_a.rings[1].items.len() == a);
    exp.check("5b shows only groups 0-8", {
        view_b.rings[0].items.len() == 9 && view_b.rings[0].items.iter().all(|i| i.key[0] <= 8.0)
    });
    exp.check("5b local-link heatmap covers rank x port of 9 groups", {
        // 12 ranks × up to 12 peer ports (self excluded at runtime).
        let n = view_b.rings[1].items.len();
        n > a && n <= a * a
    });
    exp.check(
        "ribbons present in both views",
        !view_a.ribbons.is_empty() && !view_b.ribbons.is_empty(),
    );
    std::process::exit(i32::from(!exp.finish("fig5")));
}
