//! Router logical process.
//!
//! Implements the per-hop pipeline: arrival → (plan transition) → routing
//! step selection → VC selection → credit-gated forwarding → serialization
//! → downstream arrival + upstream credit return. All four routing
//! strategies of [`crate::routing`] hang off the plan-transition step.

use crate::config::{LinkClass, NetworkSpec};
use crate::events::{CreditReturn, NetEvent};
use crate::packet::{Packet, RoutePlan};
use crate::port::{OutPort, PortAction};
use crate::routing::{
    minimal_step, random_intermediate, toward_group, ugal_prefers_nonminimal, valiant_hops,
    vc_for_step, RoutingAlgorithm, Step,
};
use crate::topology::{GroupId, RouterId, Topology};
use hrviz_faults::{FaultEvent, FaultView};
use hrviz_pdes::wire::{SnapshotError, WireReader, WireWriter};
use hrviz_pdes::{Ctx, LpId, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// How many intermediate-group candidates a reroute samples before giving
/// up and counting the packet as undeliverable.
const REROUTE_ATTEMPTS: u32 = 8;

/// Packets discarded at a router, broken down by cause.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropCounters {
    /// Dropped because this router was marked down by the fault schedule.
    pub router_down: u64,
    /// Dropped because every viable next hop was dead.
    pub no_route: u64,
    /// Dropped because the per-packet hop limit was exceeded.
    pub ttl: u64,
    /// Total payload bytes across all drops.
    pub bytes: u64,
}

impl DropCounters {
    /// Total dropped packets, all causes.
    pub fn total(&self) -> u64 {
        self.router_down + self.no_route + self.ttl
    }
}

enum DropReason {
    RouterDown,
    NoRoute,
    Ttl,
}

/// Router logical process.
#[derive(Debug)]
pub struct RouterLp {
    /// This router's id.
    pub id: RouterId,
    my_lp: LpId,
    topo: Topology,
    routing: RoutingAlgorithm,
    ports: Vec<OutPort>,
    rng: StdRng,
    faults: FaultView,
    hop_limit: u8,
    drop_without_credit: bool,
    drops: DropCounters,
    reroutes: u64,
}

impl RouterLp {
    /// Build a router with its full port complement wired per the topology.
    pub fn new(spec: &Arc<NetworkSpec>, id: RouterId) -> Self {
        let topo = Topology::new(spec.topology);
        let my_lp = topo.router_lp(id);
        let group = topo.group_of_router(id);
        let my_rank = topo.rank_of_router(id);
        let cfg = spec.topology;
        let mut ports = Vec::with_capacity(topo.ports_per_router() as usize);
        // Ejection ports.
        for k in 0..cfg.terminals_per_router {
            let t = topo.terminal_of(id, k);
            ports.push(OutPort::new(
                LinkClass::Terminal,
                k,
                topo.terminal_lp(t),
                0,
                spec.terminal_link,
                spec.num_vcs,
                spec.vc_buffer_bytes,
                spec.sampling,
            ));
        }
        // Local ports, indexed by peer rank (self slot present but unused).
        for peer_rank in 0..cfg.routers_per_group {
            let peer = topo.router_in_group(group, peer_rank);
            ports.push(OutPort::new(
                LinkClass::Local,
                peer_rank,
                topo.router_lp(peer),
                topo.local_port(my_rank),
                spec.local_link,
                spec.num_vcs,
                spec.vc_buffer_bytes,
                spec.sampling,
            ));
        }
        // Global ports.
        for gp in 0..cfg.global_ports {
            let (peer, peer_gp) = topo.global_peer(id, gp);
            ports.push(OutPort::new(
                LinkClass::Global,
                gp,
                topo.router_lp(peer),
                topo.global_port(peer_gp),
                spec.global_link,
                spec.num_vcs,
                spec.vc_buffer_bytes,
                spec.sampling,
            ));
        }
        // Per-router deterministic RNG stream.
        let rng = StdRng::seed_from_u64(
            spec.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(my_lp.0 as u64 + 1)),
        );
        RouterLp {
            id,
            my_lp,
            topo,
            routing: spec.routing,
            ports,
            rng,
            faults: FaultView::new(),
            hop_limit: spec.hop_limit,
            drop_without_credit: spec.drop_without_credit,
            drops: DropCounters::default(),
            reroutes: 0,
        }
    }

    /// The router's out ports (metric extraction).
    pub fn ports(&self) -> &[OutPort] {
        &self.ports
    }

    /// Packets discarded at this router (metric extraction).
    pub fn drops(&self) -> &DropCounters {
        &self.drops
    }

    /// Packets this router diverted around a dead link.
    pub fn reroutes(&self) -> u64 {
        self.reroutes
    }

    /// End-of-run credit-conservation check across all out ports.
    pub fn audit(&self) -> Result<(), String> {
        for p in &self.ports {
            p.audit().map_err(|e| format!("router {}: {e}", self.id.0))?;
        }
        Ok(())
    }

    fn step_port(&self, step: Step) -> usize {
        (match step {
            Step::Eject(k) => self.topo.eject_port(k),
            Step::Local(rank) => self.topo.local_port(rank),
            Step::Global(gp) => self.topo.global_port(gp),
        }) as usize
    }

    fn queued(&self, step: Step) -> u64 {
        self.ports[self.step_port(step)].queued_bytes
    }

    /// Whether the out link a step uses is up and its far-end router alive.
    /// Ejection links never fail (a dead router is modeled at the router).
    fn step_is_live(&self, step: Step) -> bool {
        if matches!(step, Step::Eject(_)) {
            return true;
        }
        let port = self.step_port(step);
        if self.faults.link_dead(self.id.0, port as u32) {
            return false;
        }
        let peer = RouterId(self.ports[port].peer_lp.0 - self.topo.config().num_terminals());
        !self.faults.router_dead(peer.0)
    }

    /// Try to divert a packet around a dead next hop: sample intermediate
    /// groups until one is reachable over live links. Only legal while the
    /// packet is still in its source group with no global hops taken — the
    /// divert rides the same VC stage as a PAR divert, so the channel
    /// dependency order (and thus deadlock freedom) is preserved.
    fn reroute_step(
        &mut self,
        pkt: &mut Packet,
        src_group: GroupId,
        my_group: GroupId,
        dst_group: GroupId,
    ) -> Option<Step> {
        let adaptive = !matches!(self.routing, RoutingAlgorithm::Minimal);
        if !adaptive
            || my_group != src_group
            || my_group == dst_group
            || pkt.global_hops != 0
            || pkt.diverted
        {
            return None;
        }
        for _ in 0..REROUTE_ATTEMPTS {
            let gi = random_intermediate(&self.topo, &mut self.rng, my_group, dst_group)?;
            let step = toward_group(&self.topo, self.id, gi);
            if self.step_is_live(step) {
                pkt.plan = RoutePlan::Via(gi);
                pkt.diverted = true;
                return Some(step);
            }
        }
        None
    }

    /// Discard a packet, count it, and (normally) return the upstream
    /// credit so the drop does not consume buffer space forever. The
    /// `drop_without_credit` knob suppresses the return to deliberately
    /// induce a credit leak for auditor tests.
    fn drop_packet(
        &mut self,
        ctx: &mut Ctx<'_, NetEvent>,
        pkt: &Packet,
        from: CreditReturn,
        reason: DropReason,
    ) {
        match reason {
            DropReason::RouterDown => self.drops.router_down += 1,
            DropReason::NoRoute => self.drops.no_route += 1,
            DropReason::Ttl => self.drops.ttl += 1,
        }
        self.drops.bytes += pkt.bytes as u64;
        if !self.drop_without_credit {
            ctx.send(
                from.lp,
                from.latency,
                NetEvent::Credit { port: from.port, vc: from.vc, bytes: from.bytes },
            );
        }
    }

    /// UGAL-L comparison from this router; returns the intermediate group
    /// to divert through, if non-minimal wins.
    fn ugal_choice(
        &mut self,
        pkt: &Packet,
        dst_router: RouterId,
        my_group: GroupId,
        dst_group: GroupId,
        threshold: u64,
    ) -> Option<GroupId> {
        let gi = random_intermediate(&self.topo, &mut self.rng, my_group, dst_group)?;
        let min_first = minimal_step(&self.topo, self.id, dst_router, 0);
        let non_first = toward_group(&self.topo, self.id, gi);
        let q_min = self.queued(min_first);
        let q_non = self.queued(non_first);
        let h_min = self.topo.minimal_hops(self.id, dst_router).max(1);
        let h_non = valiant_hops(&self.topo, self.id, gi, dst_router).max(1);
        let _ = pkt;
        ugal_prefers_nonminimal(q_min, h_min, q_non, h_non, threshold).then_some(gi)
    }

    fn initial_decision(
        &mut self,
        pkt: &Packet,
        dst_router: RouterId,
        my_group: GroupId,
        dst_group: GroupId,
    ) -> RoutePlan {
        if my_group == dst_group {
            return RoutePlan::Minimal;
        }
        match self.routing {
            RoutingAlgorithm::Minimal => RoutePlan::Minimal,
            RoutingAlgorithm::NonMinimal => {
                match random_intermediate(&self.topo, &mut self.rng, my_group, dst_group) {
                    Some(gi) => RoutePlan::Via(gi),
                    None => RoutePlan::Minimal,
                }
            }
            RoutingAlgorithm::Adaptive { threshold } => {
                match self.ugal_choice(pkt, dst_router, my_group, dst_group, threshold) {
                    Some(gi) => RoutePlan::Via(gi),
                    None => RoutePlan::Minimal,
                }
            }
            RoutingAlgorithm::ProgressiveAdaptive { threshold } => {
                match self.ugal_choice(pkt, dst_router, my_group, dst_group, threshold) {
                    Some(gi) => RoutePlan::Via(gi),
                    None => RoutePlan::MinimalPar,
                }
            }
        }
    }

    fn route_and_offer(
        &mut self,
        ctx: &mut Ctx<'_, NetEvent>,
        mut pkt: Packet,
        from: CreditReturn,
    ) {
        let dst_router = self.topo.router_of_terminal(pkt.dst);
        let src_group = self.topo.group_of_router(self.topo.router_of_terminal(pkt.src));
        let my_group = self.topo.group_of_router(self.id);
        let dst_group = self.topo.group_of_router(dst_router);

        // A down router refuses new work; in-flight traffic already granted
        // credit keeps draining so credit conservation holds.
        if self.faults.router_dead(self.id.0) {
            self.drop_packet(ctx, &pkt, from, DropReason::RouterDown);
            return;
        }
        // Hop-limit guard: a packet trapped by churning faults is counted
        // and discarded, never left to cycle forever.
        if pkt.hops > self.hop_limit {
            self.drop_packet(ctx, &pkt, from, DropReason::Ttl);
            return;
        }

        // Plan transitions.
        match pkt.plan {
            RoutePlan::Decide => {
                pkt.plan = self.initial_decision(&pkt, dst_router, my_group, dst_group);
            }
            RoutePlan::MinimalPar
                if pkt.global_hops == 0
                    && my_group == src_group
                    && my_group != dst_group
                    && !pkt.diverted =>
            {
                // PAR: re-evaluate while still minimal in the source group.
                let threshold = match self.routing {
                    RoutingAlgorithm::ProgressiveAdaptive { threshold } => threshold,
                    _ => u64::MAX, // plan from a PAR run replayed elsewhere: stay minimal
                };
                if threshold != u64::MAX {
                    if let Some(gi) =
                        self.ugal_choice(&pkt, dst_router, my_group, dst_group, threshold)
                    {
                        pkt.plan = RoutePlan::Via(gi);
                        pkt.diverted = true;
                    }
                }
            }
            _ => {}
        }
        // Reaching the intermediate group completes the Valiant detour.
        if let RoutePlan::Via(gi) = pkt.plan {
            if my_group == gi {
                pkt.plan = RoutePlan::Minimal;
            }
        }

        let mut step = match pkt.plan {
            RoutePlan::Via(gi) => toward_group(&self.topo, self.id, gi),
            _ => minimal_step(&self.topo, self.id, dst_router, self.topo.terminal_port(pkt.dst)),
        };
        // Degraded-mode routing: a dead next hop is either diverted around
        // (adaptive policies, while still legal) or a counted drop.
        if !self.step_is_live(step) {
            match self.reroute_step(&mut pkt, src_group, my_group, dst_group) {
                Some(live) => {
                    step = live;
                    self.reroutes += 1;
                }
                None => {
                    self.drop_packet(ctx, &pkt, from, DropReason::NoRoute);
                    return;
                }
            }
        }
        let vc = vc_for_step(
            step,
            pkt.global_hops,
            my_group == src_group && pkt.global_hops == 0,
            pkt.diverted,
            my_group == dst_group,
        );
        let port = self.step_port(step);
        let action = self.ports[port].offer(ctx.now(), pkt, vc, from);
        self.apply(ctx, port, action);
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, NetEvent>, port: usize, action: PortAction) {
        if let PortAction::StartXmit { finish } = action {
            ctx.send_self(finish - ctx.now(), NetEvent::XmitDone { port: port as u16 });
        }
    }

    /// Handle an event addressed to this router.
    pub fn on_event(&mut self, ctx: &mut Ctx<'_, NetEvent>, ev: NetEvent) {
        match ev {
            NetEvent::RouterArrive { mut pkt, from } => {
                pkt.hops = pkt.hops.saturating_add(1);
                self.route_and_offer(ctx, pkt, from);
            }
            NetEvent::Credit { port, vc, bytes } => {
                let action = self.ports[port as usize].credit(ctx.now(), vc, bytes);
                self.apply(ctx, port as usize, action);
            }
            NetEvent::XmitDone { port } => {
                let now = ctx.now();
                let (mut pkt, vc, from) = self.ports[port as usize].complete_xmit(now);
                let (peer_lp, latency, class) = {
                    let p = &self.ports[port as usize];
                    (p.peer_lp, p.params.latency, p.class)
                };
                // Return the credit for the buffer the packet just vacated.
                ctx.send(
                    from.lp,
                    from.latency,
                    NetEvent::Credit { port: from.port, vc: from.vc, bytes: from.bytes },
                );
                // Deliver downstream.
                let next_from =
                    CreditReturn { lp: self.my_lp, port, vc, bytes: pkt.bytes, latency };
                match class {
                    LinkClass::Terminal => {
                        ctx.send(
                            peer_lp,
                            latency,
                            NetEvent::TerminalArrive { pkt, from: next_from },
                        );
                    }
                    LinkClass::Global => {
                        pkt.global_hops += 1;
                        ctx.send(peer_lp, latency, NetEvent::RouterArrive { pkt, from: next_from });
                    }
                    LinkClass::Local => {
                        ctx.send(peer_lp, latency, NetEvent::RouterArrive { pkt, from: next_from });
                    }
                }
                let action = self.ports[port as usize].after_xmit(now);
                self.apply(ctx, port as usize, action);
            }
            NetEvent::Fault(fev) => {
                self.faults.apply(&fev);
                // Degrade factors act on this router's own out ports.
                match fev {
                    FaultEvent::DegradedLink { router, port, factor } if router == self.id.0 => {
                        if let Some(p) = self.ports.get_mut(port as usize) {
                            p.set_degrade_factor(factor);
                        }
                    }
                    FaultEvent::LinkUp { router, port } if router == self.id.0 => {
                        if let Some(p) = self.ports.get_mut(port as usize) {
                            p.set_degrade_factor(1.0);
                        }
                    }
                    _ => {}
                }
            }
            NetEvent::InjectWake | NetEvent::TerminalXmitDone | NetEvent::TerminalArrive { .. } => {
                unreachable!("terminal event delivered to router")
            }
        }
    }

    /// Close open saturation intervals.
    pub fn on_finish(&mut self, now: SimTime) {
        for p in &mut self.ports {
            p.finish(now);
        }
    }

    /// Serialize the router's dynamic state — every out port, the RNG
    /// stream position, the fault view, and drop/reroute counters — for an
    /// engine checkpoint. Topology wiring is static and excluded.
    pub fn snapshot(&self, w: &mut WireWriter) -> Result<(), SnapshotError> {
        w.put_u64(self.ports.len() as u64);
        for p in &self.ports {
            p.snapshot(w)?;
        }
        for s in self.rng.state() {
            w.put_u64(s);
        }
        self.faults.encode(w);
        w.put_u64(self.drops.router_down);
        w.put_u64(self.drops.no_route);
        w.put_u64(self.drops.ttl);
        w.put_u64(self.drops.bytes);
        w.put_u64(self.reroutes);
        Ok(())
    }

    /// Inverse of [`RouterLp::snapshot`].
    pub fn restore(&mut self, r: &mut WireReader<'_>) -> Result<(), SnapshotError> {
        let n_ports = r.u64()? as usize;
        if n_ports != self.ports.len() {
            return Err(SnapshotError::Corrupt(format!(
                "router {}: snapshot has {n_ports} ports, model has {}",
                self.id.0,
                self.ports.len()
            )));
        }
        for p in &mut self.ports {
            p.restore(r)?;
        }
        let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        self.rng = StdRng::from_state(state);
        self.faults = FaultView::decode(r)?;
        self.drops = DropCounters {
            router_down: r.u64()?,
            no_route: r.u64()?,
            ttl: r.u64()?,
            bytes: r.u64()?,
        };
        self.reroutes = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DragonflyConfig;
    use crate::topology::TerminalId;
    use hrviz_pdes::Event;

    fn spec() -> Arc<NetworkSpec> {
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2)); // g=9, a=4, p=2
        s.num_vcs = 4;
        Arc::new(s)
    }

    fn drive(r: &mut RouterLp, now: SimTime, ev: NetEvent) -> Vec<Event<NetEvent>> {
        let mut seq = 0;
        let mut out = Vec::new();
        let me = r.my_lp;
        let mut ctx = Ctx::detached(now, me, &mut seq, &mut out, SimTime(30));
        r.on_event(&mut ctx, ev);
        out
    }

    fn pkt_to(src: u32, dst: u32) -> Packet {
        Packet {
            id: 1,
            src: TerminalId(src),
            dst: TerminalId(dst),
            bytes: 1024,
            inject_time: SimTime::ZERO,
            job: 0,
            hops: 0,
            global_hops: 0,
            diverted: false,
            plan: RoutePlan::Decide,
        }
    }

    fn terminal_from(t: u32) -> CreditReturn {
        CreditReturn { lp: LpId(t), port: 0, vc: 0, bytes: 1024, latency: SimTime(30) }
    }

    #[test]
    fn arrival_for_attached_terminal_ejects() {
        let spec = spec();
        let topo = Topology::new(spec.topology);
        let mut r = RouterLp::new(&spec, RouterId(0));
        // Terminal 1 lives on router 0 (p=2).
        let out = drive(
            &mut r,
            SimTime(100),
            NetEvent::RouterArrive { pkt: pkt_to(5, 1), from: terminal_from(5) },
        );
        // Serialization starts immediately: one self XmitDone event.
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, NetEvent::XmitDone { port: 1 }));
        // Completing the xmit delivers to the terminal LP + returns credit.
        let finish = out[0].key.time;
        let out = drive(&mut r, finish, NetEvent::XmitDone { port: 1 });
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].payload, NetEvent::Credit { .. }));
        assert_eq!(out[0].key.dst, LpId(5));
        match &out[1].payload {
            NetEvent::TerminalArrive { pkt, from } => {
                assert_eq!(pkt.hops, 1);
                assert_eq!(from.lp, topo.router_lp(RouterId(0)));
            }
            other => panic!("expected TerminalArrive, got {other:?}"),
        }
        assert_eq!(out[1].key.dst, topo.terminal_lp(TerminalId(1)));
    }

    #[test]
    fn minimal_routing_walks_to_other_group() {
        let spec = spec();
        let topo = Topology::new(spec.topology);
        // Send a packet from terminal 0 (router 0, group 0) to the last
        // terminal (last group) and follow it through routers.
        let dst = TerminalId(spec.topology.num_terminals() - 1);
        let dst_router = topo.router_of_terminal(dst);
        let mut current = RouterId(0);
        let mut pkt = pkt_to(0, dst.0);
        let mut from = terminal_from(0);
        let mut hops = 0;
        loop {
            let mut r = RouterLp::new(&spec, current);
            let out = drive(&mut r, SimTime(0), NetEvent::RouterArrive { pkt, from });
            let xmit = out
                .iter()
                .find_map(|e| match e.payload {
                    NetEvent::XmitDone { port } => Some(port),
                    _ => None,
                })
                .expect("xmit scheduled");
            let out = drive(&mut r, SimTime(1000), NetEvent::XmitDone { port: xmit });
            let arrival = out.last().unwrap();
            match &arrival.payload {
                NetEvent::TerminalArrive { pkt: p, .. } => {
                    assert_eq!(p.dst, dst);
                    assert_eq!(current, dst_router);
                    break;
                }
                NetEvent::RouterArrive { pkt: p, from: f } => {
                    // Find which router the event targets.
                    let lp = arrival.key.dst;
                    let rid = RouterId(lp.0 - spec.topology.num_terminals());
                    pkt = *p;
                    from = *f;
                    current = rid;
                }
                other => panic!("unexpected {other:?}"),
            }
            hops += 1;
            assert!(hops <= 4, "minimal path too long");
        }
        assert!(hops <= 3);
    }

    #[test]
    fn nonminimal_packets_get_intermediate_group() {
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.num_vcs = 4;
        s.routing = RoutingAlgorithm::NonMinimal;
        let spec = Arc::new(s);
        let mut r = RouterLp::new(&spec, RouterId(0));
        // Repeatedly decide for fresh packets: all must be Via(≠0, ≠dst group).
        let topo = Topology::new(spec.topology);
        let dst = TerminalId(spec.topology.num_terminals() - 1);
        let dst_group = topo.group_of_router(topo.router_of_terminal(dst));
        for _ in 0..20 {
            let plan = r.initial_decision(
                &pkt_to(0, dst.0),
                topo.router_of_terminal(dst),
                GroupId(0),
                dst_group,
            );
            match plan {
                RoutePlan::Via(gi) => {
                    assert_ne!(gi, GroupId(0));
                    assert_ne!(gi, dst_group);
                }
                other => panic!("expected Via, got {other:?}"),
            }
        }
    }

    #[test]
    fn adaptive_stays_minimal_with_empty_queues() {
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.num_vcs = 4;
        s.routing = RoutingAlgorithm::adaptive_default();
        let spec = Arc::new(s);
        let topo = Topology::new(spec.topology);
        let mut r = RouterLp::new(&spec, RouterId(0));
        let dst = TerminalId(spec.topology.num_terminals() - 1);
        let dst_group = topo.group_of_router(topo.router_of_terminal(dst));
        let plan = r.initial_decision(
            &pkt_to(0, dst.0),
            topo.router_of_terminal(dst),
            GroupId(0),
            dst_group,
        );
        assert_eq!(plan, RoutePlan::Minimal);
    }

    #[test]
    fn intra_group_destination_routes_minimal_locally() {
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.num_vcs = 4;
        s.routing = RoutingAlgorithm::NonMinimal;
        let spec = Arc::new(s);
        let mut r = RouterLp::new(&spec, RouterId(0));
        // Destination terminal on router 1, same group: local forward.
        let out = drive(
            &mut r,
            SimTime(0),
            NetEvent::RouterArrive {
                pkt: pkt_to(0, 2), // terminal 2 → router 1 (p=2)
                from: terminal_from(0),
            },
        );
        assert_eq!(out.len(), 1);
        let NetEvent::XmitDone { port } = out[0].payload else { panic!() };
        // local port to rank 1 = p + 1 = 3.
        assert_eq!(port, 3);
    }

    #[test]
    fn dead_router_drops_arrivals_and_returns_credit() {
        let spec = spec();
        let mut r = RouterLp::new(&spec, RouterId(0));
        let _ = drive(&mut r, SimTime(0), NetEvent::Fault(FaultEvent::RouterDown { router: 0 }));
        let out = drive(
            &mut r,
            SimTime(10),
            NetEvent::RouterArrive { pkt: pkt_to(5, 1), from: terminal_from(5) },
        );
        // Upstream credit comes back; nothing is forwarded.
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, NetEvent::Credit { bytes: 1024, .. }));
        assert_eq!(out[0].key.dst, LpId(5));
        assert_eq!(r.drops().router_down, 1);
        assert_eq!(r.drops().bytes, 1024);
        // RouterUp restores service.
        let _ = drive(&mut r, SimTime(20), NetEvent::Fault(FaultEvent::RouterUp { router: 0 }));
        let out = drive(
            &mut r,
            SimTime(30),
            NetEvent::RouterArrive { pkt: pkt_to(5, 1), from: terminal_from(5) },
        );
        assert!(matches!(out[0].payload, NetEvent::XmitDone { .. }));
    }

    #[test]
    fn hop_limit_exceeded_is_counted_ttl_drop() {
        let spec = spec(); // hop_limit defaults to 16
        let mut r = RouterLp::new(&spec, RouterId(0));
        let mut p = pkt_to(5, 1);
        p.hops = spec.hop_limit; // arrival increments past the limit
        let out =
            drive(&mut r, SimTime(0), NetEvent::RouterArrive { pkt: p, from: terminal_from(5) });
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].payload, NetEvent::Credit { .. }));
        assert_eq!(r.drops().ttl, 1);
    }

    #[test]
    fn minimal_routing_counts_drop_on_dead_global_link() {
        let spec = spec();
        let topo = Topology::new(spec.topology);
        let dst = TerminalId(spec.topology.num_terminals() - 1);
        let dst_group = topo.group_of_router(topo.router_of_terminal(dst));
        let (gw, gp) = topo.gateway(GroupId(0), dst_group);
        let src_terminal = topo.terminal_of(gw, 0);
        let mut r = RouterLp::new(&spec, gw);
        let _ = drive(
            &mut r,
            SimTime(0),
            NetEvent::Fault(FaultEvent::LinkDown { router: gw.0, port: topo.global_port(gp) }),
        );
        let out = drive(
            &mut r,
            SimTime(10),
            NetEvent::RouterArrive {
                pkt: pkt_to(src_terminal.0, dst.0),
                from: terminal_from(src_terminal.0),
            },
        );
        assert!(matches!(out[0].payload, NetEvent::Credit { .. }));
        assert_eq!(r.drops().no_route, 1);
        assert_eq!(r.reroutes(), 0);
    }

    #[test]
    fn adaptive_routing_diverts_around_dead_global_link() {
        let mut s = NetworkSpec::new(DragonflyConfig::canonical(2));
        s.num_vcs = 4;
        s.routing = RoutingAlgorithm::adaptive_default();
        let spec = Arc::new(s);
        let topo = Topology::new(spec.topology);
        let dst = TerminalId(spec.topology.num_terminals() - 1);
        let dst_group = topo.group_of_router(topo.router_of_terminal(dst));
        let (gw, gp) = topo.gateway(GroupId(0), dst_group);
        let src_terminal = topo.terminal_of(gw, 0);
        let mut r = RouterLp::new(&spec, gw);
        let _ = drive(
            &mut r,
            SimTime(0),
            NetEvent::Fault(FaultEvent::LinkDown { router: gw.0, port: topo.global_port(gp) }),
        );
        let out = drive(
            &mut r,
            SimTime(10),
            NetEvent::RouterArrive {
                pkt: pkt_to(src_terminal.0, dst.0),
                from: terminal_from(src_terminal.0),
            },
        );
        // The packet is granted on some live port instead of being dropped.
        assert!(matches!(out[0].payload, NetEvent::XmitDone { .. }));
        assert_eq!(r.reroutes(), 1);
        assert_eq!(r.drops().total(), 0);
    }

    #[test]
    fn degraded_link_fault_slows_own_port() {
        let spec = spec();
        let mut r = RouterLp::new(&spec, RouterId(0));
        // Halve the ejection port for terminal 1 (port index 1).
        let _ = drive(
            &mut r,
            SimTime(0),
            NetEvent::Fault(FaultEvent::DegradedLink { router: 0, port: 1, factor: 0.5 }),
        );
        let out = drive(
            &mut r,
            SimTime(0),
            NetEvent::RouterArrive { pkt: pkt_to(5, 1), from: terminal_from(5) },
        );
        let healthy = {
            let mut r2 = RouterLp::new(&spec, RouterId(0));
            let out2 = drive(
                &mut r2,
                SimTime(0),
                NetEvent::RouterArrive { pkt: pkt_to(5, 1), from: terminal_from(5) },
            );
            out2[0].key.time
        };
        assert!(out[0].key.time > healthy);
        assert_eq!(out[0].key.time, spec.terminal_link.serialize_degraded(1024, 0.5));
    }

    #[test]
    fn global_traversal_increments_global_hops() {
        let spec = spec();
        let topo = Topology::new(spec.topology);
        // Use the router that owns the channel to the destination group so
        // the first hop is global.
        let dst = TerminalId(spec.topology.num_terminals() - 1);
        let dst_group = topo.group_of_router(topo.router_of_terminal(dst));
        let (gw, _) = topo.gateway(GroupId(0), dst_group);
        let src_terminal = topo.terminal_of(gw, 0);
        let mut r = RouterLp::new(&spec, gw);
        let out = drive(
            &mut r,
            SimTime(0),
            NetEvent::RouterArrive {
                pkt: pkt_to(src_terminal.0, dst.0),
                from: terminal_from(src_terminal.0),
            },
        );
        let NetEvent::XmitDone { port } = out[0].payload else { panic!() };
        let out = drive(&mut r, SimTime(1000), NetEvent::XmitDone { port });
        let NetEvent::RouterArrive { pkt, .. } = &out[1].payload else { panic!() };
        assert_eq!(pkt.global_hops, 1);
    }
}
