//! # hrviz-core — visual analytics for large-scale high-radix networks
//!
//! The paper's primary contribution (§IV): scalable visual analytics over
//! Dragonfly network performance data. This crate implements
//!
//! * the **entity tree** — flattened entity tables ([`DataSet`]) with a
//!   field vocabulary matching the paper's Fig. 2(a),
//! * **hierarchical + binned aggregation** ([`aggregate`]) with the
//!   paper's sum/mean rules and `maxBins` re-binning,
//! * **projection-view specifications** ([`spec`]) with plot-type
//!   inference from encoding counts, and the Fig. 5 **script language**
//!   ([`script`]),
//! * **view building** ([`projection`]): rings, partition arcs, and
//!   bundled link ribbons (size = traffic, color = max saturation),
//! * the **detail view** ([`detail`]): link scatters + terminal parallel
//!   coordinates with highlighting and axis brushing,
//! * the **timeline view** ([`timeline`]) with time-range selection, and
//! * **cross-run comparison** ([`compare`]) under shared scales.
//!
//! ## Example
//!
//! ```
//! use hrviz_core::{DataSet, script, projection};
//! use hrviz_network::{DragonflyConfig, NetworkSpec, Simulation, MsgInjection, TerminalId};
//! use hrviz_pdes::SimTime;
//!
//! // Simulate...
//! let mut sim = Simulation::new(NetworkSpec::new(DragonflyConfig::canonical(2)));
//! sim.inject(MsgInjection { time: SimTime::ZERO, src: TerminalId(0),
//!                           dst: TerminalId(50), bytes: 65536, job: 0 });
//! let run = sim.run();
//!
//! // ...analyze with a projection script.
//! let ds = DataSet::builder(&run).build();
//! let spec = script::parse_script(r#"
//!     { project: "router", aggregate: "router_rank",
//!       vmap: { color: "total_sat_time", size: "total_traffic" } }
//! "#).unwrap();
//! let view = projection::build_view(&ds, &spec).unwrap();
//! assert_eq!(view.rings.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod color;
pub mod columnar;
pub mod compare;
pub mod dataset;
pub mod detail;
pub mod entity;
pub mod graph;
pub mod live;
pub mod projection;
pub mod request;
pub mod script;
pub mod spec;
pub mod timeline;
pub mod viewjson;

pub use aggregate::{
    bin_items, group_rows, AggregateCache, AggregateItem, AggregateTree, DataKey, TreeLevel,
};
pub use color::{Color, ColorScale};
pub use columnar::{schema_of, ColumnTable, ColumnarDataSet};
pub use compare::{compare_views, compare_views_cached, shared_scales, shared_scales_cached};
pub use dataset::{DataSet, DataSetBuilder, LinkRow, RouterRow, TerminalRow};
pub use detail::{brush_axis, DetailView, LinkScatter, ParallelCoords, PCP_AXES};
pub use entity::{AggRule, EntityKind, Field};
pub use graph::{
    hex16, legacy_envelope, legacy_view_json, Cursor, CursorError, GraphNode, ProjectionGraph,
    RenderPolicy, LEGACY_SCHEMA_VERSION, SCHEMA_VERSION, SECTION_NAMES,
};
pub use live::LiveAggregate;
pub use projection::{
    build_view, build_view_cached, build_view_scaled, build_view_scaled_cached, compute_scales,
    compute_scales_cached, ArcSegment, ProjectionView, Ribbon, Ring, ScaleSet, VisualItem,
};
pub use request::{RequestError, ViewRequest, MAX_PAGE_SIZE};
pub use script::{parse_script, to_script, FIG5A_SCRIPT, FIG5B_SCRIPT};
pub use spec::{FilterClause, LevelSpec, PlotKind, ProjectionSpec, RibbonSpec, SpecError, VMap};
pub use timeline::{TimelineSeries, TimelineView};
pub use viewjson::{view_to_json, views_to_json};
