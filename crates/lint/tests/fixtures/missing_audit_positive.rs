// Fixture: an Lp impl without an audit override must be flagged.
use hrviz_pdes::{Ctx, Lp};

pub struct Silent {
    credits: i64,
}

impl Lp<u32> for Silent {
    fn on_event(&mut self, _ctx: &mut Ctx<'_, u32>, payload: u32) {
        self.credits += payload as i64;
    }
}
