// Fixture: the syntax-aware indexing rule accepts accesses the function
// proves in bounds — len guards, early exits, len-bounded loops, len
// aliases and const-sized arrays.
pub fn guarded(xs: &[u32], i: usize) -> u32 {
    if i < xs.len() {
        xs[i]
    } else {
        0
    }
}

pub fn early_exit(xs: &[u32], i: usize) -> u32 {
    if i >= xs.len() {
        return 0;
    }
    xs[i]
}

pub fn looped(xs: &[u32]) -> u32 {
    let mut total = 0;
    for i in 0..xs.len() {
        total += xs[i];
    }
    total
}

pub fn aliased(xs: &[u32], j: usize) -> u32 {
    let n = xs.len();
    if j < n {
        xs[j]
    } else {
        0
    }
}

pub fn fixed() -> u32 {
    let a: [u32; 4] = [1, 2, 3, 4];
    a[2]
}

pub fn full_range(xs: &[u32]) -> &[u32] {
    &xs[..]
}
