//! Event payloads exchanged between terminal and router LPs.

use crate::packet::Packet;
use hrviz_pdes::{LpId, SimTime};

/// Where to return the credit once a packet leaves the receiving node, and
/// how long the return trip takes.
#[derive(Clone, Copy, Debug)]
pub struct CreditReturn {
    /// The upstream LP holding the credit counter.
    pub lp: LpId,
    /// Out-port index on the upstream node (ignored for terminals, which
    /// have a single injection channel).
    pub port: u16,
    /// Virtual channel the credit belongs to.
    pub vc: u8,
    /// Bytes to release.
    pub bytes: u32,
    /// Propagation latency of the reverse channel.
    pub latency: SimTime,
}

/// Network simulation event payload.
#[derive(Clone, Debug)]
pub enum NetEvent {
    /// Self-scheduled wake-up at a terminal to inject pending messages.
    InjectWake,
    /// A packet fully arrived at a router input buffer.
    RouterArrive {
        /// The packet.
        pkt: Packet,
        /// Credit bookkeeping for the buffer the packet occupies.
        from: CreditReturn,
    },
    /// A packet fully arrived at its destination terminal.
    TerminalArrive {
        /// The packet.
        pkt: Packet,
        /// Credit bookkeeping for the router's ejection port.
        from: CreditReturn,
    },
    /// Downstream freed `bytes` of buffer on (`port`, `vc`).
    Credit {
        /// Out-port index on the receiving node.
        port: u16,
        /// Virtual channel.
        vc: u8,
        /// Bytes released.
        bytes: u32,
    },
    /// An out-port finished serializing a packet; start the next one.
    XmitDone {
        /// Out-port index.
        port: u16,
    },
    /// The terminal's injection channel finished serializing a packet.
    TerminalXmitDone,
    /// A fault-schedule condition change, broadcast to every router at its
    /// trigger time (terminals never receive faults).
    Fault(hrviz_faults::FaultEvent),
}
