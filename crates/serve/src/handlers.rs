//! Request handlers: the run store + analytics pipeline behind each route.
//!
//! The application state owns the [`RunStore`], the shared
//! [`AggregateCache`] (so concurrent and repeated view builds reuse
//! grouped aggregates), a bounded dataset cache (parsed columnar tables
//! keyed by run id + store generation), and the ETag-keyed
//! [`ResponseCache`]. The caching ladder for `POST /views`:
//!
//! 1. `If-None-Match` matches the tag → `304`, nothing else happens.
//! 2. Body cache hit → the stored bytes, no store read, no aggregation.
//! 3. Dataset cache hit → parse and aggregate only (aggregation itself
//!    memoized per [`DataKey`]).
//! 4. Cold → load from disk, build, populate every layer on the way out.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use hrviz_core::{
    build_view_cached, compare_views_cached, parse_script, view_to_json, views_to_json,
    AggregateCache, ColumnarDataSet, DataKey, DataSet, EntityKind, Field, ProjectionSpec,
};
use hrviz_faults::HrvizError;
use hrviz_obs::{fingerprint64, Json};
use hrviz_render::{render_radial, render_radial_row, RadialLayout};
use hrviz_sweep::{RunStore, StoredManifest, StoredRun};

use crate::cache::{etag, CachedBody, ResponseCache};
use crate::http::{Request, Response};
use crate::router::{route, Route};

/// Parsed datasets kept hot, keyed by `(run id, generation)`.
const DATASET_CACHE_CAP: usize = 8;
/// Response bodies kept hot.
const RESPONSE_CACHE_CAP: usize = 128;

type DataCacheKey = (String, u64);

struct DataCache {
    map: BTreeMap<DataCacheKey, Arc<DataSet>>,
    order: VecDeque<DataCacheKey>,
}

/// Shared application state: everything a worker needs to answer a
/// request.
pub struct App {
    store: RunStore,
    agg: AggregateCache,
    responses: ResponseCache,
    datasets: Mutex<DataCache>,
}

impl App {
    /// State over an opened store.
    pub fn new(store: RunStore) -> App {
        hrviz_obs::get().hist_config("serve/latency_us", 0.0, 250.0, 64);
        App {
            store,
            agg: AggregateCache::new(),
            responses: ResponseCache::new(RESPONSE_CACHE_CAP),
            datasets: Mutex::new(DataCache { map: BTreeMap::new(), order: VecDeque::new() }),
        }
    }

    /// The store being served.
    pub fn store(&self) -> &RunStore {
        &self.store
    }

    /// Handle one parsed request, with request-level telemetry. The
    /// `serve/request` span id doubles as the request id: it is echoed
    /// in the `X-Request-Id` response header and in the one-line
    /// `access` event, and every span the handler opens (cache,
    /// dataset build, projection) records it as an ancestor.
    pub fn handle(&self, req: &Request) -> Response {
        let obs = hrviz_obs::get();
        obs.counter_add("serve/requests", 1);
        let started = Instant::now();
        let (resp, request_id) = {
            let span = obs.span("serve/request");
            let id = span.id();
            (self.dispatch(req), id)
        };
        let latency_us = started.elapsed().as_secs_f64() * 1e6;
        obs.hist_record("serve/latency_us", latency_us);
        if resp.status >= 400 {
            obs.counter_add("serve/http_errors", 1);
        }
        let cache = resp
            .headers
            .iter()
            .find(|(n, _)| n == "X-Cache")
            .map(|(_, v)| v.as_str())
            .unwrap_or("none");
        obs.event(
            "access",
            &[
                ("request_id", Json::U64(request_id.unwrap_or(0))),
                ("method", Json::Str(req.method.clone())),
                ("path", Json::Str(req.path.clone())),
                ("status", Json::U64(u64::from(resp.status))),
                ("bytes", Json::U64(resp.body.len() as u64)),
                ("latency_us", Json::F64(latency_us)),
                ("cache", Json::Str(cache.to_string())),
            ],
        );
        match request_id {
            Some(id) => resp.header("X-Request-Id", &format!("{id:016x}")),
            None => resp,
        }
    }

    fn dispatch(&self, req: &Request) -> Response {
        match route(req) {
            Route::Health => self.health(),
            Route::Metrics => metrics(req),
            Route::Tracez => tracez(),
            Route::Runs => self.runs(req),
            Route::Columns { run, field } => self.columns(req, &run, &field),
            Route::Views => self.views(req),
            Route::Compare => self.compare(req),
            Route::MethodNotAllowed(allow) => {
                Response::error(405, &format!("use {allow} on this path")).header("Allow", allow)
            }
            Route::NotFound => Response::error(404, "no such endpoint"),
        }
    }

    fn health(&self) -> Response {
        let body = Json::obj([
            ("status", Json::Str("ok".into())),
            ("generation", Json::U64(self.store.generation())),
        ]);
        Response::json(body.render())
    }

    /// Serve a cacheable body: answer `304` on a matching `If-None-Match`,
    /// then the body cache, then `build` (whose product is cached). The
    /// `X-Cache` header names which rung answered (`revalidated`, `hit`,
    /// `miss`); the access log reads it back as the cache disposition.
    fn cached(
        &self,
        req: &Request,
        tag: &str,
        content_type: &str,
        build: impl FnOnce() -> Result<Vec<u8>, Response>,
    ) -> Response {
        if req.header("if-none-match").is_some_and(|inm| inm.split(',').any(|t| t.trim() == tag)) {
            hrviz_obs::get().counter_add("serve/not_modified", 1);
            return Response::new(304).header("ETag", tag).header("X-Cache", "revalidated");
        }
        if let Some(hit) = self.responses.get(tag) {
            return Response::new(200)
                .header("Content-Type", &hit.content_type)
                .header("ETag", tag)
                .header("X-Cache", "hit")
                .with_body(hit.body);
        }
        let body = match build() {
            Ok(body) => body,
            Err(resp) => return resp,
        };
        self.responses
            .put(tag, CachedBody { content_type: content_type.to_string(), body: body.clone() });
        Response::new(200)
            .header("Content-Type", content_type)
            .header("ETag", tag)
            .header("X-Cache", "miss")
            .with_body(body)
    }

    fn runs(&self, req: &Request) -> Response {
        let generation = self.store.generation().to_string();
        let tag = etag(&["runs", &generation]);
        self.cached(req, &tag, "application/json", || {
            let ids = self.store.runs().map_err(|e| Response::error(500, &e.to_string()))?;
            let mut entries = Vec::with_capacity(ids.len());
            for id in &ids {
                let m = self
                    .store
                    .load_manifest(id)
                    .map_err(|e| Response::error(500, &e.to_string()))?;
                entries.push(manifest_json(&m));
            }
            let body = Json::obj([
                ("generation", Json::Str(generation.clone())),
                ("runs", Json::Arr(entries)),
            ]);
            Ok(body.render().into_bytes())
        })
    }

    fn columns(&self, req: &Request, run: &str, field_name: &str) -> Response {
        if !self.store.contains(run) {
            return Response::error(404, &format!("no run {run:?} in the store"));
        }
        let field = match Field::parse(field_name) {
            Some(f) => f,
            None => return Response::error(404, &format!("unknown field {field_name:?}")),
        };
        let table_filter = req.query.get("table").cloned();
        if let Some(t) = &table_filter {
            if EntityKind::parse(t).is_none() {
                return Response::error(400, &format!("unknown table {t:?}"));
            }
        }
        let generation = self.store.generation().to_string();
        let filter_part = table_filter.clone().unwrap_or_default();
        let tag = etag(&["columns", &generation, run, field_name, &filter_part]);
        self.cached(req, &tag, "application/json", || {
            let stored = self.load_run(run)?;
            let tables = columns_json(&stored.data, field, table_filter.as_deref());
            if tables.is_empty() {
                return Err(Response::error(
                    404,
                    &format!("no table carries field {field_name:?}"),
                ));
            }
            let body = Json::obj([
                ("run", Json::Str(run.to_string())),
                ("field", Json::Str(field_name.to_string())),
                ("tables", Json::Arr(tables)),
            ]);
            Ok(body.render().into_bytes())
        })
    }

    fn views(&self, req: &Request) -> Response {
        let run = match req.query.get("run") {
            Some(r) => r.clone(),
            None => return Response::error(400, "POST /views needs ?run={id}"),
        };
        let script = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => return Response::error(400, "script body must be UTF-8"),
        };
        let Some(key) = self.run_key(&run) else {
            return Response::error(404, &format!("no run {run:?} in the store"));
        };
        let svg = req.wants_svg();
        let kind = if svg { "svg" } else { "json" };
        let generation = self.store.generation().to_string();
        let script_fp = format!("{:016x}", fingerprint64(script));
        let tag = etag(&["views", &generation, &script_fp, &run, kind]);
        let content_type = if svg { "image/svg+xml" } else { "application/json" };
        self.cached(req, &tag, content_type, || {
            let spec = parse_spec(script)?;
            let ds = self.dataset(&run)?;
            let view = build_view_cached(&ds, &spec, &self.agg, key)
                .map_err(|e| Response::error(400, &e.to_string()))?;
            Ok(if svg {
                render_radial(&view, &RadialLayout::default(), &run).into_bytes()
            } else {
                view_to_json(&view).render().into_bytes()
            })
        })
    }

    fn compare(&self, req: &Request) -> Response {
        let runs: Vec<String> = match req.query.get("runs") {
            Some(r) => r.split(',').filter(|s| !s.is_empty()).map(str::to_string).collect(),
            None => return Response::error(400, "POST /compare needs ?runs={a},{b}"),
        };
        if runs.len() < 2 {
            return Response::error(400, "comparison needs at least two run ids");
        }
        let script = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => return Response::error(400, "script body must be UTF-8"),
        };
        let mut keys = Vec::with_capacity(runs.len());
        for run in &runs {
            match self.run_key(run) {
                Some(k) => keys.push(k),
                None => return Response::error(404, &format!("no run {run:?} in the store")),
            }
        }
        let svg = req.wants_svg();
        let kind = if svg { "svg" } else { "json" };
        let generation = self.store.generation().to_string();
        let script_fp = format!("{:016x}", fingerprint64(script));
        let joined = runs.join(",");
        let tag = etag(&["compare", &generation, &script_fp, &joined, kind]);
        let content_type = if svg { "image/svg+xml" } else { "application/json" };
        self.cached(req, &tag, content_type, || {
            let spec = parse_spec(script)?;
            let datasets: Vec<Arc<DataSet>> =
                runs.iter().map(|r| self.dataset(r)).collect::<Result<_, _>>()?;
            let pairs: Vec<(&DataSet, DataKey)> =
                datasets.iter().zip(&keys).map(|(ds, &k)| (ds.as_ref(), k)).collect();
            let views = compare_views_cached(&pairs, &spec, &self.agg)
                .map_err(|e| Response::error(400, &e.to_string()))?;
            Ok(if svg {
                let labeled: Vec<(&_, &str)> =
                    views.iter().zip(&runs).map(|(v, r)| (v, r.as_str())).collect();
                render_radial_row(&labeled, &RadialLayout::default(), "comparison").into_bytes()
            } else {
                let labeled: Vec<(&str, &_)> =
                    runs.iter().zip(&views).map(|(r, v)| (r.as_str(), v)).collect();
                views_to_json(&labeled).render().into_bytes()
            })
        })
    }

    /// Load a run, degrading on-disk damage to a structured error instead
    /// of a 500: a run whose manifest is fine but whose column file is
    /// missing, torn, or checksum-failed answers `410 Gone` (it existed;
    /// the store's next fsck pass will quarantine it) and bumps the
    /// `serve/corrupt_run` counter.
    fn load_run(&self, run: &str) -> Result<StoredRun, Response> {
        self.store.load(run).map_err(|e| match e {
            HrvizError::Parse { .. } | HrvizError::Io { .. } => {
                hrviz_obs::get().counter_add("serve/corrupt_run", 1);
                Response::error(410, &format!("run {run:?} is corrupt on disk ({e}); re-open the store or rerun fsck to quarantine it"))
            }
            other => Response::error(500, &other.to_string()),
        })
    }

    /// The aggregation-cache key for a stored run, `None` when the run is
    /// absent (or the id is not the 16-hex-digit form the store emits).
    fn run_key(&self, run: &str) -> Option<DataKey> {
        if !self.store.contains(run) {
            return None;
        }
        let hash = u64::from_str_radix(run, 16).ok()?;
        Some(DataKey { run: hash, generation: self.store.generation() })
    }

    /// A parsed dataset, through the bounded `(run, generation)` cache.
    fn dataset(&self, run: &str) -> Result<Arc<DataSet>, Response> {
        let key = (run.to_string(), self.store.generation());
        {
            let cache = self.datasets.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(ds) = cache.map.get(&key) {
                return Ok(Arc::clone(ds));
            }
        }
        let stored = self.load_run(run)?;
        let ds = Arc::new(stored.data.to_dataset());
        let mut cache = self.datasets.lock().unwrap_or_else(PoisonError::into_inner);
        if cache.map.insert(key.clone(), Arc::clone(&ds)).is_none() {
            cache.order.push_back(key);
            while cache.order.len() > DATASET_CACHE_CAP {
                if let Some(oldest) = cache.order.pop_front() {
                    cache.map.remove(&oldest);
                }
            }
        }
        Ok(ds)
    }
}

fn parse_spec(script: &str) -> Result<ProjectionSpec, Response> {
    parse_script(script).map_err(|e| Response::error(400, &format!("bad script: {e}")))
}

/// `GET /metricsz`: JSON snapshot by default, Prometheus text exposition
/// under `Accept: text/plain`.
fn metrics(req: &Request) -> Response {
    let snap = hrviz_obs::get().snapshot();
    if req.header("accept").is_some_and(|a| a.contains("text/plain")) {
        return Response::new(200)
            .header("Content-Type", hrviz_obs::PROMETHEUS_CONTENT_TYPE)
            .with_body(hrviz_obs::render_prometheus(&snap).into_bytes());
    }
    Response::json(snap.to_json().render())
}

/// `GET /tracez`: the most recent spans from the flight-recorder ring,
/// newest last. Uncacheable by design — it is a live debugging surface.
fn tracez() -> Response {
    let recs = hrviz_obs::get().recent_spans();
    let body = Json::obj([
        ("count", Json::U64(recs.len() as u64)),
        ("spans", Json::Arr(recs.iter().map(hrviz_obs::SpanRecord::to_json).collect())),
    ]);
    Response::json(body.render()).header("Cache-Control", "no-store")
}

fn manifest_json(m: &StoredManifest) -> Json {
    Json::obj([
        ("run", Json::Str(m.run.clone())),
        ("canonical", Json::Str(m.canonical.clone())),
        ("label", Json::Str(m.label.clone())),
        ("seed", Json::U64(m.seed)),
        ("events_processed", Json::U64(m.events_processed)),
        ("events_scheduled", Json::U64(m.events_scheduled)),
        ("end_time_ns", Json::U64(m.end_time_ns)),
        ("peak_queue_depth", Json::U64(m.peak_queue_depth)),
        ("delivered", Json::U64(m.delivered)),
        ("injected", Json::U64(m.injected)),
        ("dropped", Json::U64(m.dropped)),
        ("rerouted", Json::U64(m.rerouted)),
    ])
}

fn columns_json(data: &ColumnarDataSet, field: Field, only: Option<&str>) -> Vec<Json> {
    let tables: [(&str, &hrviz_core::ColumnTable); 4] = [
        (EntityKind::Router.name(), &data.routers),
        (EntityKind::LocalLink.name(), &data.local_links),
        (EntityKind::GlobalLink.name(), &data.global_links),
        (EntityKind::Terminal.name(), &data.terminals),
    ];
    tables
        .iter()
        .filter(|(name, _)| only.is_none_or(|o| o == *name))
        .filter_map(|(name, table)| {
            table.column(field).map(|values| {
                Json::obj([
                    ("table", Json::Str((*name).to_string())),
                    ("values", Json::Arr(values.iter().map(|&v| Json::F64(v)).collect())),
                ])
            })
        })
        .collect()
}
