// Fixture: the panic-free shape of the same exporter — Option plumbing
// and checked access pass cleanly inside the panic scope.
pub fn export_line(records: &[String], out: &mut Vec<u8>) -> Option<()> {
    let first = records.first()?;
    let comma = first.find(',')?;
    out.extend_from_slice(first.get(..comma)?.as_bytes());
    Some(())
}
