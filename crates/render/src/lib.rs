//! # hrviz-render — SVG rendering of hrviz view models
//!
//! The paper's system is an interactive web UI; this crate renders the
//! same views as deterministic SVG (see DESIGN.md substitution 3):
//!
//! * [`radial`] — hierarchical radial projection views with ring plots,
//!   partition arcs, and bundled link ribbons (Fig. 4c, 5, 7–11, 13),
//! * [`charts`] — link scatters and terminal parallel coordinates
//!   (Fig. 6b), timelines (Fig. 6c, 12), and grouped bars (Fig. 13d),
//! * [`matrix`] — the baseline router-to-router matrix heatmaps that
//!   §IV-B1 compares the ribbon encoding against,
//! * [`svg`] — the underlying document builder and polar-geometry
//!   helpers.
//!
//! Interaction (brushing, selection, time ranges) happens in
//! `hrviz-core`; re-rendering the updated view models yields the paper's
//! interactive loop frame by frame.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charts;
pub mod matrix;
pub mod radial;
pub mod svg;

pub use charts::{
    render_grouped_bars, render_link_scatter, render_parallel_coords, render_timeline, BarGroup,
};
pub use matrix::{render_matrix, MatrixView};
pub use radial::{render_radial, render_radial_row, RadialLayout};
pub use svg::{annular_sector, format_si, polar, ribbon_path, SvgDoc};
