//! Early-abort policies over the live slice stream.
//!
//! A policy sees every sealed [`Slice`] of one run and may declare the
//! run doomed; the sweep engine then records it `aborted` (a first-class
//! terminal lifecycle state) instead of burning the rest of its virtual
//! time. Policies are described by a cloneable [`AbortSpec`] — parsed
//! once from the CLI — and instantiated fresh per run, so per-run state
//! (consecutive-window streaks) never leaks across the grid.

use crate::slice::Slice;
use crate::SliceControl;
use hrviz_faults::HrvizError;

/// A per-run early-abort decision procedure.
pub trait AbortPolicy: Send {
    /// Observe one sealed slice; returning [`SliceControl::Abort`] stops
    /// the run.
    fn observe(&mut self, slice: &Slice) -> SliceControl;
}

/// Serializable description of an abort policy (one per sweep, built
/// fresh per run).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortSpec {
    /// Abort when delivered/injected bytes stay below a threshold for K
    /// consecutive windows — the saturation signature of a doomed config.
    Saturation {
        /// Minimum delivered/injected ratio, in permille.
        min_delivered_permille: u32,
        /// Consecutive below-threshold windows before aborting.
        consecutive: u32,
    },
}

impl AbortSpec {
    /// Parse a CLI policy string: `saturation` (defaults: 500‰ for 3
    /// windows) or `saturation:<permille>:<windows>`.
    pub fn parse(text: &str) -> Result<AbortSpec, HrvizError> {
        let mut parts = text.split(':');
        match parts.next() {
            Some("saturation") => {
                let permille = match parts.next() {
                    None => 500,
                    Some(raw) => raw.parse::<u32>().map_err(|_| {
                        HrvizError::usage(format!("bad abort-policy permille `{raw}`"))
                    })?,
                };
                let consecutive = match parts.next() {
                    None => 3,
                    Some(raw) => raw.parse::<u32>().map_err(|_| {
                        HrvizError::usage(format!("bad abort-policy window count `{raw}`"))
                    })?,
                };
                if parts.next().is_some() {
                    return Err(HrvizError::usage(format!("bad abort-policy `{text}`")));
                }
                if permille > 1000 || consecutive == 0 {
                    return Err(HrvizError::usage(
                        "abort-policy wants permille <= 1000 and windows >= 1",
                    ));
                }
                Ok(AbortSpec::Saturation { min_delivered_permille: permille, consecutive })
            }
            _ => Err(HrvizError::usage(format!(
                "unknown abort-policy `{text}` (try `saturation` or \
                 `saturation:<permille>:<windows>`)"
            ))),
        }
    }

    /// Canonical string form (inverse of [`AbortSpec::parse`]).
    pub fn render(&self) -> String {
        match self {
            AbortSpec::Saturation { min_delivered_permille, consecutive } => {
                format!("saturation:{min_delivered_permille}:{consecutive}")
            }
        }
    }

    /// Instantiate the per-run policy.
    pub fn build(&self) -> Box<dyn AbortPolicy> {
        match *self {
            AbortSpec::Saturation { min_delivered_permille, consecutive } => {
                Box::new(SaturationAbort::new(min_delivered_permille, consecutive))
            }
        }
    }
}

/// Aborts a run whose delivered/injected byte ratio stays below a
/// threshold for K consecutive windows with traffic offered.
pub struct SaturationAbort {
    min_delivered_permille: u32,
    consecutive: u32,
    streak: u32,
}

impl SaturationAbort {
    /// New policy with the given threshold (permille) and window count.
    pub fn new(min_delivered_permille: u32, consecutive: u32) -> SaturationAbort {
        SaturationAbort { min_delivered_permille, consecutive, streak: 0 }
    }
}

impl AbortPolicy for SaturationAbort {
    fn observe(&mut self, slice: &Slice) -> SliceControl {
        // Idle windows (nothing offered) say nothing about saturation.
        if slice.injected_bytes == 0 {
            self.streak = 0;
            return SliceControl::Continue;
        }
        let delivered_permille = slice.delivered_bytes.saturating_mul(1000) / slice.injected_bytes;
        if delivered_permille < u64::from(self.min_delivered_permille) {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        if self.streak >= self.consecutive {
            SliceControl::Abort(format!(
                "saturation: delivered/injected below {}‰ for {} consecutive windows",
                self.min_delivered_permille, self.consecutive
            ))
        } else {
            SliceControl::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slice(injected: u64, delivered: u64) -> Slice {
        Slice { injected_bytes: injected, delivered_bytes: delivered, ..Slice::default() }
    }

    #[test]
    fn parse_and_render_round_trip() {
        assert_eq!(
            AbortSpec::parse("saturation").unwrap(),
            AbortSpec::Saturation { min_delivered_permille: 500, consecutive: 3 }
        );
        let spec = AbortSpec::parse("saturation:250:2").unwrap();
        assert_eq!(spec.render(), "saturation:250:2");
        assert_eq!(AbortSpec::parse(&spec.render()).unwrap(), spec);
        for bad in
            ["", "nope", "saturation:x", "saturation:2000:1", "saturation:1:0", "saturation:1:2:3"]
        {
            assert!(AbortSpec::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn aborts_after_consecutive_starved_windows_only() {
        let mut p = SaturationAbort::new(500, 3);
        // Two starved windows, then a healthy one: streak resets.
        assert_eq!(p.observe(&slice(1000, 100)), SliceControl::Continue);
        assert_eq!(p.observe(&slice(1000, 100)), SliceControl::Continue);
        assert_eq!(p.observe(&slice(1000, 900)), SliceControl::Continue);
        // Three in a row trips it.
        assert_eq!(p.observe(&slice(1000, 100)), SliceControl::Continue);
        assert_eq!(p.observe(&slice(1000, 100)), SliceControl::Continue);
        assert!(matches!(p.observe(&slice(1000, 100)), SliceControl::Abort(_)));
    }

    #[test]
    fn idle_windows_reset_the_streak() {
        let mut p = SaturationAbort::new(500, 2);
        assert_eq!(p.observe(&slice(1000, 0)), SliceControl::Continue);
        assert_eq!(p.observe(&slice(0, 0)), SliceControl::Continue);
        assert_eq!(p.observe(&slice(1000, 0)), SliceControl::Continue);
        assert!(matches!(p.observe(&slice(1000, 0)), SliceControl::Abort(_)));
    }
}
