//! Implementation of the `hrviz` command-line tool.
//!
//! ```text
//! hrviz view    --terminals 2550 --pattern tornado --routing adaptive \
//!               [--script view.hrviz] [--svg out/view.svg]
//! hrviz trace   --in trace.csv --terminals 2550 --routing minimal \
//!               [--script view.hrviz] [--svg out/view.svg]
//! hrviz compare --terminals 2550 --pattern tornado \
//!               --routing minimal,adaptive [--store DIR] [--svg out/cmp.svg]
//! hrviz sweep   --terminals 72 --routings minimal,adaptive \
//!               --patterns uniform-random,tornado --seeds 1,2 \
//!               --store out/store --workers 4
//! hrviz check   view.hrviz
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs after a
//! subcommand) to keep the dependency set at zero.
//!
//! [`run`] returns a typed [`RunOutput`] — summary text, the artifact
//! paths the command wrote, and named numeric metrics — whose `Display`
//! form is exactly the text older versions returned as a bare `String`.
//!
//! Every failure is a structured [`HrvizError`]; `main` maps the error
//! class to a distinct nonzero exit code (usage 2, config 3, io 4,
//! parse 5, sim 6).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use hrviz_bench::gate::{run_gate, GateConfig};
use hrviz_core::{
    build_view, compare_views, compare_views_cached, parse_script, AggregateCache, DataKey,
    DataSet, EntityKind, Field, LevelSpec, ProjectionGraph, ProjectionSpec, ProjectionView,
    RibbonSpec, ViewRequest,
};
use hrviz_network::{
    CheckpointOptions, DragonflyConfig, FaultSchedule, HrvizError, JobMeta, LinkClass, NetworkSpec,
    RoutingAlgorithm, RunData, Simulation, TerminalId,
};
use hrviz_obs::{Collector, LogLevel};
use hrviz_pdes::SimTime;
use hrviz_render::{render_radial, render_radial_row, RadialLayout};
use hrviz_serve::{install_signal_shutdown, ServeConfig, Server};
use hrviz_sweep::{
    dragonfly_of, read_progress, read_slices, AbortSpec, FaultAxis, RunStore, StoredManifest,
    StreamOptions, SweepEngine, SweepOptions, SweepSpec, TopologyAxis,
};
use hrviz_workloads::{generate_synthetic, load_trace, SyntheticConfig, TrafficPattern};
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

/// A parsed command line: subcommand + `--key value` options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// The subcommand (`view`, `trace`, `compare`, `check`).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: BTreeMap<String, String>,
}

fn err<T>(msg: impl Into<String>) -> Result<T, HrvizError> {
    Err(HrvizError::usage(msg))
}

/// The typed result of a CLI command.
///
/// `Display` reproduces the exact text the old `run -> String` API
/// returned: the summary, then one `wrote <path>` line per artifact.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunOutput {
    /// Human-readable summary (ends with a newline when artifacts follow).
    pub summary: String,
    /// Files or directories the command wrote, in creation order.
    pub artifacts: Vec<PathBuf>,
    /// Named numeric results (event counts, byte totals, cache counters).
    pub metrics: Vec<(String, f64)>,
}

impl RunOutput {
    /// An output that is pure text (no artifacts, no metrics).
    pub fn text(summary: impl Into<String>) -> RunOutput {
        RunOutput { summary: summary.into(), ..RunOutput::default() }
    }

    /// Append an artifact path.
    pub fn artifact(mut self, path: impl Into<PathBuf>) -> RunOutput {
        self.artifacts.push(path.into());
        self
    }

    /// Append a named metric.
    pub fn metric(mut self, name: impl Into<String>, value: f64) -> RunOutput {
        self.metrics.push((name.into(), value));
        self
    }

    /// Look up a metric by name.
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

impl fmt::Display for RunOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary)?;
        for (i, path) in self.artifacts.iter().enumerate() {
            if i > 0 {
                f.write_str("\n")?;
            }
            write!(f, "wrote {}", path.display())?;
        }
        Ok(())
    }
}

/// Flags that take no value: presence alone means `true`.
const BOOL_FLAGS: &[&str] = &["resume"];

/// Parse an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Cli, HrvizError> {
    let Some(command) = args.first() else {
        return err(USAGE);
    };
    let mut positional = Vec::new();
    let mut options = BTreeMap::new();
    let mut i = 1;
    while let Some(a) = args.get(i) {
        if let Some(key) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                options.insert(key.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let Some(value) = args.get(i + 1) else {
                return err(format!("--{key} needs a value"));
            };
            options.insert(key.to_string(), value.clone());
            i += 2;
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok(Cli { command: command.clone(), positional, options })
}

/// Usage text.
pub const USAGE: &str =
    "usage: hrviz <view|trace|compare|sweep|serve|fsck|watch|bench-gate|check> [options]
  view    --terminals N --pattern P --routing R [--msgs N] [--bytes N]
          [--period-us N] [--script FILE] [--svg FILE] [--seed N]
          [--lod 0..2] [--max-depth N] [--max-items N] [--page-size N]
          (the projection graph lands next to the SVG as FILE.graph.json)
          [--checkpoint-every US --store DIR (periodic engine checkpoints
           into <store>/checkpoints/)] [--restore-from FILE (resume a
           checkpointed run; bit-identical to straight-through)]
  trace   --in FILE --terminals N --routing R [--script FILE] [--svg FILE]
  compare --terminals N --pattern P --routing R1,R2[,..] [--script FILE] [--svg FILE]
          [--lod 0..2] [--max-depth N] [--max-items N] [--page-size N]
          [--store DIR (reuse/persist runs in a content-addressed store)]
          [--workers N]
  sweep   --terminals N | --fattree K
          [--routings R1,R2[,..]] [--patterns P1,P2[,..]] [--seeds S1,S2[,..]]
          [--store DIR] [--workers N] [--report DIR] [--name NAME]
          [--msgs N] [--bytes N] [--period-us N]
          [--shards N (spread the store over N consistent-hashed shard
           directories with independent generation counters)]
          [--resume (skip completed runs, retry failed/orphaned ones with
           deterministic seeded backoff — safe after a kill -9)]
          [--slice-every-us N (live telemetry: seal a counter slice per N
           microseconds of virtual time into each run's slices/ dir)]
          [--abort-policy saturation[:PERMILLE:WINDOWS] (cancel runs the
           policy judges saturated; implies --slice-every-us 5)]
          (--faults FILE sweeps a faulty axis point next to the healthy one)
  fsck    --store DIR (run the store recovery pass and print its JSON
          report; a dirty store — quarantines, orphans, failures — exits 7)
  watch   --store DIR --run ID [--poll-ms N] [--max-s N]
          (tail a streamed run's sealed slices until it turns terminal)
  serve   --store DIR [--addr HOST:PORT] [--workers N] [--queue-depth N]
          [--max-conns N] [--timeout-ms N] [--keepalive-requests N]
          (HTTP endpoints: /runs /runs/{id}/columns/{field} /views /compare
           /runs/{id}/progress /runs/{id}/stream /healthz /metricsz;
           SIGINT drains and exits 0)
  bench-gate [--out DIR] [--tolerance F] [--window N]
          (judge out/BENCH_*.json against out/PERF_HISTORY.jsonl and append;
           a tracked metric past tolerance vs the rolling baseline exits 7)
  check   FILE
common: --trace-out FILE (write a JSONL telemetry trace; a Chrome
          trace-event file lands next to it as FILE.chrome.json —
          $HRVIZ_TRACE=1|PATH does the same without the flag)
        --log-level error|warn|info|debug|trace
sim:    --faults FILE (fault schedule JSON, applied to every run)
        --hop-limit N (per-packet hop budget before a counted drop, default 16)
patterns: uniform-random nearest-neighbor all-to-all transpose
          bit-complement tornado permutation
routings: minimal nonminimal adaptive progressive-adaptive";

/// Flags every subcommand accepts.
const COMMON_FLAGS: &[&str] = &["trace-out", "log-level"];

/// The per-subcommand flag allowlist (`None` = unknown subcommand, reported
/// separately by [`run`]).
fn allowed_flags(command: &str) -> Option<&'static [&'static str]> {
    match command {
        "view" => Some(&[
            "terminals",
            "pattern",
            "routing",
            "msgs",
            "bytes",
            "period-us",
            "seed",
            "stride",
            "script",
            "svg",
            "faults",
            "hop-limit",
            "checkpoint-every",
            "restore-from",
            "store",
            "lod",
            "max-depth",
            "max-items",
            "page-size",
        ]),
        "compare" => Some(&[
            "terminals",
            "pattern",
            "routing",
            "msgs",
            "bytes",
            "period-us",
            "seed",
            "stride",
            "script",
            "svg",
            "faults",
            "hop-limit",
            "store",
            "workers",
            "lod",
            "max-depth",
            "max-items",
            "page-size",
        ]),
        "sweep" => Some(&[
            "terminals",
            "fattree",
            "pattern",
            "patterns",
            "routing",
            "routings",
            "seeds",
            "msgs",
            "bytes",
            "period-us",
            "faults",
            "store",
            "workers",
            "report",
            "name",
            "resume",
            "shards",
            "slice-every-us",
            "abort-policy",
        ]),
        "fsck" => Some(&["store"]),
        "watch" => Some(&["store", "run", "poll-ms", "max-s"]),
        "serve" => Some(&[
            "store",
            "addr",
            "workers",
            "queue-depth",
            "max-conns",
            "timeout-ms",
            "keepalive-requests",
        ]),
        "bench-gate" => Some(&["out", "tolerance", "window"]),
        "trace" => Some(&["in", "terminals", "routing", "script", "svg", "faults", "hop-limit"]),
        "check" => Some(&[]),
        "help" | "--help" | "-h" => Some(&[]),
        _ => None,
    }
}

/// Reject flags the subcommand does not understand, naming the ones it does.
fn validate_flags(cli: &Cli) -> Result<(), HrvizError> {
    let Some(allowed) = allowed_flags(&cli.command) else {
        return Ok(()); // unknown subcommand: handled with its own error
    };
    for key in cli.options.keys() {
        if !allowed.contains(&key.as_str()) && !COMMON_FLAGS.contains(&key.as_str()) {
            let mut known: Vec<&str> = allowed.iter().chain(COMMON_FLAGS).copied().collect();
            known.sort_unstable();
            let listed: Vec<String> = known.iter().map(|f| format!("--{f}")).collect();
            return err(format!(
                "unknown flag --{key} for '{}'; accepted flags: {}",
                cli.command,
                listed.join(" ")
            ));
        }
    }
    Ok(())
}

/// Build the run's collector from `--trace-out` / `--log-level` /
/// `$HRVIZ_TRACE`. Any of them enables telemetry; with no trace file,
/// events go to an in-memory sink and logs still reach stderr. Returns
/// the trace path (when one is being written) so [`run`] can drop the
/// Chrome trace-event export next to it on exit.
fn collector_of(cli: &Cli) -> Result<(Collector, Option<PathBuf>), HrvizError> {
    // The flag wins over the environment, matching the bench harness.
    let trace_out =
        cli.options.get("trace-out").cloned().or_else(|| match std::env::var("HRVIZ_TRACE") {
            Ok(v) if v == "1" => Some("out/trace.jsonl".into()),
            Ok(v) if !v.is_empty() => Some(v),
            _ => None,
        });
    let log_level = cli.options.get("log-level");
    let (c, trace_path) = match trace_out {
        Some(path) => {
            let path = PathBuf::from(path);
            let c = Collector::with_trace_file(&path)
                .map_err(|e| HrvizError::io(path.display().to_string(), e))?;
            (c, Some(path))
        }
        None if log_level.is_some() => (Collector::enabled(), None),
        None => (Collector::disabled(), None),
    };
    if let Some(lv) = log_level {
        let level = LogLevel::parse(lv).ok_or_else(|| {
            HrvizError::usage(format!(
                "unknown log level {lv:?}; use error, warn, info, debug or trace"
            ))
        })?;
        c.set_level(level);
    }
    Ok((c, trace_path))
}

fn routing_of(s: &str) -> Result<RoutingAlgorithm, HrvizError> {
    Ok(match s {
        "minimal" => RoutingAlgorithm::Minimal,
        "nonminimal" | "valiant" => RoutingAlgorithm::NonMinimal,
        "adaptive" | "ugal" => RoutingAlgorithm::adaptive_default(),
        "progressive-adaptive" | "par" => RoutingAlgorithm::par_default(),
        other => return err(format!("unknown routing {other:?}")),
    })
}

fn pattern_of(s: &str) -> Result<TrafficPattern, HrvizError> {
    Ok(match s {
        "uniform-random" | "ur" => TrafficPattern::UniformRandom,
        "nearest-neighbor" | "nn" => TrafficPattern::NearestNeighbor,
        "all-to-all" => TrafficPattern::AllToAll,
        "transpose" => TrafficPattern::Transpose,
        "bit-complement" => TrafficPattern::BitComplement,
        "tornado" => TrafficPattern::Tornado,
        "permutation" => TrafficPattern::Permutation,
        other => return err(format!("unknown pattern {other:?}")),
    })
}

fn terminals_of(cli: &Cli) -> Result<DragonflyConfig, HrvizError> {
    let n: u32 = cli
        .options
        .get("terminals")
        .ok_or_else(|| HrvizError::usage("--terminals is required"))?
        .parse()
        .map_err(|_| HrvizError::usage("--terminals must be a number"))?;
    match n {
        2_550 | 5_256 | 9_702 => DragonflyConfig::try_paper_scale(n),
        _ => {
            // Find the canonical h whose terminal count matches, else error.
            for h in 1..=16 {
                let c = DragonflyConfig::canonical(h);
                if c.num_terminals() == n {
                    return Ok(c);
                }
            }
            Err(HrvizError::config(format!(
                "no canonical Dragonfly with {n} terminals; use a paper scale \
                 (2550/5256/9702) or a canonical size (g*a*p for a=2h, p=h)"
            )))
        }
    }
}

fn u64_opt(cli: &Cli, key: &str, default: u64) -> Result<u64, HrvizError> {
    match cli.options.get(key) {
        Some(v) => v.parse().map_err(|_| HrvizError::usage(format!("--{key} must be a number"))),
        None => Ok(default),
    }
}

/// The sweep topology: `--terminals N` (Dragonfly) or `--fattree K`.
fn topology_of(cli: &Cli) -> Result<TopologyAxis, HrvizError> {
    match (cli.options.get("terminals"), cli.options.get("fattree")) {
        (Some(_), Some(_)) => err("--terminals and --fattree are mutually exclusive"),
        (Some(n), None) => {
            let terminals =
                n.parse().map_err(|_| HrvizError::usage("--terminals must be a number"))?;
            dragonfly_of(terminals)?; // validate the size eagerly
            Ok(TopologyAxis::Dragonfly { terminals })
        }
        (None, Some(k)) => Ok(TopologyAxis::FatTree {
            k: k.parse().map_err(|_| HrvizError::usage("--fattree must be a number"))?,
        }),
        (None, None) => err("--terminals N or --fattree K is required"),
    }
}

/// First present of `keys`, split on commas.
fn csv_opt<'a>(cli: &'a Cli, keys: &[&str]) -> Option<Vec<&'a str>> {
    keys.iter()
        .find_map(|k| cli.options.get(*k))
        .map(|v| v.split(',').map(str::trim).filter(|s| !s.is_empty()).collect())
}

/// Shared sweep-grid parsing for `sweep` and `compare --store`. When
/// `fault_baseline` is set, `--faults FILE` sweeps the schedule *next to*
/// a healthy axis point (doubling the grid); otherwise the schedule is the
/// only fault axis point, matching `--faults` semantics elsewhere.
fn sweep_spec_of(
    cli: &Cli,
    default_name: &str,
    fault_baseline: bool,
) -> Result<SweepSpec, HrvizError> {
    let routings: Vec<RoutingAlgorithm> = csv_opt(cli, &["routings", "routing"])
        .unwrap_or_else(|| vec!["minimal"])
        .into_iter()
        .map(routing_of)
        .collect::<Result<_, _>>()?;
    let patterns: Vec<TrafficPattern> = csv_opt(cli, &["patterns", "pattern"])
        .unwrap_or_else(|| vec!["uniform-random"])
        .into_iter()
        .map(pattern_of)
        .collect::<Result<_, _>>()?;
    let seeds: Vec<u64> = match csv_opt(cli, &["seeds", "seed"]) {
        None => vec![42],
        Some(list) => list
            .into_iter()
            .map(|s| s.parse().map_err(|_| HrvizError::usage("--seeds must be numbers")))
            .collect::<Result<_, _>>()?,
    };
    let name = cli.options.get("name").cloned().unwrap_or_else(|| default_name.to_string());
    let mut spec = SweepSpec::new(name, topology_of(cli)?)
        .routings(routings)
        .patterns(patterns)
        .seeds(seeds)
        .msgs_per_rank(u64_opt(cli, "msgs", 16)? as u32)
        .msg_bytes(u64_opt(cli, "bytes", 16 * 1024)? as u32)
        .period(SimTime::micros(u64_opt(cli, "period-us", 4)?));
    if let Some(path) = cli.options.get("faults") {
        let schedule = FaultSchedule::from_file(path)?;
        let faulted = FaultAxis::schedule("faulted", schedule);
        spec = spec.faults(if fault_baseline {
            vec![FaultAxis::none(), faulted]
        } else {
            vec![faulted]
        });
    }
    Ok(spec)
}

/// Summary block for a run loaded from the store (same shape as
/// [`summarize`], minus the per-class rows the manifest does not keep).
fn summarize_manifest(m: &StoredManifest) -> String {
    let mut s = format!(
        "events {}  end {} ns  delivered {}/{} bytes\n",
        m.events_processed, m.end_time_ns, m.delivered, m.injected,
    );
    if m.dropped > 0 || m.rerouted > 0 {
        s.push_str(&format!(
            "  faults: dropped {} packet(s)  rerouted {} packet(s)\n",
            m.dropped, m.rerouted
        ));
    }
    s
}

/// The default projection script applied when `--script` is omitted.
pub const DEFAULT_SCRIPT: &str = r#"
{ project : "local_link",
  aggregate : "router_rank",
  vmap : { color : "sat_time" },
  colors : ["white", "steelblue"],
  ribbons : { project : "local_link", size : "traffic", color : "sat_time" } },
{ project : "global_link",
  aggregate : ["router_rank", "router_port"],
  vmap : { color : "sat_time", size : "traffic" },
  colors : ["white", "purple"] },
{ project : "terminal",
  aggregate : ["router_id"],
  vmap : { color : "avg_latency", size : "avg_hops" },
  colors : ["white", "purple"] }
"#;

fn spec_of(cli: &Cli) -> Result<ProjectionSpec, HrvizError> {
    match cli.options.get("script") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| HrvizError::io(path.clone(), e))?;
            parse_script(&text).map_err(|e| HrvizError::parse(path.clone(), e.to_string()))
        }
        None => parse_script(DEFAULT_SCRIPT)
            .map_err(|e| HrvizError::parse("default script", e.to_string())),
    }
}

/// Map CLI flags to request-parameter keys (`--max-depth` → `max_depth`).
const REQUEST_FLAGS: &[(&str, &str)] = &[
    ("lod", "lod"),
    ("max-depth", "max_depth"),
    ("max-items", "max_items"),
    ("page-size", "page_size"),
];

/// Parse the view/compare request through the same typed path serve uses
/// ([`ViewRequest::parse`]): one code path decides what a valid `--lod`,
/// `--max-depth` or `--page-size` is on both surfaces.
fn view_request_of(cli: &Cli, compare: bool) -> Result<ViewRequest, HrvizError> {
    let (script, origin) = match cli.options.get("script") {
        Some(path) => (
            std::fs::read_to_string(path).map_err(|e| HrvizError::io(path.clone(), e))?,
            path.clone(),
        ),
        None => (DEFAULT_SCRIPT.to_string(), "default script".to_string()),
    };
    let mut params = BTreeMap::new();
    for (flag, key) in REQUEST_FLAGS {
        if let Some(v) = cli.options.get(*flag) {
            params.insert((*key).to_string(), v.clone());
        }
    }
    ViewRequest::parse(&params, &script, compare, false).map_err(|e| {
        if e.code == "bad_script" {
            HrvizError::parse(origin.clone(), e.message.clone())
        } else {
            HrvizError::usage(format!("--{}: {}", e.field.replace('_', "-"), e.message))
        }
    })
}

/// Build the projection graph for a simulation-backed view/compare and
/// write its envelope (the same schema-2 page serve answers) next to the
/// SVG as `<svg>.graph.json`. With `--page-size 0` (the default) the
/// envelope holds every node; otherwise the first page.
fn write_graph(
    svg_path: &str,
    vreq: &ViewRequest,
    single: Option<&ProjectionView>,
    labeled: &[(&str, &ProjectionView)],
) -> Result<(PathBuf, usize), HrvizError> {
    let source_hash =
        hrviz_obs::fingerprint64(&format!("|{:016x}", hrviz_obs::fingerprint64(&vreq.script)));
    let graph = match single {
        Some(view) => ProjectionGraph::build(view, &vreq.policy, source_hash),
        None => ProjectionGraph::build_compare(labeled, &vreq.policy, source_hash),
    };
    let body = graph.page_to_json(0, vreq.page_size, None).render();
    let path = std::path::Path::new(svg_path).with_extension("graph.json");
    std::fs::write(&path, body).map_err(|e| HrvizError::io(path.display().to_string(), e))?;
    Ok((path, graph.len()))
}

fn summarize(run: &RunData) -> String {
    let pkts: u64 = run.terminals.iter().map(|t| t.packets_finished).sum();
    let lat =
        run.terminals.iter().map(|t| t.avg_latency_ns * t.packets_finished as f64).sum::<f64>()
            / pkts.max(1) as f64;
    let mut s = format!(
        "events {}  end {}  delivered {}/{} bytes  mean latency {:.1} us\n",
        run.events_processed,
        run.end_time,
        run.total_delivered(),
        run.total_injected(),
        lat / 1e3,
    );
    for class in LinkClass::ALL {
        s.push_str(&format!(
            "  {:<8} traffic {:>14} B  saturation {:>14} ns\n",
            class.label(),
            run.class_traffic(class),
            run.class_sat_ns(class)
        ));
    }
    if run.total_dropped() > 0 || run.total_rerouted() > 0 {
        s.push_str(&format!(
            "  faults: dropped {} packet(s)  rerouted {} packet(s)\n",
            run.total_dropped(),
            run.total_rerouted()
        ));
    }
    s
}

/// Apply `--faults` / `--hop-limit` to a network spec + simulation pair.
fn faulted_sim(cli: &Cli, mut spec: NetworkSpec) -> Result<Simulation, HrvizError> {
    if let Some(v) = cli.options.get("hop-limit") {
        spec.hop_limit =
            v.parse().map_err(|_| HrvizError::usage("--hop-limit must be a number in 1..=255"))?;
    }
    let mut sim = Simulation::try_new(spec)?;
    if let Some(path) = cli.options.get("faults") {
        sim = sim.with_faults(FaultSchedule::from_file(path)?);
    }
    Ok(sim)
}

fn simulate(cli: &Cli, routing: RoutingAlgorithm) -> Result<RunData, HrvizError> {
    Ok(simulate_checkpointed(cli, routing)?.0)
}

/// Like [`simulate`], honoring `--checkpoint-every` / `--restore-from`:
/// periodic engine snapshots land in `<store>/checkpoints/` (atomic
/// temp+rename writes) and the returned paths are reported as artifacts.
fn simulate_checkpointed(
    cli: &Cli,
    routing: RoutingAlgorithm,
) -> Result<(RunData, Vec<PathBuf>), HrvizError> {
    let cfg = terminals_of(cli)?;
    let pattern = pattern_of(
        cli.options.get("pattern").ok_or_else(|| HrvizError::usage("--pattern is required"))?,
    )?;
    let msgs = u64_opt(cli, "msgs", 16)? as u32;
    let bytes = u64_opt(cli, "bytes", 16 * 1024)? as u32;
    let period = SimTime::micros(u64_opt(cli, "period-us", 4)?);
    let seed = u64_opt(cli, "seed", 42)?;
    let spec = NetworkSpec::new(cfg).with_routing(routing).with_seed(seed);
    let mut sim = faulted_sim(cli, spec)?;
    let all: Vec<TerminalId> = (0..cfg.num_terminals()).map(TerminalId).collect();
    let meta = JobMeta { name: pattern.name().into(), terminals: all };
    let job = sim.add_job(meta.clone());
    let mut scfg =
        SyntheticConfig { pattern, msg_bytes: bytes, msgs_per_rank: msgs, period, stride: 1, seed };
    if let Some(s) = cli.options.get("stride") {
        scfg.stride = s.parse().map_err(|_| HrvizError::usage("--stride must be a number"))?;
    }
    sim.inject_all(generate_synthetic(job, &meta, &scfg));
    let sim = sim.with_collector(hrviz_obs::get());

    let every = match cli.options.get("checkpoint-every") {
        Some(v) => Some(SimTime::micros(v.parse().map_err(|_| {
            HrvizError::usage("--checkpoint-every must be a number of microseconds")
        })?)),
        None => None,
    };
    let restore = match cli.options.get("restore-from") {
        Some(p) => Some(std::fs::read(p).map_err(|e| HrvizError::io(p.clone(), e))?),
        None => None,
    };
    if every.is_none() && restore.is_none() {
        return Ok((sim.try_run()?, Vec::new()));
    }
    let store_dir = cli.options.get("store").cloned().unwrap_or_else(|| "out/store".to_string());
    let dir = PathBuf::from(&store_dir).join("checkpoints");
    std::fs::create_dir_all(&dir).map_err(|e| HrvizError::io(dir.display().to_string(), e))?;
    let label = format!("{}-{}-{}t-s{seed}", pattern.name(), routing.name(), cfg.num_terminals());
    let mut written = Vec::new();
    let run = sim.try_run_checkpointed(
        CheckpointOptions { restore_from: restore.as_deref(), every },
        &mut |t, snap| {
            let path = dir.join(format!("{label}-t{:020}.ckpt", t.as_nanos()));
            let tmp = dir.join(format!("{label}-t{:020}.ckpt.tmp", t.as_nanos()));
            std::fs::write(&tmp, snap).map_err(|e| HrvizError::io(tmp.display().to_string(), e))?;
            std::fs::rename(&tmp, &path)
                .map_err(|e| HrvizError::io(path.display().to_string(), e))?;
            written.push(path);
            Ok(())
        },
    )?;
    Ok((run, written))
}

fn write_svg(cli: &Cli, default_name: &str, svg: String) -> Result<String, HrvizError> {
    let fallback = format!("out/{default_name}");
    let path = cli.options.get("svg").cloned().unwrap_or(fallback);
    if let Some(dir) = std::path::Path::new(&path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&path, svg).map_err(|e| HrvizError::io(path.clone(), e))?;
    Ok(path)
}

/// Run metrics shared by `view` and `trace`.
fn run_metrics(out: RunOutput, run: &RunData) -> RunOutput {
    out.metric("events", run.events_processed as f64)
        .metric("delivered_bytes", run.total_delivered() as f64)
        .metric("injected_bytes", run.total_injected() as f64)
        .metric("dropped_packets", run.total_dropped() as f64)
        .metric("rerouted_packets", run.total_rerouted() as f64)
}

/// `--slice-every-us` / `--abort-policy` → [`StreamOptions`]. Either flag
/// enables streaming; an abort policy without an explicit window defaults
/// to 5 µs slices (a policy needs slices to observe).
fn stream_options_of(cli: &Cli) -> Result<Option<StreamOptions>, HrvizError> {
    let window_us = cli
        .options
        .get("slice-every-us")
        .map(|w| {
            w.parse::<u64>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| HrvizError::usage("--slice-every-us must be a positive number"))
        })
        .transpose()?;
    let abort = cli.options.get("abort-policy").map(|p| AbortSpec::parse(p)).transpose()?;
    Ok(match (window_us, abort) {
        (None, None) => None,
        (window_us, abort) => {
            Some(StreamOptions { window: SimTime::micros(window_us.unwrap_or(5)), abort })
        }
    })
}

/// Run a parsed command.
pub fn run(cli: &Cli) -> Result<RunOutput, HrvizError> {
    validate_flags(cli)?;
    let (mut collector, trace_path) = collector_of(cli)?;
    // A server's /metricsz must be live regardless of tracing flags.
    if cli.command == "serve" && !collector.is_enabled() {
        collector = Collector::enabled();
    }
    hrviz_obs::install(collector.clone());
    let mut result = dispatch(cli);
    // Final snapshot + flush even on error paths: a failed run's trace
    // is exactly the one worth keeping.
    collector.finalize().map_err(|e| HrvizError::io("trace output", e))?;
    if let Some(path) = trace_path {
        let chrome_path = path.with_extension("chrome.json");
        let wrote = hrviz_obs::chrome::export(&collector, &chrome_path)
            .map_err(|e| HrvizError::io(chrome_path.display().to_string(), e))?;
        if wrote {
            if let Ok(out) = &mut result {
                out.artifacts.push(chrome_path);
            }
        }
    }
    result
}

fn dispatch(cli: &Cli) -> Result<RunOutput, HrvizError> {
    match cli.command.as_str() {
        "view" => {
            let routing =
                routing_of(cli.options.get("routing").map(String::as_str).unwrap_or("adaptive"))?;
            let (run, checkpoints) = simulate_checkpointed(cli, routing)?;
            let vreq = view_request_of(cli, false)?;
            let ds = DataSet::builder(&run).build();
            let view =
                build_view(&ds, &vreq.spec).map_err(|e| HrvizError::config(e.to_string()))?;
            let svg = render_radial(&view, &RadialLayout::default(), "hrviz view");
            let path = write_svg(cli, "view.svg", svg)?;
            let (graph_path, graph_nodes) = write_graph(&path, &vreq, Some(&view), &[])?;
            let n_ckpts = checkpoints.len();
            let mut out = RunOutput::text(summarize(&run)).artifact(path).artifact(graph_path);
            out.artifacts.extend(checkpoints);
            let out = out.metric("graph_nodes", graph_nodes as f64);
            let mut out = run_metrics(out, &run);
            if n_ckpts > 0 || cli.options.contains_key("restore-from") {
                out = out.metric("checkpoints", n_ckpts as f64);
            }
            Ok(out)
        }
        "trace" => {
            let input =
                cli.options.get("in").ok_or_else(|| HrvizError::usage("--in is required"))?;
            let msgs = load_trace(std::path::Path::new(input))
                .map_err(|e| HrvizError::parse(input.clone(), e.to_string()))?;
            let cfg = terminals_of(cli)?;
            let routing =
                routing_of(cli.options.get("routing").map(String::as_str).unwrap_or("adaptive"))?;
            let mut sim = faulted_sim(cli, NetworkSpec::new(cfg).with_routing(routing))?
                .with_collector(hrviz_obs::get());
            sim.inject_all(msgs);
            let run = sim.try_run()?;
            let spec = spec_of(cli)?;
            let ds = DataSet::builder(&run).build();
            let view = build_view(&ds, &spec).map_err(|e| HrvizError::config(e.to_string()))?;
            let svg = render_radial(&view, &RadialLayout::default(), input);
            let path = write_svg(cli, "trace.svg", svg)?;
            Ok(run_metrics(RunOutput::text(summarize(&run)).artifact(path), &run))
        }
        "compare" => {
            let routings: Vec<RoutingAlgorithm> = cli
                .options
                .get("routing")
                .ok_or_else(|| HrvizError::usage("--routing R1,R2 is required"))?
                .split(',')
                .map(routing_of)
                .collect::<Result<_, _>>()?;
            if routings.len() < 2 {
                return err("compare needs at least two routings (comma-separated)");
            }
            if cli.options.contains_key("store") {
                return compare_from_store(cli, &routings);
            }
            let vreq = view_request_of(cli, true)?;
            let runs: Vec<RunData> =
                routings.iter().map(|&r| simulate(cli, r)).collect::<Result<_, _>>()?;
            let datasets: Vec<DataSet> = runs.iter().map(|r| DataSet::builder(r).build()).collect();
            let refs: Vec<&DataSet> = datasets.iter().collect();
            let views =
                compare_views(&refs, &vreq.spec).map_err(|e| HrvizError::config(e.to_string()))?;
            let labeled: Vec<(&_, &str)> =
                views.iter().zip(routings.iter().map(|r| r.name())).collect();
            let svg = render_radial_row(&labeled, &RadialLayout::default(), "hrviz compare");
            let path = write_svg(cli, "compare.svg", svg)?;
            let named: Vec<(&str, &ProjectionView)> =
                routings.iter().map(|r| r.name()).zip(views.iter()).collect();
            let (graph_path, graph_nodes) = write_graph(&path, &vreq, None, &named)?;
            let mut out = String::new();
            for (r, run) in routings.iter().zip(&runs) {
                out.push_str(&format!("--- {} ---\n{}", r.name(), summarize(run)));
            }
            let mut typed = RunOutput::text(out)
                .artifact(path)
                .artifact(graph_path)
                .metric("graph_nodes", graph_nodes as f64);
            for (r, run) in routings.iter().zip(&runs) {
                typed = typed.metric(format!("{}/events", r.name()), run.events_processed as f64);
            }
            Ok(typed)
        }
        "sweep" => {
            let spec = sweep_spec_of(cli, "cli", true)?;
            let workers = u64_opt(cli, "workers", 0)? as usize;
            let resume = cli.options.contains_key("resume");
            let store_dir =
                cli.options.get("store").cloned().unwrap_or_else(|| "out/store".to_string());
            let store = match cli.options.get("shards") {
                Some(n) => {
                    let shards: u32 =
                        n.parse().map_err(|_| HrvizError::usage("--shards must be a number"))?;
                    RunStore::open_sharded(&store_dir, shards)?
                }
                None => RunStore::open(&store_dir)?,
            };
            let engine = SweepEngine::new(store).with_workers(workers);
            let stream = stream_options_of(cli)?;
            let base = if resume { SweepOptions::resume() } else { SweepOptions::default() };
            let opts = SweepOptions { stream, ..base };
            let outcome = engine.run_with(&spec, &opts)?;
            let report_dir = cli.options.get("report").cloned().unwrap_or_else(|| "out".into());
            let report = outcome.write(std::path::Path::new(&report_dir))?;
            let mut summary = format!(
                "sweep {}: {} configs, {} cached, {} simulated on {} worker(s)\n\
                 events {}  store generation {}\n",
                outcome.name,
                outcome.configs,
                outcome.store_hits,
                outcome.store_misses,
                outcome.workers,
                outcome.events_simulated,
                outcome.generation,
            );
            if resume {
                summary.push_str(&format!(
                    "resume: {} interrupted run(s) retried, {} extra attempt(s)\n",
                    outcome.resumed_runs, outcome.retries,
                ));
            }
            if stream.is_some() || outcome.aborted > 0 {
                summary
                    .push_str(&format!("stream: {} run(s) aborted by policy\n", outcome.aborted));
            }
            Ok(RunOutput::text(summary)
                .artifact(report)
                .artifact(store_dir)
                .metric("configs", outcome.configs as f64)
                .metric("store_hits", outcome.store_hits as f64)
                .metric("store_misses", outcome.store_misses as f64)
                .metric("resumed_runs", outcome.resumed_runs as f64)
                .metric("retries", outcome.retries as f64)
                .metric("aborted", outcome.aborted as f64)
                .metric("events_simulated", outcome.events_simulated as f64))
        }
        "fsck" => {
            let Some(store_dir) = cli.options.get("store") else {
                return err("fsck needs --store DIR (a sweep run store)");
            };
            // Opening the store *is* the recovery pass: torn runs move to
            // quarantine, stray temp files are reaped, the counter is
            // validated, and the report lands as <store>/fsck_report.json.
            let store = RunStore::open(store_dir)?;
            let Some(report) = store.last_fsck() else {
                return Err(HrvizError::config("store open did not produce an fsck report"));
            };
            let summary = report.to_json().render() + "\n";
            if !report.is_clean() {
                eprint!("{summary}");
                return Err(HrvizError::gate(format!(
                    "store {store_dir} is dirty: {} quarantined, {} orphaned, {} failed, \
                     {} queued{} — run `hrviz sweep --resume` to recover",
                    report.quarantined.len(),
                    report.running_orphans.len(),
                    report.failed.len(),
                    report.queued.len(),
                    if report.generation_reset { ", generation reset" } else { "" },
                )));
            }
            Ok(RunOutput::text(summary)
                .metric("scanned", report.scanned as f64)
                .metric("completed", report.completed as f64)
                .metric("quarantined", report.quarantined.len() as f64)
                .metric("tmp_removed", report.tmp_removed as f64))
        }
        "watch" => {
            let Some(store_dir) = cli.options.get("store") else {
                return err("watch needs --store DIR (a sweep run store)");
            };
            let Some(run) = cli.options.get("run") else {
                return err("watch needs --run ID (16 hex digits)");
            };
            let poll_ms = u64_opt(cli, "poll-ms", 200)?.max(1);
            let max_s = u64_opt(cli, "max-s", 60)?.max(1);
            let store = RunStore::open(store_dir)?;
            let dir = store.run_dir(run);
            let mut next_seq = 0u64;
            let mut out = String::new();
            // Bounded by iteration count, not a wall-clock deadline: the
            // watch always terminates even against a stalled producer.
            let mut rounds_left = max_s.saturating_mul(1000) / poll_ms;
            let last = loop {
                let Some(progress) = read_progress(&dir)? else {
                    return err(format!(
                        "run {run:?} has no live telemetry (batch-mode run, or not in {store_dir}); \
                         sweep with --slice-every-us to stream it"
                    ));
                };
                for slice in read_slices(&dir, next_seq)? {
                    out.push_str(&format!(
                        "slice {:>4}  t [{:>10}..{:>10}) ns  injected {:>9} B  \
                         delivered {:>9} B  dropped {:>4}\n",
                        slice.seq,
                        slice.t_start_ns,
                        slice.t_end_ns,
                        slice.injected_bytes,
                        slice.delivered_bytes,
                        slice.dropped_packets,
                    ));
                    next_seq = slice.seq + 1;
                }
                if (progress.is_terminal() && next_seq >= progress.sealed) || rounds_left == 0 {
                    break progress;
                }
                rounds_left -= 1;
                std::thread::sleep(std::time::Duration::from_millis(poll_ms));
            };
            out.push_str(&format!(
                "run {run}: {} — {} slice(s) sealed, virtual time {} ns\n",
                last.state, last.sealed, last.virtual_ns
            ));
            Ok(RunOutput::text(out)
                .metric("slices", next_seq as f64)
                .metric("terminal", if last.is_terminal() { 1.0 } else { 0.0 }))
        }
        "serve" => {
            let Some(store_dir) = cli.options.get("store") else {
                return err("serve needs --store DIR (a sweep run store)");
            };
            let cfg = ServeConfig {
                addr: cli
                    .options
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| ServeConfig::default().addr),
                workers: u64_opt(cli, "workers", ServeConfig::default().workers as u64)? as usize,
                queue_depth: u64_opt(cli, "queue-depth", ServeConfig::default().queue_depth as u64)?
                    as usize,
                max_conns: u64_opt(cli, "max-conns", ServeConfig::default().max_conns as u64)?
                    as usize,
                timeout_ms: u64_opt(cli, "timeout-ms", ServeConfig::default().timeout_ms)?,
                keepalive_requests: u64_opt(
                    cli,
                    "keepalive-requests",
                    ServeConfig::default().keepalive_requests as u64,
                )? as usize,
            };
            let store = RunStore::open(store_dir)?;
            let server = Server::bind(cfg, store)?;
            let addr = server.local_addr()?;
            install_signal_shutdown(server.handle())?;
            // Announce readiness on stderr before blocking: scripts (and
            // the CI smoke job) wait for this line before issuing requests.
            eprintln!("hrviz serve: listening on {addr} (store {store_dir}, SIGINT to stop)");
            let report = server.serve()?;
            let summary = format!(
                "serve on {addr}: {} request(s) handled, {} shed\n",
                report.requests, report.shed
            );
            Ok(RunOutput::text(summary)
                .metric("requests", report.requests as f64)
                .metric("shed", report.shed as f64))
        }
        "bench-gate" => {
            let out_dir = cli.options.get("out").cloned().unwrap_or_else(|| "out".into());
            let mut cfg = GateConfig::default();
            if let Some(t) = cli.options.get("tolerance") {
                cfg.tolerance =
                    t.parse().map_err(|_| HrvizError::usage("--tolerance must be a number"))?;
            }
            if let Some(w) = cli.options.get("window") {
                cfg.window =
                    w.parse().map_err(|_| HrvizError::usage("--window must be a number"))?;
            }
            let report = run_gate(std::path::Path::new(&out_dir), &cfg)?;
            let mut summary = format!(
                "bench-gate: {} metric(s) judged, {} history line(s) appended\n",
                report.verdicts.len(),
                report.appended,
            );
            for v in &report.verdicts {
                summary.push_str(&match v.baseline {
                    Some(b) => format!(
                        "  [{}] {}/{}: {:.3} vs baseline {:.3} ({:+.1}%)\n",
                        if v.regressed { "FAIL" } else { "ok" },
                        v.driver,
                        v.metric,
                        v.current,
                        b,
                        -100.0 * v.regression,
                    ),
                    None => format!(
                        "  [new] {}/{}: {:.3} (no history yet)\n",
                        v.driver, v.metric, v.current
                    ),
                });
            }
            let regressed = report.regressed();
            if !regressed.is_empty() {
                // The per-metric breakdown still reaches the user: Gate
                // errors carry it on stderr ahead of the exit code.
                eprint!("{summary}");
                let names: Vec<String> = regressed
                    .iter()
                    .map(|v| {
                        format!("{}/{} ({:.1}% worse)", v.driver, v.metric, 100.0 * v.regression)
                    })
                    .collect();
                return Err(HrvizError::gate(names.join(", ")));
            }
            Ok(RunOutput::text(summary)
                .metric("judged", report.verdicts.len() as f64)
                .metric("appended", report.appended as f64)
                .metric("regressed", 0.0))
        }
        "check" => {
            let Some(path) = cli.positional.first() else {
                return err("check needs a script file argument");
            };
            let text =
                std::fs::read_to_string(path).map_err(|e| HrvizError::io(path.clone(), e))?;
            let spec =
                parse_script(&text).map_err(|e| HrvizError::parse(path.clone(), e.to_string()))?;
            let mut out = format!("{path}: ok, {} ring(s)\n", spec.levels.len());
            for (i, l) in spec.levels.iter().enumerate() {
                out.push_str(&format!(
                    "  ring {i}: {} by {:?} -> {:?}\n",
                    l.entity,
                    l.aggregate.iter().map(Field::name).collect::<Vec<_>>(),
                    l.vmap.plot_kind()
                ));
            }
            Ok(RunOutput::text(out).metric("rings", spec.levels.len() as f64))
        }
        "help" | "--help" | "-h" => Ok(RunOutput::text(USAGE)),
        other => err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// `compare --store DIR`: resolve each routing's run through the
/// content-addressed store (simulating only what is missing), then build
/// the comparison views through the aggregation cache.
fn compare_from_store(cli: &Cli, routings: &[RoutingAlgorithm]) -> Result<RunOutput, HrvizError> {
    let vreq = view_request_of(cli, true)?;
    let sweep = sweep_spec_of(cli, "compare", false)?.routings(routings.to_vec());
    let workers = u64_opt(cli, "workers", 0)? as usize;
    let store_dir = cli
        .options
        .get("store")
        .ok_or_else(|| HrvizError::usage("compare --store needs a directory"))?;
    let engine = SweepEngine::new(RunStore::open(store_dir)?).with_workers(workers);
    let outcome = engine.run(&sweep)?;
    let configs = sweep.expand()?;
    let mut loaded: Vec<(DataSet, DataKey, StoredManifest)> = Vec::with_capacity(configs.len());
    for cfg in &configs {
        let stored = engine.store().load(&cfg.run_id())?;
        loaded.push((stored.data.to_dataset(), engine.store().data_key(cfg), stored.manifest));
    }
    let cache = AggregateCache::new();
    let pairs: Vec<(&DataSet, DataKey)> = loaded.iter().map(|(d, k, _)| (d, *k)).collect();
    let views = compare_views_cached(&pairs, &vreq.spec, &cache)
        .map_err(|e| HrvizError::config(e.to_string()))?;
    let labels: Vec<&str> = routings.iter().map(|r| r.name()).collect();
    let labeled: Vec<(&_, &str)> = views.iter().zip(labels.iter().copied()).collect();
    let svg = render_radial_row(&labeled, &RadialLayout::default(), "hrviz compare");
    let path = write_svg(cli, "compare.svg", svg)?;
    let named: Vec<(&str, &ProjectionView)> = labels.iter().copied().zip(views.iter()).collect();
    let (graph_path, graph_nodes) = write_graph(&path, &vreq, None, &named)?;
    let mut out = String::new();
    for (label, (_, _, manifest)) in labels.iter().zip(&loaded) {
        out.push_str(&format!("--- {label} ---\n{}", summarize_manifest(manifest)));
    }
    out.push_str(&format!(
        "store: {} cached, {} simulated  aggregates: {} hit(s), {} miss(es)\n",
        outcome.store_hits,
        outcome.store_misses,
        cache.hits(),
        cache.misses(),
    ));
    let mut typed = RunOutput::text(out)
        .artifact(path)
        .artifact(graph_path)
        .metric("graph_nodes", graph_nodes as f64)
        .metric("store_hits", outcome.store_hits as f64)
        .metric("store_misses", outcome.store_misses as f64)
        .metric("agg_cache_hits", cache.hits() as f64)
        .metric("agg_cache_misses", cache.misses() as f64);
    for (label, (_, _, manifest)) in labels.iter().zip(&loaded) {
        typed = typed.metric(format!("{label}/events"), manifest.events_processed as f64);
    }
    Ok(typed)
}

/// Default spec builder used for doc parity with the script constant.
pub fn default_spec() -> ProjectionSpec {
    ProjectionSpec::new(vec![
        LevelSpec::new(EntityKind::LocalLink).aggregate(&[Field::RouterRank]).color(Field::SatTime),
        LevelSpec::new(EntityKind::GlobalLink)
            .aggregate(&[Field::RouterRank, Field::RouterPort])
            .color(Field::SatTime)
            .size(Field::Traffic),
    ])
    .ribbons(RibbonSpec::new(EntityKind::LocalLink))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_options_and_positionals() {
        let cli =
            parse_args(&args(&["view", "--terminals", "72", "--pattern", "tornado"])).unwrap();
        assert_eq!(cli.command, "view");
        assert_eq!(cli.options["terminals"], "72");
        let cli = parse_args(&args(&["check", "file.hrviz"])).unwrap();
        assert_eq!(cli.positional, vec!["file.hrviz"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = parse_args(&args(&["view", "--terminals"])).unwrap_err();
        assert!(e.to_string().contains("needs a value"));
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn terminal_counts_resolve() {
        let cli = parse_args(&args(&["view", "--terminals", "2550"])).unwrap();
        assert_eq!(terminals_of(&cli).unwrap().groups, 51);
        let cli = parse_args(&args(&["view", "--terminals", "72"])).unwrap();
        assert_eq!(terminals_of(&cli).unwrap().groups, 9); // canonical h=2
        let cli = parse_args(&args(&["view", "--terminals", "123"])).unwrap();
        assert!(terminals_of(&cli).is_err());
    }

    #[test]
    fn view_end_to_end() {
        let dir = std::env::temp_dir().join("hrviz_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let svg = dir.join("v.svg");
        let cli = parse_args(&args(&[
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--routing",
            "adaptive",
            "--msgs",
            "4",
            "--bytes",
            "4096",
            "--svg",
            svg.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.to_string().contains("delivered"));
        let graph = svg.with_extension("graph.json");
        assert_eq!(out.artifacts, vec![svg.clone(), graph.clone()]);
        assert!(out.metric_value("events").unwrap() > 0.0);
        assert!(svg.exists());
        assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));
        // The graph envelope rides along: schema 2, every node, no cursor.
        let body = std::fs::read_to_string(&graph).unwrap();
        assert!(body.contains("\"schema_version\":2"), "{body}");
        assert!(body.contains("\"next_cursor\":null"), "{body}");
        assert!(out.metric_value("graph_nodes").unwrap() > 1.0);
        std::fs::remove_file(&svg).ok();
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn view_policy_flags_share_serves_validation() {
        // Bad values answer the same codes the server's 400s carry.
        let cli =
            parse_args(&args(&["view", "--terminals", "72", "--pattern", "tornado", "--lod", "9"]))
                .unwrap();
        let e = run(&cli).unwrap_err();
        assert_eq!(e.exit_code(), 2, "{e}");
        assert!(e.to_string().contains("--lod"), "{e}");

        let cli = parse_args(&args(&[
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--page-size",
            "soft",
        ]))
        .unwrap();
        let e = run(&cli).unwrap_err().to_string();
        assert!(e.contains("--page-size"), "{e}");

        // Good values land in the written envelope: a paged graph with a
        // depth-limited policy.
        let dir = std::env::temp_dir().join("hrviz_cli_policy");
        std::fs::create_dir_all(&dir).unwrap();
        let svg = dir.join("p.svg");
        let cli = parse_args(&args(&[
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--msgs",
            "2",
            "--bytes",
            "1024",
            "--lod",
            "1",
            "--max-depth",
            "2",
            "--page-size",
            "5",
            "--svg",
            svg.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        let graph = svg.with_extension("graph.json");
        let body = std::fs::read_to_string(&graph).unwrap();
        assert!(body.contains("\"count\":5"), "first page only: {body}");
        assert!(out.metric_value("graph_nodes").unwrap() > 5.0, "{out}");
        std::fs::remove_file(&svg).ok();
        std::fs::remove_file(&graph).ok();
    }

    #[test]
    fn compare_needs_two_routings() {
        let cli = parse_args(&args(&[
            "compare",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--routing",
            "minimal",
        ]))
        .unwrap();
        assert!(run(&cli).unwrap_err().to_string().contains("at least two"));
    }

    #[test]
    fn compare_end_to_end() {
        let dir = std::env::temp_dir().join("hrviz_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let svg = dir.join("c.svg");
        let cli = parse_args(&args(&[
            "compare",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--routing",
            "minimal,adaptive",
            "--msgs",
            "4",
            "--svg",
            svg.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap().to_string();
        assert!(out.contains("--- minimal ---"));
        assert!(out.contains("--- adaptive ---"));
        assert!(svg.exists());
        std::fs::remove_file(&svg).ok();
    }

    #[test]
    fn trace_subcommand_simulates_a_csv() {
        let dir = std::env::temp_dir().join("hrviz_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.csv");
        std::fs::write(&trace, "time_ns,src,dst,bytes,job\n0,0,40,8192,0\n").unwrap();
        let svg = dir.join("t.svg");
        let cli = parse_args(&args(&[
            "trace",
            "--in",
            trace.to_str().unwrap(),
            "--terminals",
            "72",
            "--routing",
            "minimal",
            "--svg",
            svg.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        assert!(out.to_string().contains("delivered 8192/8192"));
        assert_eq!(out.metric_value("delivered_bytes"), Some(8192.0));
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&svg).ok();
    }

    #[test]
    fn check_reports_rings() {
        let dir = std::env::temp_dir().join("hrviz_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("s.hrviz");
        std::fs::write(&f, DEFAULT_SCRIPT).unwrap();
        let cli = parse_args(&args(&["check", f.to_str().unwrap()])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.to_string().contains("3 ring(s)"));
        assert!(out.to_string().contains("Heatmap1D"));
        assert_eq!(out.metric_value("rings"), Some(3.0));
        assert!(out.artifacts.is_empty());
        std::fs::remove_file(&f).ok();
    }

    #[test]
    fn unknown_commands_and_enums_error() {
        let cli = parse_args(&args(&["frobnicate"])).unwrap();
        assert!(run(&cli).is_err());
        assert!(routing_of("warp").is_err());
        assert!(pattern_of("noise").is_err());
        let cli = parse_args(&args(&["help"])).unwrap();
        assert!(run(&cli).unwrap().to_string().contains("usage"));
    }

    #[test]
    fn unknown_flags_are_rejected_with_the_allowlist() {
        let cli = parse_args(&args(&["view", "--terminls", "72"])).unwrap();
        let e = run(&cli).unwrap_err().to_string();
        assert!(e.contains("unknown flag --terminls for 'view'"), "got: {e}");
        assert!(e.contains("--terminals"), "error should list accepted flags: {e}");
        assert!(e.contains("--trace-out"), "error should list common flags: {e}");
        // check takes only positionals (plus the common flags).
        let cli = parse_args(&args(&["check", "f.hrviz", "--svg", "x"])).unwrap();
        assert!(run(&cli).unwrap_err().to_string().contains("unknown flag --svg"));
    }

    #[test]
    fn trace_out_writes_a_jsonl_trace() {
        let dir = std::env::temp_dir().join("hrviz_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let svg = dir.join("traced.svg");
        let trace = dir.join("traced.jsonl");
        let cli = parse_args(&args(&[
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--msgs",
            "2",
            "--bytes",
            "2048",
            "--svg",
            svg.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        run(&cli).unwrap();
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.lines().count() >= 2, "trace should hold several events: {text}");
        assert!(text.contains("\"kind\":\"engine_run\""), "engine boundary event: {text}");
        assert!(text.contains("\"label\":\"sim/run\""), "sim span event: {text}");
        std::fs::remove_file(&svg).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn log_level_flag_parses_and_rejects_garbage() {
        let cli = parse_args(&args(&["view", "--log-level", "shout"])).unwrap();
        let e = run(&cli).unwrap_err().to_string();
        assert!(e.contains("unknown log level"), "got: {e}");
        // A valid level alone enables an in-memory collector.
        let cli = parse_args(&args(&["check", "--log-level", "debug"])).unwrap();
        let (c, trace_path) = collector_of(&cli).unwrap();
        assert!(c.is_enabled());
        assert!(trace_path.is_none());
        assert_eq!(c.level(), Some(LogLevel::Debug));
    }

    #[test]
    fn faults_flag_runs_a_degraded_view() {
        use hrviz_network::FaultEvent;
        let dir = std::env::temp_dir().join("hrviz_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let sched = dir.join("faults.json");
        let svg = dir.join("faulted.svg");
        let mut faults = FaultSchedule::new(3);
        // Tornado from group 0 with its first global link dead: drops under
        // minimal routing show up in the summary.
        faults.push(SimTime::ZERO, FaultEvent::RouterDown { router: 0 });
        faults.to_file(sched.to_str().unwrap()).unwrap();
        let cli = parse_args(&args(&[
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--routing",
            "minimal",
            "--msgs",
            "2",
            "--bytes",
            "2048",
            "--faults",
            sched.to_str().unwrap(),
            "--svg",
            svg.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap().to_string();
        assert!(out.contains("dropped"), "fault summary line expected: {out}");
        std::fs::remove_file(&sched).ok();
        std::fs::remove_file(&svg).ok();
    }

    #[test]
    fn fault_flag_errors_have_distinct_exit_codes() {
        // Usage: bad hop limit.
        let cli = parse_args(&args(&[
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--hop-limit",
            "many",
        ]))
        .unwrap();
        let e = run(&cli).unwrap_err();
        assert!(e.to_string().contains("--hop-limit"));
        assert_eq!(e.exit_code(), 2);
        // Config: hop limit of zero is rejected by spec validation.
        let cli = parse_args(&args(&[
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--hop-limit",
            "0",
        ]))
        .unwrap();
        assert_eq!(run(&cli).unwrap_err().exit_code(), 3);
        // Io: missing schedule file.
        let cli = parse_args(&args(&[
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--faults",
            "/nonexistent/faults.json",
        ]))
        .unwrap();
        assert_eq!(run(&cli).unwrap_err().exit_code(), 4);
        // Config: impossible terminal count.
        let cli =
            parse_args(&args(&["view", "--terminals", "123", "--pattern", "tornado"])).unwrap();
        assert_eq!(run(&cli).unwrap_err().exit_code(), 3);
    }

    #[test]
    fn run_output_display_reproduces_the_legacy_string() {
        let plain = RunOutput::text("summary line\n");
        assert_eq!(plain.to_string(), "summary line\n");
        let with_artifact = RunOutput::text("summary line\n").artifact("out/x.svg");
        assert_eq!(with_artifact.to_string(), "summary line\nwrote out/x.svg");
        let two = RunOutput::text("s\n").artifact("a").artifact("b");
        assert_eq!(two.to_string(), "s\nwrote a\nwrote b");
        let m = RunOutput::text("x").metric("events", 5.0);
        assert_eq!(m.metric_value("events"), Some(5.0));
        assert_eq!(m.metric_value("nope"), None);
    }

    #[test]
    fn sweep_end_to_end_then_warm_cache() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_sweep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.join("store");
        let report = dir.join("reports");
        let argv = args(&[
            "sweep",
            "--terminals",
            "72",
            "--routings",
            "minimal,adaptive",
            "--patterns",
            "uniform-random,tornado",
            "--msgs",
            "2",
            "--bytes",
            "1024",
            "--workers",
            "2",
            "--store",
            store.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ]);
        let cli = parse_args(&argv).unwrap();
        let cold = run(&cli).unwrap();
        assert_eq!(cold.metric_value("configs"), Some(4.0));
        assert_eq!(cold.metric_value("store_misses"), Some(4.0));
        assert!(cold.metric_value("events_simulated").unwrap() > 0.0);
        assert!(cold.to_string().contains("4 simulated"), "{cold}");
        let report_file = report.join("sweep_cli.json");
        assert!(report_file.is_file());
        // Second identical sweep: all hits, zero events, report says so.
        let warm = run(&cli).unwrap();
        assert_eq!(warm.metric_value("store_hits"), Some(4.0));
        assert_eq!(warm.metric_value("store_misses"), Some(0.0));
        assert_eq!(warm.metric_value("events_simulated"), Some(0.0));
        let text = std::fs::read_to_string(&report_file).unwrap();
        assert!(text.contains("\"store_misses\":0"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_streams_slices_then_watch_tails_them() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_stream_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.join("store");
        let argv = args(&[
            "sweep",
            "--terminals",
            "72",
            "--routings",
            "minimal",
            "--msgs",
            "2",
            "--bytes",
            "1024",
            "--slice-every-us",
            "5",
            "--store",
            store.to_str().unwrap(),
            "--report",
            dir.join("reports").to_str().unwrap(),
        ]);
        let out = run(&parse_args(&argv).unwrap()).unwrap();
        assert_eq!(out.metric_value("aborted"), Some(0.0));
        assert!(out.to_string().contains("0 run(s) aborted"), "{out}");

        let run_id = RunStore::open(&store).unwrap().runs().unwrap().remove(0);
        let watch =
            args(&["watch", "--store", store.to_str().unwrap(), "--run", &run_id, "--max-s", "5"]);
        let watched = run(&parse_args(&watch).unwrap()).unwrap();
        assert_eq!(watched.metric_value("terminal"), Some(1.0), "{watched}");
        assert!(watched.metric_value("slices").unwrap() >= 1.0, "{watched}");
        assert!(watched.to_string().contains("completed"), "{watched}");

        // Watching a run that never streamed is a usage error, not a hang.
        let batch_store = dir.join("batch");
        let mut batch_argv = argv.clone();
        let pos = batch_argv.iter().position(|a| a == "--slice-every-us").unwrap();
        batch_argv.drain(pos..pos + 2);
        let pos = batch_argv.iter().position(|a| a == "--store").unwrap();
        batch_argv[pos + 1] = batch_store.to_str().unwrap().into();
        run(&parse_args(&batch_argv).unwrap()).unwrap();
        let batch_run = RunStore::open(&batch_store).unwrap().runs().unwrap().remove(0);
        let watch_batch =
            args(&["watch", "--store", batch_store.to_str().unwrap(), "--run", &batch_run]);
        let e = run(&parse_args(&watch_batch).unwrap()).unwrap_err();
        assert!(e.to_string().contains("no live telemetry"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_abort_policy_cancels_and_reports() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_abort_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.join("store");
        let argv = args(&[
            "sweep",
            "--terminals",
            "72",
            "--routings",
            "minimal,adaptive",
            "--msgs",
            "2",
            "--bytes",
            "1024",
            // One 200 ns window with an impossible delivery bar: every
            // run aborts on its first slice.
            "--abort-policy",
            "saturation:1000:1",
            "--slice-every-us",
            "1",
            "--store",
            store.to_str().unwrap(),
            "--report",
            dir.join("reports").to_str().unwrap(),
        ]);
        let out = run(&parse_args(&argv).unwrap()).unwrap();
        assert_eq!(out.metric_value("aborted"), Some(2.0), "{out}");
        assert!(out.to_string().contains("2 run(s) aborted"), "{out}");
        // Aborted runs never become servable completions.
        assert!(RunStore::open(&store).unwrap().runs().unwrap().is_empty());

        let bad = args(&["sweep", "--terminals", "72", "--abort-policy", "nonsense"]);
        assert!(run(&parse_args(&bad).unwrap()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_requires_a_topology_and_rejects_two() {
        let cli = parse_args(&args(&["sweep", "--routings", "minimal"])).unwrap();
        assert!(run(&cli).unwrap_err().to_string().contains("--terminals N or --fattree K"));
        let cli = parse_args(&args(&["sweep", "--terminals", "72", "--fattree", "4"])).unwrap();
        assert!(run(&cli).unwrap_err().to_string().contains("mutually exclusive"));
    }

    #[test]
    fn compare_store_reuses_runs_and_aggregates() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_cmpstore_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.join("store");
        let svg = dir.join("c.svg");
        let argv = args(&[
            "compare",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--routing",
            "minimal,adaptive",
            "--msgs",
            "2",
            "--bytes",
            "1024",
            "--store",
            store.to_str().unwrap(),
            "--svg",
            svg.to_str().unwrap(),
        ]);
        let cli = parse_args(&argv).unwrap();
        let cold = run(&cli).unwrap();
        assert_eq!(cold.metric_value("store_misses"), Some(2.0));
        assert!(cold.to_string().contains("--- minimal ---"), "{cold}");
        assert!(cold.metric_value("agg_cache_hits").unwrap() > 0.0, "shared scales reuse groups");
        assert!(svg.exists());
        // Second run: both runs come from the store, nothing simulates.
        let warm = run(&cli).unwrap();
        assert_eq!(warm.metric_value("store_hits"), Some(2.0));
        assert_eq!(warm.metric_value("store_misses"), Some(0.0));
        assert_eq!(
            warm.metric_value("minimal/events"),
            cold.metric_value("minimal/events"),
            "stored manifests replay identical counters"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn write_bench_record(dir: &std::path::Path, eps: f64) {
        let body = format!(
            "{{\"driver\":\"cli_gate\",\"wall_time_s\":2.0,\"events_per_sec\":{eps},\
             \"peak_queue_depth\":9}}"
        );
        std::fs::write(dir.join("BENCH_cli_gate.json"), body).unwrap();
    }

    #[test]
    fn bench_gate_appends_history_and_exits_7_on_regression() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_gate_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let argv = args(&["bench-gate", "--out", dir.to_str().unwrap()]);
        let cli = parse_args(&argv).unwrap();

        // Seed a healthy baseline.
        write_bench_record(&dir, 1000.0);
        let out = run(&cli).unwrap();
        assert_eq!(out.metric_value("appended"), Some(1.0));
        assert!(out.to_string().contains("[new]"), "{out}");
        write_bench_record(&dir, 1000.0);
        assert!(run(&cli).unwrap().to_string().contains("[ok]"));

        // Inject a synthetic regression: throughput halves.
        write_bench_record(&dir, 500.0);
        let err = run(&cli).unwrap_err();
        assert_eq!(err.exit_code(), 7, "{err}");
        assert!(err.to_string().contains("events_per_sec"), "{err}");

        // The slow run still landed in history (3 healthy + 1 slow).
        let history = std::fs::read_to_string(dir.join("PERF_HISTORY.jsonl")).unwrap();
        assert_eq!(history.lines().count(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_gate_flags_validate() {
        let cli = parse_args(&args(&["bench-gate", "--tolerance", "soft"])).unwrap();
        assert_eq!(run(&cli).unwrap_err().exit_code(), 2);
        let cli = parse_args(&args(&["bench-gate", "--window", "0"])).unwrap();
        assert_eq!(run(&cli).unwrap_err().exit_code(), 3);
    }

    #[test]
    fn trace_out_also_exports_a_chrome_trace() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_chrome_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let svg = dir.join("v.svg");
        let trace = dir.join("t.jsonl");
        let cli = parse_args(&args(&[
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--msgs",
            "2",
            "--bytes",
            "2048",
            "--svg",
            svg.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        let out = run(&cli).unwrap();
        let chrome = dir.join("t.chrome.json");
        assert!(out.artifacts.contains(&chrome), "{out}");
        let text = std::fs::read_to_string(&chrome).unwrap();
        let parsed = hrviz_obs::Json::parse(&text).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(hrviz_obs::Json::as_array).unwrap();
        assert!(!events.is_empty(), "trace carries events");
        // The final snapshot landed in the JSONL before the flush.
        let jsonl = std::fs::read_to_string(&trace).unwrap();
        assert!(jsonl.contains("\"final\":true"), "final snapshot: {jsonl}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_is_a_bare_flag() {
        let cli = parse_args(&args(&["sweep", "--resume", "--terminals", "72"])).unwrap();
        assert_eq!(cli.options.get("resume").map(String::as_str), Some("true"));
        assert_eq!(cli.options.get("terminals").map(String::as_str), Some("72"));
    }

    #[test]
    fn view_checkpoints_then_restores_bit_identically() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("store");
        let svg = dir.join("v.svg");
        let base = [
            "view",
            "--terminals",
            "72",
            "--pattern",
            "tornado",
            "--routing",
            "adaptive",
            "--msgs",
            "4",
            "--bytes",
            "8192",
            "--svg",
            svg.to_str().unwrap(),
            "--store",
            store.to_str().unwrap(),
        ];
        let mut argv = args(&base);
        argv.extend(args(&["--checkpoint-every", "3"]));
        let cli = parse_args(&argv).unwrap();
        let straight = run(&cli).unwrap();
        let ckpts: Vec<_> = straight
            .artifacts
            .iter()
            .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
            .collect();
        assert!(!ckpts.is_empty(), "expected checkpoint artifacts: {straight:?}");
        assert_eq!(straight.metric_value("checkpoints"), Some(ckpts.len() as f64));
        assert!(store.join("checkpoints").is_dir());

        // Restore from the first checkpoint: the summary (events, bytes,
        // per-class traffic) must be indistinguishable.
        let mut argv = args(&base);
        argv.extend(args(&["--restore-from", ckpts[0].to_str().unwrap()]));
        let cli = parse_args(&argv).unwrap();
        let resumed = run(&cli).unwrap();
        assert_eq!(resumed.summary, straight.summary, "restored run summary diverged");
        assert_eq!(resumed.metric_value("events"), straight.metric_value("events"));
        assert_eq!(
            resumed.metric_value("delivered_bytes"),
            straight.metric_value("delivered_bytes")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsck_reports_clean_and_dirty_stores() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_fsck_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.join("store");
        // An empty (freshly created) store is clean.
        std::fs::create_dir_all(&store).unwrap();
        let cli = parse_args(&args(&["fsck", "--store", store.to_str().unwrap()])).unwrap();
        let out = run(&cli).unwrap();
        assert!(out.to_string().contains("\"clean\":1"), "{out}");
        assert_eq!(out.metric_value("scanned"), Some(0.0));
        // A torn run directory makes it dirty (exit 7) and gets quarantined…
        let torn = store.join("0123456789abcdef");
        std::fs::create_dir_all(&torn).unwrap();
        std::fs::write(torn.join("manifest.json"), "{ not json").unwrap();
        let e = run(&cli).unwrap_err();
        assert_eq!(e.exit_code(), 7, "{e}");
        assert!(e.to_string().contains("quarantined"), "{e}");
        assert!(!torn.exists(), "torn run should have moved to quarantine");
        // …after which the store is clean again.
        assert!(run(&cli).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_shards_flag_spreads_the_store() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_shards_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.join("store");
        let report = dir.join("reports");
        let argv = args(&[
            "sweep",
            "--terminals",
            "72",
            "--routings",
            "minimal,adaptive",
            "--patterns",
            "tornado",
            "--msgs",
            "2",
            "--bytes",
            "1024",
            "--shards",
            "4",
            "--store",
            store.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ]);
        let cli = parse_args(&argv).unwrap();
        let cold = run(&cli).unwrap();
        assert_eq!(cold.metric_value("store_misses"), Some(2.0));
        assert!(store.join("shards").is_dir(), "sharded layout on disk");
        // Re-opening with the same flag finds every run: all hits.
        let warm = run(&cli).unwrap();
        assert_eq!(warm.metric_value("store_hits"), Some(2.0));
        assert_eq!(warm.metric_value("store_misses"), Some(0.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_resume_on_a_clean_store_is_a_no_op() {
        let dir = std::env::temp_dir().join(format!("hrviz_cli_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = dir.join("store");
        let report = dir.join("reports");
        let base = [
            "sweep",
            "--terminals",
            "72",
            "--routings",
            "minimal",
            "--patterns",
            "tornado",
            "--msgs",
            "2",
            "--bytes",
            "1024",
            "--store",
            store.to_str().unwrap(),
            "--report",
            report.to_str().unwrap(),
        ];
        let cli = parse_args(&args(&base)).unwrap();
        run(&cli).unwrap();
        let mut argv = args(&base);
        argv.push("--resume".into());
        let cli = parse_args(&argv).unwrap();
        let out = run(&cli).unwrap();
        assert_eq!(out.metric_value("store_misses"), Some(0.0));
        assert_eq!(out.metric_value("resumed_runs"), Some(0.0));
        assert!(out.to_string().contains("resume: 0 interrupted run(s)"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn default_script_matches_builder_shape() {
        let s = parse_script(DEFAULT_SCRIPT).unwrap();
        let b = default_spec();
        assert_eq!(s.levels[0].entity, b.levels[0].entity);
        assert_eq!(s.levels[1].vmap.plot_kind(), b.levels[1].vmap.plot_kind());
    }
}
