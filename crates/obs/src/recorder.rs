//! Bounded in-memory rings: the flight recorder and the recent-span buffer.
//!
//! An enabled collector keeps the most recent trace-event lines and the
//! most recent completed [`SpanRecord`]s in fixed-capacity rings. The
//! span ring backs `GET /tracez` and the Chrome trace exporter
//! ([`crate::chrome`]); the event ring is the *flight recorder* — when a
//! watchdog trips, a worker panics, or a shed burst occurs, the ring is
//! dumped to disk so the moments leading up to the incident survive the
//! incident. Both rings are bounded, so a long-lived server never grows
//! telemetry state without bound.
//!
//! This module is inside hrviz-lint's panic-freedom scope: dump paths run
//! exactly when something already went wrong, so they must not add a
//! second failure.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

use crate::json::Json;

/// Trace-event lines retained for flight dumps.
pub const EVENT_RING_CAP: usize = 2048;
/// Completed spans retained for `/tracez` and Chrome export.
pub const SPAN_RING_CAP: usize = 4096;

/// One completed span, with its causal identity.
///
/// `parent` is `0` for root spans. `tid` is the collector's small
/// per-thread id (not the OS tid); records carrying an explicit `lane`
/// are placed on a synthetic named lane by the Chrome exporter instead
/// of their thread lane.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Stable id, unique within the collector.
    pub id: u64,
    /// Id of the enclosing span on the same thread (0 = root).
    pub parent: u64,
    /// Small per-thread id assigned on first use.
    pub tid: u64,
    /// Explicit timeline lane (engine partitions, sweep runs); `None`
    /// places the span on its thread's lane.
    pub lane: Option<String>,
    /// Hierarchical label, e.g. `serve/request`.
    pub label: String,
    /// Start, microseconds since the collector epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Extra annotations (virtual-time progress, queue depth, ...).
    pub args: Vec<(String, Json)>,
}

impl SpanRecord {
    /// JSON form used by `/tracez`.
    pub fn to_json(&self) -> Json {
        let lane = match &self.lane {
            Some(l) => Json::Str(l.clone()),
            None => Json::Null,
        };
        Json::obj([
            ("id", Json::U64(self.id)),
            ("parent", Json::U64(self.parent)),
            ("tid", Json::U64(self.tid)),
            ("lane", lane),
            ("label", Json::Str(self.label.clone())),
            ("start_us", Json::U64(self.start_us)),
            ("dur_us", Json::U64(self.dur_us)),
            ("args", Json::Obj(self.args.clone())),
        ])
    }
}

/// The collector's bounded recent-history state.
pub(crate) struct Flight {
    pub(crate) events: VecDeque<String>,
    pub(crate) spans: VecDeque<SpanRecord>,
    pub(crate) dump_dir: Option<PathBuf>,
    pub(crate) dump_seq: u64,
}

impl Flight {
    pub(crate) fn new() -> Flight {
        Flight { events: VecDeque::new(), spans: VecDeque::new(), dump_dir: None, dump_seq: 0 }
    }

    pub(crate) fn push_event(&mut self, line: String) {
        if self.events.len() >= EVENT_RING_CAP {
            self.events.pop_front();
        }
        self.events.push_back(line);
    }

    pub(crate) fn push_span(&mut self, rec: SpanRecord) {
        if self.spans.len() >= SPAN_RING_CAP {
            self.spans.pop_front();
        }
        self.spans.push_back(rec);
    }
}

/// Small thread ids → thread names, process-wide. Thread lanes in the
/// Chrome export are labeled from this registry.
static THREAD_NAMES: Mutex<Vec<(u64, String)>> = Mutex::new(Vec::new());

pub(crate) fn register_thread_name(tid: u64, name: String) {
    let mut names = THREAD_NAMES.lock().unwrap_or_else(PoisonError::into_inner);
    if !names.iter().any(|(t, _)| *t == tid) {
        names.push((tid, name));
    }
}

/// Every `(tid, name)` pair registered so far, in registration order.
pub fn thread_names() -> Vec<(u64, String)> {
    THREAD_NAMES.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Keep a dump-file name component readable and filesystem-safe.
pub(crate) fn sanitize_reason(reason: &str) -> String {
    let mut out = String::with_capacity(reason.len());
    for ch in reason.chars().take(48) {
        if ch.is_ascii_alphanumeric() || ch == '-' || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push_str("unspecified");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_ring_is_bounded() {
        let mut f = Flight::new();
        for i in 0..(EVENT_RING_CAP + 10) {
            f.push_event(format!("{{\"n\":{i}}}"));
        }
        assert_eq!(f.events.len(), EVENT_RING_CAP);
        assert_eq!(f.events.front().map(String::as_str), Some("{\"n\":10}"), "oldest evicted");
    }

    #[test]
    fn span_ring_is_bounded() {
        let mut f = Flight::new();
        for i in 0..(SPAN_RING_CAP + 3) {
            f.push_span(SpanRecord {
                id: i as u64,
                parent: 0,
                tid: 1,
                lane: None,
                label: "x".into(),
                start_us: 0,
                dur_us: 1,
                args: Vec::new(),
            });
        }
        assert_eq!(f.spans.len(), SPAN_RING_CAP);
        assert_eq!(f.spans.front().map(|r| r.id), Some(3));
    }

    #[test]
    fn span_record_renders_json() {
        let rec = SpanRecord {
            id: 7,
            parent: 3,
            tid: 2,
            lane: Some("pdes/p0".into()),
            label: "pdes/window".into(),
            start_us: 10,
            dur_us: 5,
            args: vec![("events".into(), Json::U64(42))],
        };
        let text = rec.to_json().render();
        assert!(text.contains("\"id\":7"), "{text}");
        assert!(text.contains("\"parent\":3"), "{text}");
        assert!(text.contains("\"lane\":\"pdes/p0\""), "{text}");
        assert!(text.contains("\"events\":42"), "{text}");
    }

    #[test]
    fn reasons_sanitize() {
        assert_eq!(sanitize_reason("worker panic!"), "worker_panic_");
        assert_eq!(sanitize_reason(""), "unspecified");
        assert_eq!(sanitize_reason("shed-burst"), "shed-burst");
    }
}
