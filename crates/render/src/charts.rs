//! Cartesian charts: detail-view scatter plots and parallel coordinates
//! (paper Fig. 6b), timeline plots (Fig. 6c / 12), and grouped bar charts
//! (Fig. 13d).

use crate::svg::{format_si, SvgDoc};
use hrviz_core::{Color, ColorScale, DetailView, LinkScatter, TimelineView};

const MARGIN_L: f64 = 56.0;
const MARGIN_B: f64 = 34.0;
const MARGIN_T: f64 = 26.0;
const MARGIN_R: f64 = 14.0;

fn frame(doc: &mut SvgDoc, w: f64, h: f64, title: &str, x_label: &str, y_label: &str) {
    doc.text(w / 2.0, 14.0, 12.0, "middle", title);
    doc.line(MARGIN_L, h - MARGIN_B, w - MARGIN_R, h - MARGIN_B, Color::rgb(60, 60, 60), 1.0, 1.0);
    doc.line(MARGIN_L, MARGIN_T, MARGIN_L, h - MARGIN_B, Color::rgb(60, 60, 60), 1.0, 1.0);
    doc.text(w / 2.0, h - 6.0, 10.0, "middle", x_label);
    doc.text(12.0, MARGIN_T - 8.0, 10.0, "start", y_label);
}

fn x_of(v: f64, max: f64, w: f64) -> f64 {
    MARGIN_L + if max > 0.0 { v / max } else { 0.0 } * (w - MARGIN_L - MARGIN_R)
}

fn y_of(v: f64, max: f64, h: f64) -> f64 {
    (h - MARGIN_B) - if max > 0.0 { v / max } else { 0.0 } * (h - MARGIN_B - MARGIN_T)
}

fn ticks(doc: &mut SvgDoc, w: f64, h: f64, x_max: f64, y_max: f64) {
    for i in 0..=4 {
        let fx = i as f64 / 4.0;
        let xv = x_max * fx;
        let yv = y_max * fx;
        doc.text(x_of(xv, x_max, w), h - MARGIN_B + 12.0, 8.0, "middle", &format_si(xv));
        doc.text(MARGIN_L - 4.0, y_of(yv, y_max, h) + 3.0, 8.0, "end", &format_si(yv));
    }
}

/// Render one link scatter (traffic vs saturation); highlighted points in
/// yellow, as in the paper's Fig. 6.
pub fn render_link_scatter(s: &LinkScatter, w: f64, h: f64, title: &str) -> String {
    let mut doc = SvgDoc::new(w, h);
    frame(&mut doc, w, h, title, "traffic (byte)", "saturation (ns)");
    ticks(&mut doc, w, h, s.x_max, s.y_max);
    doc.open_group(None, Some("points"));
    for p in &s.points {
        let (color, r) = if p.highlighted {
            (Color::rgb(240, 200, 20), 3.2)
        } else {
            (Color::rgb(70, 130, 180), 2.0)
        };
        doc.circle(x_of(p.x, s.x_max, w), y_of(p.y, s.y_max, h), r, color, None);
    }
    doc.close_group();
    doc.finish()
}

/// Render the terminal parallel-coordinates plot.
pub fn render_parallel_coords(d: &DetailView, w: f64, h: f64, title: &str) -> String {
    let pcp = &d.terminals;
    let mut doc = SvgDoc::new(w, h);
    doc.text(w / 2.0, 14.0, 12.0, "middle", title);
    let n = pcp.axes.len().max(2);
    let axis_x = |i: usize| MARGIN_L + i as f64 * (w - MARGIN_L - MARGIN_R) / (n - 1) as f64;
    // Axes.
    for (i, axis) in pcp.axes.iter().enumerate() {
        let x = axis_x(i);
        doc.line(x, MARGIN_T, x, h - MARGIN_B, Color::rgb(120, 120, 120), 1.0, 1.0);
        doc.text(x, h - MARGIN_B + 12.0, 8.0, "middle", axis.field.name());
        doc.text(x, MARGIN_T - 10.0, 7.0, "middle", &format_si(axis.max));
        doc.text(x, h - MARGIN_B + 22.0, 7.0, "middle", &format_si(axis.min));
    }
    // Plain lines first, highlights on top.
    for pass in [false, true] {
        doc.open_group(None, Some(if pass { "pcp-highlight" } else { "pcp" }));
        for line in &pcp.lines {
            if line.highlighted != pass {
                continue;
            }
            let pts: Vec<(f64, f64)> = line
                .values
                .iter()
                .enumerate()
                .map(|(i, v)| (axis_x(i), (h - MARGIN_B) - v * (h - MARGIN_B - MARGIN_T)))
                .collect();
            let (color, width, op) = if pass {
                (Color::rgb(240, 200, 20), 1.4, 0.95)
            } else {
                (Color::rgb(70, 130, 180), 0.6, 0.25)
            };
            doc.polyline(&pts, color, width, op);
        }
        doc.close_group();
    }
    doc.finish()
}

/// Render a timeline view (one stacked panel per series, as the paper's
/// Fig. 12 shows the three applications).
pub fn render_timeline(tl: &TimelineView, w: f64, panel_h: f64, title: &str) -> String {
    let n = tl.series.len().max(1);
    let h = panel_h * n as f64 + 24.0;
    let mut doc = SvgDoc::new(w, h);
    doc.text(w / 2.0, 14.0, 12.0, "middle", title);
    let palette = ColorScale::from_names(&["steelblue", "orange", "green", "purple"]);
    for (si, series) in tl.series.iter().enumerate() {
        let top = 20.0 + si as f64 * panel_h;
        let bottom = top + panel_h - 18.0;
        let max = series.values.iter().cloned().fold(0.0f64, f64::max);
        doc.open_group(None, Some("timeline-panel"));
        doc.text(MARGIN_L, top + 8.0, 9.0, "start", &series.label);
        doc.line(MARGIN_L, bottom, w - MARGIN_R, bottom, Color::rgb(120, 120, 120), 0.8, 1.0);
        let bins = series.values.len().max(1);
        let pts: Vec<(f64, f64)> = series
            .values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let x = MARGIN_L + (i as f64 + 0.5) / bins as f64 * (w - MARGIN_L - MARGIN_R);
                let y = bottom - if max > 0.0 { v / max } else { 0.0 } * (panel_h - 30.0);
                (x, y)
            })
            .collect();
        doc.polyline(&pts, palette.pick(si), 1.2, 1.0);
        // Selection shading.
        if let Some((from, to)) = tl.selection {
            let x0 = MARGIN_L + from as f64 / bins as f64 * (w - MARGIN_L - MARGIN_R);
            let x1 = MARGIN_L + to as f64 / bins as f64 * (w - MARGIN_L - MARGIN_R);
            doc.rect(
                x0,
                top + 12.0,
                (x1 - x0).max(1.0),
                bottom - top - 12.0,
                Color::rgb(240, 200, 20),
                None,
            );
        }
        doc.text(w - MARGIN_R, top + 8.0, 8.0, "end", &format!("max {}", format_si(max)));
        doc.close_group();
    }
    // Time axis (shared).
    let total = tl.bin_width * tl.num_bins() as u64;
    doc.text(w / 2.0, h - 6.0, 9.0, "middle", &format!("simulated time (0 – {total})"));
    doc.finish()
}

/// One group of bars (e.g. one job) for [`render_grouped_bars`].
#[derive(Clone, Debug)]
pub struct BarGroup {
    /// Group label (x axis).
    pub label: String,
    /// (series label, value) pairs.
    pub values: Vec<(String, f64)>,
}

/// Render a grouped bar chart (paper Fig. 13d: per-job mean packet latency
/// under three placement policies). Like the paper's figure, each group
/// gets its own y scale (its maximum is printed above it) so jobs whose
/// magnitudes differ by orders of magnitude stay readable side by side.
pub fn render_grouped_bars(
    groups: &[BarGroup],
    w: f64,
    h: f64,
    title: &str,
    y_label: &str,
) -> String {
    let mut doc = SvgDoc::new(w, h);
    frame(&mut doc, w, h, title, "", y_label);
    let palette = ColorScale::from_names(&["steelblue", "orange", "green", "purple", "brown"]);
    let gw = (w - MARGIN_L - MARGIN_R) / groups.len().max(1) as f64;
    let series_n = groups.iter().map(|g| g.values.len()).max().unwrap_or(1);
    for (gi, g) in groups.iter().enumerate() {
        let x0 = MARGIN_L + gi as f64 * gw;
        let bw = gw * 0.8 / series_n as f64;
        let y_max = g.values.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
        for (si, (_, v)) in g.values.iter().enumerate() {
            let x = x0 + gw * 0.1 + si as f64 * bw;
            let y = y_of(*v, y_max, h);
            doc.rect(x, y, bw * 0.92, (h - MARGIN_B) - y, palette.pick(si), None);
        }
        doc.text(x0 + gw / 2.0, h - MARGIN_B + 12.0, 9.0, "middle", &g.label);
        doc.text(
            x0 + gw / 2.0,
            MARGIN_T + 2.0,
            8.0,
            "middle",
            &format!("max {}", format_si(y_max)),
        );
    }
    // Legend from the first group's series labels.
    if let Some(g) = groups.first() {
        for (si, (label, _)) in g.values.iter().enumerate() {
            let x = w - MARGIN_R - 120.0;
            let y = MARGIN_T + si as f64 * 14.0;
            doc.rect(x, y - 8.0, 10.0, 10.0, palette.pick(si), None);
            doc.text(x + 14.0, y, 9.0, "start", label);
        }
    }
    doc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hrviz_core::dataset::{LinkRow, TerminalRow};
    use hrviz_core::{DataSet, EntityKind};

    fn detail() -> DetailView {
        let mut d = DataSet { jobs: vec!["a".into()], ..DataSet::default() };
        for i in 0..5u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i,
                group: 0,
                rank: i,
                port: 0,
                job: 0,
                data_size: i as f64,
                recv_bytes: 0.0,
                busy: 1.0,
                sat: 2.0 * i as f64,
                packets_finished: 1.0,
                packets_sent: 1.0,
                avg_latency: 100.0,
                avg_hops: 3.0,
            });
        }
        d.global_links.push(LinkRow {
            src_router: 0,
            src_group: 0,
            src_rank: 0,
            src_port: 0,
            dst_router: 1,
            dst_group: 1,
            dst_rank: 0,
            dst_port: 0,
            src_job: 0,
            dst_job: 0,
            traffic: 500.0,
            sat: 20.0,
        });
        DetailView::new(&d)
    }

    #[test]
    fn scatter_renders_points_and_axes() {
        let d = detail();
        let svg = render_link_scatter(&d.global_links, 300.0, 200.0, "Global links");
        assert!(svg.contains("Global links"));
        assert_eq!(svg.matches("<circle").count(), 1);
        assert!(svg.contains("traffic (byte)"));
        assert!(svg.contains("500")); // tick label for max
    }

    #[test]
    fn highlighted_points_differ() {
        let mut d = detail();
        d.highlight(EntityKind::GlobalLink, &[0]);
        let svg = render_link_scatter(&d.global_links, 300.0, 200.0, "");
        assert!(svg.contains("#f0c814")); // highlight yellow
    }

    #[test]
    fn pcp_renders_axes_and_lines() {
        let mut d = detail();
        d.highlight(EntityKind::Terminal, &[2]);
        let svg = render_parallel_coords(&d, 500.0, 240.0, "terminals");
        assert_eq!(svg.matches("<polyline").count(), 5);
        assert!(svg.contains("avg_latency"));
        assert!(svg.contains("pcp-highlight"));
    }

    #[test]
    fn timeline_renders_panels_and_selection() {
        let tl = TimelineView {
            bin_width: hrviz_pdes::SimTime::micros(1),
            series: vec![
                hrviz_core::TimelineSeries { label: "local".into(), values: vec![1.0, 5.0, 2.0] },
                hrviz_core::TimelineSeries { label: "global".into(), values: vec![0.0, 1.0, 0.0] },
            ],
            selection: Some((1, 2)),
        };
        let svg = render_timeline(&tl, 400.0, 90.0, "traffic");
        assert_eq!(svg.matches("timeline-panel").count(), 2);
        assert!(svg.contains("local"));
        assert!(svg.contains("<rect"), "selection shading present");
        assert!(svg.contains("simulated time"));
    }

    #[test]
    fn grouped_bars_render_all_series() {
        let groups = vec![
            BarGroup {
                label: "AMG".into(),
                values: vec![("rg".into(), 54.0), ("rr".into(), 40.0), ("hy".into(), 48.0)],
            },
            BarGroup {
                label: "MiniFE".into(),
                values: vec![("rg".into(), 1300.0), ("rr".into(), 1290.0), ("hy".into(), 1240.0)],
            },
        ];
        let svg = render_grouped_bars(&groups, 420.0, 240.0, "Fig 13d", "avg latency (us)");
        // 6 bars + 3 legend swatches + background.
        assert_eq!(svg.matches("<rect").count(), 1 + 6 + 3);
        assert!(svg.contains("AMG"));
        assert!(svg.contains("avg latency (us)"));
    }
}
