//! Fig. 6 — the full user interface on a 2,550-terminal Dragonfly running
//! AMG (1,728 ranks): projection view, detail view (link scatters +
//! terminal parallel coordinates), timeline view, time-range selection
//! onto the second traffic burst, and selection-driven highlighting.

use hrviz_bench::{intra_group_spec, run_app, write_csv, write_out, Expectations};
use hrviz_core::{brush_axis, build_view, DataSet, DetailView, Field, TimelineView};
use hrviz_network::RoutingAlgorithm;
use hrviz_pdes::SimTime;
use hrviz_render::{
    render_link_scatter, render_parallel_coords, render_radial, render_timeline, RadialLayout,
};
use hrviz_workloads::{AppKind, PlacementPolicy};

fn main() {
    hrviz_bench::obs_init("fig6_interface");
    println!("Fig. 6: interactive interface around an AMG run (2,550 terminals)");
    // AMG with its Fig. 12 sampling rate (0.02 ms).
    let run = run_app(
        2_550,
        AppKind::Amg,
        RoutingAlgorithm::adaptive_default(),
        PlacementPolicy::Contiguous,
        Some((AppKind::Amg.fig12_sampling(), 4_000)),
    );

    // (a) Projection view over the whole run (idle terminals filtered out,
    // as in the paper).
    let ds = DataSet::builder(&run).drop_idle().build();
    let view = build_view(&ds, &intra_group_spec()).expect("view builds");
    write_out(
        "fig6a_projection.svg",
        &render_radial(&view, &RadialLayout::default(), "Fig 6a: AMG projection view"),
    );

    // (b) Detail view with a selection: pick the projection's hottest
    // terminal aggregate and highlight its members.
    let mut detail = DetailView::new(&ds);
    let hot_ring = view.rings.len() - 1;
    let hot_item = view.rings[hot_ring]
        .items
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.color.partial_cmp(&b.1.color).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .expect("items exist");
    let (kind, rows) = view.item_rows(hot_ring, hot_item);
    detail.highlight(kind, rows);
    write_out(
        "fig6b_global_scatter.svg",
        &render_link_scatter(
            &detail.global_links,
            360.0,
            240.0,
            "Global links: traffic vs saturation",
        ),
    );
    write_out(
        "fig6b_local_scatter.svg",
        &render_link_scatter(
            &detail.local_links,
            360.0,
            240.0,
            "Local links: traffic vs saturation",
        ),
    );
    write_out(
        "fig6b_terminals_pcp.svg",
        &render_parallel_coords(&detail, 640.0, 300.0, "Terminals (highlight = hottest aggregate)"),
    );

    // (c) Timeline with the second AMG burst selected.
    let mut tl = TimelineView::traffic(&run).expect("sampled run");
    let bins = tl.num_bins();
    // Find the burst nearest mid-run: peak within the middle third.
    let vals = &tl.series[0].values;
    let third = bins / 3;
    let mid_peak = (third..2 * third)
        .max_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap_or(bins / 2);
    let (t0, t1) = tl.select_bins(mid_peak.saturating_sub(2), (mid_peak + 3).min(bins));
    write_out(
        "fig6c_timeline.svg",
        &render_timeline(
            &tl,
            760.0,
            90.0,
            "Fig 6c: link traffic over time (selection = 2nd burst)",
        ),
    );

    // Re-derive the projection for the selected range (the paper's linked
    // interaction).
    let ds_range = DataSet::builder(&run).range(t0, t1).drop_idle().build();
    let view_range = build_view(&ds_range, &intra_group_spec()).expect("ranged view builds");
    write_out(
        "fig6_projection_burst.svg",
        &render_radial(
            &view_range,
            &RadialLayout::default(),
            &format!("Fig 6: projection restricted to burst window {t0} - {t1}"),
        ),
    );

    // Brushing: terminals in the top latency decile.
    let lat_max = ds.terminals.iter().map(|t| t.avg_latency).fold(0.0f64, f64::max);
    let brushed = brush_axis(&ds, Field::AvgLatency, 0.9 * lat_max, f64::INFINITY);

    let mut rows_csv = vec![vec!["metric".into(), "value".into()]];
    rows_csv.push(vec!["burst_window_start_ns".into(), t0.as_nanos().to_string()]);
    rows_csv.push(vec!["burst_window_end_ns".into(), t1.as_nanos().to_string()]);
    rows_csv.push(vec!["highlighted_terminals".into(), detail.highlighted_terminals().to_string()]);
    rows_csv
        .push(vec!["brushed_high_latency_terminals".into(), brushed.terminals.len().to_string()]);
    rows_csv.push(vec!["active_terminals".into(), ds.terminals.len().to_string()]);
    write_csv("fig6_interaction.csv", &rows_csv);

    let mut exp = Expectations::new();
    exp.check("AMG occupies 1728 of 2550 terminals", ds.terminals.len() == 1728);
    exp.check("time-range projection has traffic only in the window", {
        let full: f64 = ds.terminals.iter().map(|t| t.data_size).sum();
        let ranged: f64 = ds_range.terminals.iter().map(|t| t.data_size).sum();
        ranged > 0.0 && ranged < full
    });
    exp.check("selection highlights terminals in the detail view", {
        kind == hrviz_core::EntityKind::Terminal && detail.highlighted_terminals() > 0
    });
    exp.check("brushing isolates the high-latency tail", {
        !brushed.terminals.is_empty() && brushed.terminals.len() < ds.terminals.len() / 2
    });
    exp.check(
        "timeline selection window is inside the run",
        t1 <= run.end_time + SimTime::millis(1),
    );
    std::process::exit(i32::from(!exp.finish("fig6")));
}
