//! # hrviz-pdes — ROSS-style discrete-event simulation engine
//!
//! The paper couples its visual analytics system with CODES, which runs on
//! ROSS, a parallel discrete-event simulator (PDES). This crate is the
//! reproduction's substrate: a deterministic event-driven engine with
//!
//! * integer-nanosecond [`SimTime`] and a total event order ([`EventKey`]),
//! * logical processes ([`Lp`]) that interact *only* through events,
//! * a sequential reference engine ([`Engine`]),
//! * a conservative, lookahead-windowed parallel engine
//!   ([`ParallelEngine`]) that produces bit-identical results, and
//! * two interchangeable pending-event sets ([`HeapQueue`],
//!   [`CalendarQueue`]).
//!
//! ## Example
//!
//! ```
//! use hrviz_pdes::{Engine, Lp, Ctx, LpId, SimTime};
//!
//! struct PingPong { hits: u32 }
//!
//! impl Lp<&'static str> for PingPong {
//!     fn on_event(&mut self, ctx: &mut Ctx<'_, &'static str>, msg: &'static str) {
//!         self.hits += 1;
//!         if self.hits < 3 {
//!             let peer = LpId(1 - ctx.me().0);
//!             ctx.send(peer, SimTime::nanos(100), msg);
//!         }
//!     }
//! }
//!
//! let mut eng = Engine::new(vec![PingPong { hits: 0 }, PingPong { hits: 0 }],
//!                           SimTime::nanos(100));
//! eng.schedule(SimTime::ZERO, LpId(0), "ball");
//! eng.run_to_completion();
//! assert_eq!(eng.lp(LpId(0)).hits + eng.lp(LpId(1)).hits, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod error;
pub mod event;
pub mod lp;
pub mod parallel;
pub mod time;
pub mod wire;

pub use calendar::{CalendarQueue, EventQueue, HeapQueue};
pub use engine::{Engine, EngineStats, RunOutcome};
pub use error::{SimError, WatchdogConfig};
pub use event::{Event, EventKey, LpId, EXTERNAL_SRC};
pub use lp::{Ctx, Lp};
pub use parallel::ParallelEngine;
pub use time::SimTime;
pub use wire::{SnapshotError, WirePayload, WireReader, WireWriter};
