//! Extension: serving the run store (EXPERIMENTS.md `ext_serve`). Sweeps
//! the same 2-run grid (72-terminal Dragonfly, minimal vs adaptive) into
//! a flat store and a 4-shard store, binds `hrviz-serve` on loopback
//! ports with 4 workers, and measures:
//!
//! * the caching ladder from a real TCP client — cold `POST /views`
//!   (disk load + aggregate + project + render), the warm byte-identical
//!   repeat, and the conditional `304`;
//! * sustained warm throughput over pipelined keep-alive connections
//!   (the ROADMAP `≥100k req/s` target) and tail latency under a 2×
//!   overload burst;
//! * paged-view determinism: a cursor walk against the 4-shard store is
//!   byte-identical (node for node) to the flat store's unpaged reply.
//!
//! Latencies, the cold/warm speedup, the sustained rate, and the p99
//! land in `out/BENCH_ext_serve.json`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

use hrviz_bench::{out_dir, Expectations};
use hrviz_network::RoutingAlgorithm;
use hrviz_obs::{Json, PerfRecord};
use hrviz_pdes::SimTime;
use hrviz_serve::{ServeConfig, Server, ServerHandle};
use hrviz_sweep::{RunStore, SweepEngine, SweepSpec, TopologyAxis};

const SCRIPT: &str = r#"{ project: "terminal", aggregate: "router_id",
                          vmap: { color: "sat_time", size: "traffic" } }"#;
const WARM_SAMPLES: usize = 30;
const PIPELINE_CLIENTS: usize = 4;
const PIPELINE_BATCH: usize = 64;
const THROUGHPUT_WINDOW_S: f64 = 2.0;
const OVERLOAD_CLIENTS: usize = 8; // 2× the worker count
const OVERLOAD_WINDOW_S: f64 = 2.0;

/// Status line, ETag (if any), and body of one round-tripped request.
struct Reply {
    status: u16,
    etag: Option<String>,
    body: Vec<u8>,
}

fn request_bytes(path: &str, body: &str, inm: Option<&str>, close: bool) -> String {
    let mut req =
        format!("POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n", body.len());
    if let Some(tag) = inm {
        req.push_str(&format!("If-None-Match: {tag}\r\n"));
    }
    if close {
        req.push_str("Connection: close\r\n");
    }
    req.push_str("\r\n");
    req.push_str(body);
    req
}

/// One request per fresh connection (`Connection: close`), read to EOF.
fn post(addr: SocketAddr, path: &str, body: &str, inm: Option<&str>) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream.write_all(request_bytes(path, body, inm, true).as_bytes()).expect("send request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read reply");
    let split = buf.windows(4).position(|w| w == b"\r\n\r\n").expect("complete reply");
    parse_head(&buf[..split], buf[split + 4..].to_vec())
}

fn parse_head(head: &[u8], body: Vec<u8>) -> Reply {
    let head = String::from_utf8_lossy(head).into_owned();
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let etag = head.lines().find_map(|l| {
        let (k, v) = l.split_once(':')?;
        k.eq_ignore_ascii_case("etag").then(|| v.trim().to_string())
    });
    Reply { status, etag, body }
}

/// Read one `Content-Length`-framed reply off a keep-alive connection.
fn read_framed(reader: &mut BufReader<TcpStream>) -> Reply {
    let mut head = Vec::new();
    let mut line = String::new();
    let mut length = 0usize;
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read header line");
        assert!(n > 0, "EOF inside reply headers");
        if line == "\r\n" {
            break;
        }
        head.extend_from_slice(line.as_bytes());
        if let Some(v) = line.strip_prefix("Content-Length: ") {
            length = v.trim().parse().expect("numeric length");
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("read body");
    parse_head(&head, body)
}

/// Median seconds over `n` round trips of the same request.
fn median_latency(n: usize, mut one: impl FnMut() -> Reply) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            let _ = one();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    samples[samples.len() / 2]
}

/// Sustained warm throughput: `clients` pipelined keep-alive connections,
/// each writing `PIPELINE_BATCH` conditional requests per burst and
/// draining the batch of `304`s, for `window_s`. Returns (req/s, errors).
fn pipelined_rate(
    addr: SocketAddr,
    path: &str,
    tag: &str,
    clients: usize,
    window_s: f64,
) -> (f64, u64) {
    let t0 = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let batch = request_bytes(path, SCRIPT, Some(tag), false).repeat(PIPELINE_BATCH);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::with_capacity(64 * 1024, stream);
                let deadline = Instant::now() + Duration::from_secs_f64(window_s);
                let mut done = 0u64;
                let mut errors = 0u64;
                while Instant::now() < deadline {
                    writer.write_all(batch.as_bytes()).expect("send batch");
                    for _ in 0..PIPELINE_BATCH {
                        let reply = read_framed(&mut reader);
                        errors += u64::from(reply.status != 304);
                    }
                    done += PIPELINE_BATCH as u64;
                }
                (done, errors)
            })
        })
        .collect();
    let results: Vec<(u64, u64)> =
        threads.into_iter().map(|t| t.join().expect("pipeline client")).collect();
    let wall = t0.elapsed().as_secs_f64();
    let done: u64 = results.iter().map(|(d, _)| d).sum();
    let errors: u64 = results.iter().map(|(_, e)| e).sum();
    (done as f64 / wall.max(1e-9), errors)
}

/// Overload burst: `OVERLOAD_CLIENTS` closed-loop keep-alive clients
/// (one request in flight each) hammering the warm path. Returns the
/// pooled p99 latency in seconds and the error count.
fn overload_p99(addr: SocketAddr, path: &str, tag: &str) -> (f64, u64) {
    let threads: Vec<_> = (0..OVERLOAD_CLIENTS)
        .map(|_| {
            let req = request_bytes(path, SCRIPT, Some(tag), false);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
                let mut writer = stream.try_clone().expect("clone");
                let mut reader = BufReader::with_capacity(16 * 1024, stream);
                let deadline = Instant::now() + Duration::from_secs_f64(OVERLOAD_WINDOW_S);
                let mut lat = Vec::new();
                let mut errors = 0u64;
                while Instant::now() < deadline {
                    let t = Instant::now();
                    writer.write_all(req.as_bytes()).expect("send");
                    let reply = read_framed(&mut reader);
                    lat.push(t.elapsed().as_secs_f64());
                    errors += u64::from(reply.status != 304);
                }
                (lat, errors)
            })
        })
        .collect();
    let mut all = Vec::new();
    let mut errors = 0u64;
    for t in threads {
        let (lat, e) = t.join().expect("overload client");
        all.extend(lat);
        errors += e;
    }
    all.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    assert!(!all.is_empty(), "overload clients completed at least one request");
    let p99 = all[((all.len() * 99) / 100).min(all.len() - 1)];
    (p99, errors)
}

fn build_store(dir: &Path, shards: u32) -> RunStore {
    let _ = std::fs::remove_dir_all(dir);
    let store = if shards > 1 {
        RunStore::open_sharded(dir, shards).expect("open sharded store")
    } else {
        RunStore::open(dir).expect("open store")
    };
    let spec = SweepSpec::new("ext_serve", TopologyAxis::Dragonfly { terminals: 72 })
        .routings([RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
        .msgs_per_rank(8)
        .msg_bytes(4 * 1024)
        .period(SimTime::micros(2));
    let engine = SweepEngine::new(store).with_workers(2);
    engine.run(&spec).expect("sweep the store");
    if shards > 1 {
        RunStore::open_sharded(dir, shards).expect("reopen store")
    } else {
        RunStore::open(dir).expect("reopen store")
    }
}

fn bind(
    store: RunStore,
) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<hrviz_serve::ServeReport>) {
    // The per-connection request cap exists to bound rogue clients; the
    // throughput clients here legitimately stream millions.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        keepalive_requests: 10_000_000,
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg, store).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));
    (addr, handle, thread)
}

/// Walk `/views` page by page and return the concatenated node JSON
/// (exactly the bytes inside `"nodes":[...]` across all pages) plus the
/// envelope's `source_hash`/`policy_hash`/`root`/`total_nodes` fields.
fn walk_pages(addr: SocketAddr, run: &str, page_size: usize) -> (String, String) {
    let mut nodes = String::new();
    let mut envelope_fields = String::new();
    let mut cursor: Option<String> = None;
    loop {
        let path = match &cursor {
            None if page_size == 0 => format!("/views?run={run}"),
            None => format!("/views?run={run}&page_size={page_size}"),
            Some(c) => format!("/views?run={run}&page_size={page_size}&cursor={c}"),
        };
        let reply = post(addr, &path, SCRIPT, None);
        assert_eq!(reply.status, 200, "page walk reply: {}", String::from_utf8_lossy(&reply.body));
        let text = String::from_utf8_lossy(&reply.body).into_owned();
        let env = Json::parse(&text).expect("envelope JSON");
        if envelope_fields.is_empty() {
            for key in ["source_hash", "policy_hash", "root", "total_nodes"] {
                let v = env.get(key).expect("envelope field");
                envelope_fields.push_str(&format!("{key}={};", v.render()));
            }
        }
        for node in env.get("nodes").and_then(Json::as_array).expect("nodes") {
            nodes.push_str(&node.render());
            nodes.push('\n');
        }
        match env.get("next_cursor").and_then(Json::as_str) {
            Some(tok) => cursor = Some(tok.to_string()),
            None => break,
        }
    }
    (nodes, envelope_fields)
}

fn main() {
    hrviz_bench::obs_init("ext_serve");
    println!("Extension: serving the run store (hrviz-serve, Dragonfly 72t, 2 runs)");
    let out = out_dir();
    let t0 = Instant::now();

    let store = build_store(&out.join("store_ext_serve"), 1);
    let runs = store.runs().expect("list runs");
    assert_eq!(runs.len(), 2, "two configs, two runs");
    let sweep_wall = t0.elapsed().as_secs_f64();
    println!("  store built: {} runs in {sweep_wall:.3}s", runs.len());

    let (addr, handle, serve_thread) = bind(store);
    let views_path = format!("/views?run={}", runs[0]);

    // Cold: every cache layer misses.
    let t_cold = Instant::now();
    let cold = post(addr, &views_path, SCRIPT, None);
    let cold_s = t_cold.elapsed().as_secs_f64();
    let tag = cold.etag.clone().unwrap_or_default();
    println!("  cold  POST /views: {:>8.1} µs  ({} bytes)", cold_s * 1e6, cold.body.len());

    // Warm: the body cache answers.
    let warm = post(addr, &views_path, SCRIPT, None);
    let warm_s = median_latency(WARM_SAMPLES, || post(addr, &views_path, SCRIPT, None));
    println!("  warm  POST /views: {:>8.1} µs  (median of {WARM_SAMPLES})", warm_s * 1e6);

    // Conditional: the client already holds the bytes.
    let nm = post(addr, &views_path, SCRIPT, Some(&tag));
    let nm_s = median_latency(WARM_SAMPLES, || post(addr, &views_path, SCRIPT, Some(&tag)));
    println!("  cond. 304 repeat:  {:>8.1} µs  (median of {WARM_SAMPLES})", nm_s * 1e6);

    // Sustained warm throughput: pipelined keep-alive conditionals.
    let (sustained_rps, pipeline_errors) =
        pipelined_rate(addr, &views_path, &tag, PIPELINE_CLIENTS, THROUGHPUT_WINDOW_S);
    println!(
        "  pipelined warm:    {sustained_rps:>8.0} req/s \
         ({PIPELINE_CLIENTS} keep-alive clients, batches of {PIPELINE_BATCH})"
    );

    // Overload: 2× the worker count in closed-loop clients; the tail must
    // stay bounded and nothing may error.
    let (p99_s, overload_errors) = overload_p99(addr, &views_path, &tag);
    println!("  overload p99:      {:>8.1} µs  ({OVERLOAD_CLIENTS} clients)", p99_s * 1e6);

    // Paged walk against a 4-shard store vs the flat unpaged baseline.
    let (flat_nodes, flat_env) = walk_pages(addr, &runs[0], 0);
    handle.shutdown();
    let report = serve_thread.join().expect("serve thread");

    let sharded = build_store(&out.join("store_ext_serve_s4"), 4);
    assert_eq!(sharded.shard_count(), 4);
    let sharded_runs = sharded.runs().expect("list sharded runs");
    let (shard_addr, shard_handle, shard_thread) = bind(sharded);
    let (paged_nodes, paged_env) = walk_pages(shard_addr, &runs[0], 16);
    shard_handle.shutdown();
    let shard_report = shard_thread.join().expect("sharded serve thread");
    let pages_identical = flat_nodes == paged_nodes && flat_env == paged_env;
    println!(
        "  shard identity:    {} node bytes, {}",
        flat_nodes.len(),
        if pages_identical { "4-shard paged walk == flat unpaged" } else { "MISMATCH" }
    );

    let speedup = cold_s / warm_s.max(1e-9);
    println!("  cold/warm speedup {speedup:.1}x   report: {report:?}");

    let mut exp = Expectations::new();
    exp.check("cold view answers 200 with an ETag", cold.status == 200 && cold.etag.is_some());
    exp.check(
        "warm repeat is byte-identical",
        warm.status == 200 && warm.body == cold.body && warm.etag == cold.etag,
    );
    exp.check("warm hit ≥5× faster than the cold build", speedup >= 5.0);
    exp.check(
        "conditional repeat answers 304 with no body",
        nm.status == 304 && nm.body.is_empty(),
    );
    exp.check("conditional 304 is no slower than 2× a warm hit", nm_s <= warm_s * 2.0);
    exp.check("pipelined warm burst: every response a 304", pipeline_errors == 0);
    exp.check("overload burst: no errors", overload_errors == 0);
    exp.check("overload p99 bounded (≤50 ms at 2× workers)", p99_s <= 0.050);
    exp.check(
        "4-shard paged walk byte-identical to flat unpaged baseline",
        pages_identical && sharded_runs == runs,
    );
    exp.check("nothing shed at 4 workers", report.shed == 0 && shard_report.shed == 0);
    let ok = exp.finish("ext_serve");

    let mut perf = PerfRecord::new("ext_serve");
    perf.wall_time_s = t0.elapsed().as_secs_f64();
    perf.events_per_sec = sustained_rps; // requests/s: the rate this driver is about
    perf.extra = vec![
        ("sweep_wall_s".into(), Json::from(sweep_wall)),
        ("cold_us".into(), Json::from(cold_s * 1e6)),
        ("warm_median_us".into(), Json::from(warm_s * 1e6)),
        ("not_modified_median_us".into(), Json::from(nm_s * 1e6)),
        ("cold_warm_speedup".into(), Json::from(speedup)),
        ("sustained_rps".into(), Json::from(sustained_rps)),
        ("pipeline_clients".into(), Json::from(PIPELINE_CLIENTS as u64)),
        ("overload_p99_us".into(), Json::from(p99_s * 1e6)),
        ("overload_clients".into(), Json::from(OVERLOAD_CLIENTS as u64)),
        ("requests_handled".into(), Json::from(report.requests)),
        ("requests_shed".into(), Json::from(report.shed)),
        ("view_bytes".into(), Json::from(cold.body.len() as u64)),
        ("shard_walk_node_bytes".into(), Json::from(flat_nodes.len() as u64)),
    ];
    match perf.write(&out) {
        Ok(p) => println!("  wrote {}", p.display()),
        Err(e) => eprintln!("  perf record write failed: {e}"),
    }
    std::process::exit(i32::from(!ok));
}
