//! Simulation time.
//!
//! All simulation timestamps are integer nanoseconds wrapped in [`SimTime`].
//! Using integers (rather than `f64`, as some simulators do) makes event
//! ordering total and exact, which in turn makes sequential and parallel
//! executions bit-identical — a property the conservative scheduler in
//! [`crate::parallel`] relies on.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the run.
///
/// `SimTime` is also used for durations; the arithmetic operators saturate
/// on underflow rather than panicking so that metric code can subtract
/// timestamps without pre-checking ordering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the beginning of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never" / run-forever bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// One nanosecond.
    pub const fn nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// `us` microseconds.
    pub const fn micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// `ms` milliseconds.
    pub const fn millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction; `a.saturating_sub(b) == ZERO` when `b > a`.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The larger of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimTime::micros(1), SimTime::nanos(1_000));
        assert_eq!(SimTime::millis(1), SimTime::micros(1_000));
        assert_eq!(SimTime::millis(3).as_nanos(), 3_000_000);
    }

    #[test]
    fn ordering_is_total() {
        let mut ts = vec![SimTime(5), SimTime(1), SimTime(3)];
        ts.sort();
        assert_eq!(ts, vec![SimTime(1), SimTime(3), SimTime(5)]);
    }

    #[test]
    fn subtraction_saturates() {
        assert_eq!(SimTime(3) - SimTime(10), SimTime::ZERO);
        assert_eq!(SimTime(10).saturating_sub(SimTime(3)), SimTime(7));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(SimTime(2) + SimTime(3), SimTime(5));
        assert_eq!(SimTime(6) / 2, SimTime(3));
        assert_eq!(SimTime(6) * 2, SimTime(12));
        let mut t = SimTime(1);
        t += SimTime(2);
        assert_eq!(t, SimTime(3));
        t -= SimTime(5);
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime(12).to_string(), "12ns");
        assert_eq!(SimTime::micros(2).to_string(), "2.000us");
        assert_eq!(SimTime::millis(2).to_string(), "2.000ms");
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [SimTime(1), SimTime(2), SimTime(3)].into_iter().sum();
        assert_eq!(total, SimTime(6));
    }

    #[test]
    fn conversions_to_float() {
        assert_eq!(SimTime::micros(1).as_micros_f64(), 1.0);
        assert_eq!(SimTime::millis(1).as_millis_f64(), 1.0);
    }
}
