//! Projection views: the hierarchical radial visualization (paper §IV-B).
//!
//! [`build_view`] turns a [`ProjectionSpec`] + [`DataSet`] into a resolved
//! [`ProjectionView`]: concentric rings of visual items with normalized
//! encodings, partition arcs, and bundled link ribbons in the center. The
//! view model is geometry-free (angular spans in turns, values in `[0,1]`);
//! `hrviz-render` turns it into SVG.

use crate::aggregate::{bin_items, group_rows, AggregateCache, AggregateItem, DataKey};
use crate::color::{Color, ColorScale};
use crate::dataset::DataSet;
use crate::entity::{AggRule, EntityKind, Field};
use crate::spec::{LevelSpec, PlotKind, ProjectionSpec, RibbonSpec, SpecError};
use std::collections::{BTreeMap, HashMap};

/// Min/max scales per (level, encoding), shared across views for fair
/// comparison (paper §IV-B2: "the scale for visual encoding uses the same
/// minimum and maximum values").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScaleSet {
    /// Per (level index, encoding name) extents.
    pub encodings: HashMap<(usize, &'static str), (f64, f64)>,
    /// Ribbon size extent.
    pub ribbon_size: Option<(f64, f64)>,
    /// Ribbon color extent.
    pub ribbon_color: Option<(f64, f64)>,
    /// Arc weight extent.
    pub arc_weight: Option<(f64, f64)>,
}

impl ScaleSet {
    /// Merge extents from another scale set (union of ranges).
    pub fn merge(&mut self, other: &ScaleSet) {
        for (k, &(lo, hi)) in &other.encodings {
            let e = self.encodings.entry(*k).or_insert((lo, hi));
            e.0 = e.0.min(lo);
            e.1 = e.1.max(hi);
        }
        let merge_opt = |a: &mut Option<(f64, f64)>, b: Option<(f64, f64)>| {
            if let Some((lo, hi)) = b {
                match a {
                    Some(e) => {
                        e.0 = e.0.min(lo);
                        e.1 = e.1.max(hi);
                    }
                    None => *a = Some((lo, hi)),
                }
            }
        };
        merge_opt(&mut self.ribbon_size, other.ribbon_size);
        merge_opt(&mut self.ribbon_color, other.ribbon_color);
        merge_opt(&mut self.arc_weight, other.arc_weight);
    }
}

fn normalize(v: f64, (lo, hi): (f64, f64)) -> f64 {
    if hi > lo {
        ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
    } else if v != 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Raw (unnormalized) encoding values of an item, for tooltips/reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RawValues {
    /// Color metric value.
    pub color: Option<f64>,
    /// Size metric value.
    pub size: Option<f64>,
    /// X metric value.
    pub x: Option<f64>,
    /// Y metric value.
    pub y: Option<f64>,
}

/// One visual item on a ring.
#[derive(Clone, Debug)]
pub struct VisualItem {
    /// Group key (or `[row]`/`[bin]` for individuals/bins).
    pub key: Vec<f64>,
    /// Member row indices in the dataset table of the ring's entity.
    pub rows: Vec<usize>,
    /// Angular span in turns, `[start, end)` ⊂ [0, 1].
    pub span: (f64, f64),
    /// Normalized color value (None when the level has no color encoding).
    pub color: Option<f64>,
    /// Normalized size value.
    pub size: Option<f64>,
    /// Normalized x value.
    pub x: Option<f64>,
    /// Normalized y value.
    pub y: Option<f64>,
    /// Raw values backing the encodings.
    pub raw: RawValues,
    /// Resolved fill color.
    pub fill: Color,
}

/// One ring of the view.
#[derive(Clone, Debug)]
pub struct Ring {
    /// Plot type (inferred from the encoding count).
    pub plot: PlotKind,
    /// Entity kind projected.
    pub entity: EntityKind,
    /// Items in key order.
    pub items: Vec<VisualItem>,
    /// Whether items draw borders.
    pub border: bool,
}

/// A bundled-links ribbon between two ring-0 items.
#[derive(Clone, Debug)]
pub struct Ribbon {
    /// Ring-0 item index of one end.
    pub a: usize,
    /// Ring-0 item index of the other end.
    pub b: usize,
    /// Normalized width.
    pub size: f64,
    /// Raw size-metric total.
    pub raw_size: f64,
    /// Raw color metric (max of the two directions, §IV-B1).
    pub raw_color: f64,
    /// Resolved color.
    pub color: Color,
}

/// A ring-0 partition arc.
#[derive(Clone, Debug)]
pub struct ArcSegment {
    /// Group key of the partition.
    pub key: Vec<f64>,
    /// Angular span in turns.
    pub span: (f64, f64),
    /// Display label.
    pub label: String,
}

/// The resolved projection view.
#[derive(Clone, Debug)]
pub struct ProjectionView {
    /// Rings, innermost first (ring 0 also defines the arcs).
    pub rings: Vec<Ring>,
    /// Center ribbons.
    pub ribbons: Vec<Ribbon>,
    /// Partition arcs (one per ring-0 item).
    pub arcs: Vec<ArcSegment>,
}

impl ProjectionView {
    /// The dataset rows behind an item, for detail-view highlighting
    /// (paper §IV-C: selecting a visual aggregate highlights the
    /// corresponding entities).
    pub fn item_rows(&self, ring: usize, item: usize) -> (EntityKind, &[usize]) {
        let r = &self.rings[ring];
        (r.entity, &r.items[item].rows)
    }
}

fn key_bits(key: &[f64]) -> Vec<u64> {
    key.iter().map(|v| v.to_bits()).collect()
}

struct LevelBuild {
    items: Vec<AggregateItem>,
    /// Original group key → final item index (differs when binning merged).
    key_to_item: BTreeMap<Vec<u64>, usize>,
}

/// Optional aggregation memoization: views built over a stored run thread
/// the cache plus the run's [`DataKey`] through every grouping call.
type Cache<'a> = Option<(&'a AggregateCache, DataKey)>;

fn build_level_items(ds: &DataSet, lv: &LevelSpec, cache: Cache) -> LevelBuild {
    // Filter rows first.
    let n = ds.len(lv.entity);
    let passes = |i: usize| lv.filter.iter().all(|c| c.accepts(ds.value(lv.entity, i, c.field)));
    // Group (respecting filters) — group_rows works on the whole table, so
    // group then strip filtered rows. The grouping (the sort) is the
    // expensive part, so that is what the cache memoizes; the filter and
    // binning below mutate a clone of the shared result.
    let mut items = match cache {
        Some((c, key)) => (*c.group_rows(key, ds, lv.entity, &lv.aggregate)).clone(),
        None => group_rows(ds, lv.entity, &lv.aggregate),
    };
    if !lv.filter.is_empty() {
        for it in &mut items {
            it.rows.retain(|&r| passes(r));
        }
        items.retain(|it| !it.rows.is_empty());
    }
    let _ = n;
    let base_keys: Vec<Vec<u64>> = items.iter().map(|it| key_bits(&it.key)).collect();

    let mut key_to_item = BTreeMap::new();
    let items = match lv.max_bins {
        Some(cap) if items.len() > cap => {
            // Bin by the primary metric: size if mapped, else color, else traffic.
            let by = lv
                .vmap
                .size
                .or(lv.vmap.color)
                .filter(|f| f.rule() != AggRule::Key)
                .unwrap_or(Field::Traffic);
            // Record which bin each original key landed in by re-deriving
            // membership from rows.
            let binned = bin_items(ds, lv.entity, items.clone(), by, cap);
            let mut row_to_bin = HashMap::new();
            for (bi, b) in binned.iter().enumerate() {
                for &r in &b.rows {
                    row_to_bin.insert(r, bi);
                }
            }
            for (it, kb) in items.iter().zip(base_keys) {
                if let Some(&bin) = it.rows.first().and_then(|r| row_to_bin.get(r)) {
                    key_to_item.insert(kb, bin);
                }
            }
            binned
        }
        _ => {
            for (i, kb) in base_keys.into_iter().enumerate() {
                key_to_item.insert(kb, i);
            }
            items
        }
    };
    LevelBuild { items, key_to_item }
}

fn level_scales(
    ds: &DataSet,
    lv: &LevelSpec,
    items: &[AggregateItem],
    level_idx: usize,
    out: &mut ScaleSet,
) {
    for (enc, field) in lv.vmap.entries() {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for it in items {
            let v = it.metric(ds, lv.entity, field);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if items.is_empty() {
            lo = 0.0;
            hi = 0.0;
        }
        // Volume metrics anchor at zero so empty == white.
        if field.rule() == AggRule::Sum {
            lo = lo.min(0.0);
        }
        let e = out.encodings.entry((level_idx, enc)).or_insert((lo, hi));
        e.0 = e.0.min(lo);
        e.1 = e.1.max(hi);
    }
}

/// Compute the auto scales a view of `spec` over `ds` would use; merge the
/// results from several datasets for fair cross-run comparison.
pub fn compute_scales(ds: &DataSet, spec: &ProjectionSpec) -> Result<ScaleSet, SpecError> {
    compute_scales_inner(ds, spec, None)
}

/// [`compute_scales`] with aggregation memoized through `cache` under the
/// stored run identified by `key`.
pub fn compute_scales_cached(
    ds: &DataSet,
    spec: &ProjectionSpec,
    cache: &AggregateCache,
    key: DataKey,
) -> Result<ScaleSet, SpecError> {
    compute_scales_inner(ds, spec, Some((cache, key)))
}

fn compute_scales_inner(
    ds: &DataSet,
    spec: &ProjectionSpec,
    cache: Cache,
) -> Result<ScaleSet, SpecError> {
    spec.validate()?;
    let mut scales = ScaleSet::default();
    for (i, lv) in spec.levels.iter().enumerate() {
        let build = build_level_items(ds, lv, cache);
        level_scales(ds, lv, &build.items, i, &mut scales);
    }
    // Ribbons + arcs.
    let ring0 = build_level_items(ds, &spec.levels[0], cache);
    if let Some(rs) = &spec.ribbons {
        let bundles = bundle_links(ds, spec, rs, &ring0);
        let (mut slo, mut shi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut clo, mut chi) = (f64::INFINITY, f64::NEG_INFINITY);
        for b in &bundles {
            slo = slo.min(b.raw_size);
            shi = shi.max(b.raw_size);
            clo = clo.min(b.raw_color);
            chi = chi.max(b.raw_color);
        }
        if !bundles.is_empty() {
            scales.ribbon_size = Some((slo.min(0.0), shi));
            scales.ribbon_color = Some((clo.min(0.0), chi));
        }
    }
    if let Some(w) = spec.arc_weight {
        let lv = &spec.levels[0];
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for it in &ring0.items {
            let v = it.metric(ds, lv.entity, w);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if !ring0.items.is_empty() {
            scales.arc_weight = Some((lo.min(0.0), hi));
        }
    }
    Ok(scales)
}

struct RawRibbon {
    a: usize,
    b: usize,
    raw_size: f64,
    raw_color: f64,
}

fn bundle_links(
    ds: &DataSet,
    spec: &ProjectionSpec,
    rs: &RibbonSpec,
    ring0: &LevelBuild,
) -> Vec<RawRibbon> {
    let ring0_spec = &spec.levels[0];
    let fields = &ring0_spec.aggregate;
    let dst_fields: Vec<Field> =
        fields.iter().map(|f| f.dst_counterpart().expect("validated")).collect();
    let n = ds.len(rs.entity);
    // Directed totals between item pairs.
    let mut size_dir: HashMap<(usize, usize), f64> = HashMap::new();
    let mut color_dir: HashMap<(usize, usize), f64> = HashMap::new();
    for row in 0..n {
        // Apply ring-0 filters to both endpoints so filtered views bundle
        // only the visible sub-network.
        let ok = ring0_spec.filter.iter().all(|c| {
            let src_ok = c.accepts(ds.value(rs.entity, row, c.field));
            let dst_ok = c
                .field
                .dst_counterpart()
                .map(|df| c.accepts(ds.value(rs.entity, row, df)))
                .unwrap_or(true);
            src_ok && dst_ok
        });
        if !ok {
            continue;
        }
        let src_key: Vec<u64> =
            fields.iter().map(|&f| ds.value(rs.entity, row, f).to_bits()).collect();
        let dst_key: Vec<u64> =
            dst_fields.iter().map(|&f| ds.value(rs.entity, row, f).to_bits()).collect();
        let (Some(&a), Some(&b)) =
            (ring0.key_to_item.get(&src_key), ring0.key_to_item.get(&dst_key))
        else {
            continue;
        };
        if a == b {
            continue; // intra-partition links are not drawn as ribbons
        }
        if let Some(f) = rs.size {
            *size_dir.entry((a, b)).or_default() += ds.value(rs.entity, row, f);
        }
        if let Some(f) = rs.color {
            *color_dir.entry((a, b)).or_default() += ds.value(rs.entity, row, f);
        }
    }
    // Fold directions: size = sum, color = max of the two ends (§IV-B1).
    let mut pairs: BTreeMap<(usize, usize), (f64, f64)> = BTreeMap::new();
    for (&(a, b), &s) in &size_dir {
        let k = (a.min(b), a.max(b));
        pairs.entry(k).or_insert((0.0, 0.0)).0 += s;
    }
    for (&(a, b), &c) in &color_dir {
        let k = (a.min(b), a.max(b));
        let e = pairs.entry(k).or_insert((0.0, 0.0));
        e.1 = e.1.max(c);
    }
    pairs
        .into_iter()
        .map(|((a, b), (raw_size, raw_color))| RawRibbon { a, b, raw_size, raw_color })
        .collect()
}

fn resolve_color(lv: &LevelSpec, field: Option<Field>, raw: f64, norm: f64, ds: &DataSet) -> Color {
    match field {
        Some(Field::Workload) => {
            // Categorical: palette entry per job, gray for idle/proxy.
            let idx = raw as usize;
            if idx < ds.jobs.len() && idx < lv.colors.len() {
                lv.colors.pick(idx)
            } else if idx < ds.jobs.len() {
                ColorScale::jobs().pick(idx)
            } else {
                Color::rgb(211, 211, 211)
            }
        }
        Some(_) => lv.colors.sample(norm),
        None => Color::rgb(230, 230, 230),
    }
}

/// Build a projection view with automatic scales.
pub fn build_view(ds: &DataSet, spec: &ProjectionSpec) -> Result<ProjectionView, SpecError> {
    let scales = compute_scales(ds, spec)?;
    build_view_scaled(ds, spec, &scales)
}

/// [`build_view`] with aggregation memoized through `cache`: repeat views
/// over the same stored run (same [`DataKey`]) reuse grouped items instead
/// of re-scanning and re-sorting rows.
pub fn build_view_cached(
    ds: &DataSet,
    spec: &ProjectionSpec,
    cache: &AggregateCache,
    key: DataKey,
) -> Result<ProjectionView, SpecError> {
    let scales = compute_scales_cached(ds, spec, cache, key)?;
    build_view_scaled_cached(ds, spec, &scales, cache, key)
}

/// Build a projection view using explicit scales (cross-run comparison).
pub fn build_view_scaled(
    ds: &DataSet,
    spec: &ProjectionSpec,
    scales: &ScaleSet,
) -> Result<ProjectionView, SpecError> {
    build_view_scaled_inner(ds, spec, scales, None)
}

/// [`build_view_scaled`] with aggregation memoized through `cache`.
pub fn build_view_scaled_cached(
    ds: &DataSet,
    spec: &ProjectionSpec,
    scales: &ScaleSet,
    cache: &AggregateCache,
    key: DataKey,
) -> Result<ProjectionView, SpecError> {
    build_view_scaled_inner(ds, spec, scales, Some((cache, key)))
}

fn build_view_scaled_inner(
    ds: &DataSet,
    spec: &ProjectionSpec,
    scales: &ScaleSet,
    cache: Cache,
) -> Result<ProjectionView, SpecError> {
    let _span = hrviz_obs::get().span("core/project");
    spec.validate()?;
    let ring0_build = build_level_items(ds, &spec.levels[0], cache);

    // --- arcs: ring-0 spans ---
    let lv0 = &spec.levels[0];
    let weights: Vec<f64> = match spec.arc_weight {
        Some(w) => {
            ring0_build.items.iter().map(|it| it.metric(ds, lv0.entity, w).max(0.0)).collect()
        }
        None => vec![1.0; ring0_build.items.len()],
    };
    let wsum: f64 = weights.iter().sum();
    let eps = 0.004; // keep zero-weight partitions visible
    let n0 = ring0_build.items.len().max(1);
    let mut spans = Vec::with_capacity(n0);
    let mut cursor = 0.0;
    let effective: Vec<f64> = weights
        .iter()
        .map(|&w| if wsum > 0.0 { (w / wsum).max(eps) } else { 1.0 / n0 as f64 })
        .collect();
    let esum: f64 = effective.iter().sum();
    for e in &effective {
        let frac = e / esum.max(f64::MIN_POSITIVE);
        spans.push((cursor, cursor + frac));
        cursor += frac;
    }
    let arcs: Vec<ArcSegment> = ring0_build
        .items
        .iter()
        .zip(&spans)
        .map(|(it, &span)| {
            let label = match (lv0.aggregate.first(), it.key.first()) {
                (Some(Field::Workload), Some(&j)) => ds.job_label(j as u32).to_string(),
                (Some(f), Some(v)) => format!("{f}={v:.0}"),
                _ => String::new(),
            };
            ArcSegment { key: it.key.clone(), span, label }
        })
        .collect();

    // --- rings ---
    let mut rings = Vec::with_capacity(spec.levels.len());
    for (li, lv) in spec.levels.iter().enumerate() {
        let build = if li == 0 {
            LevelBuild {
                items: ring0_build.items.clone(),
                key_to_item: ring0_build.key_to_item.clone(),
            }
        } else {
            build_level_items(ds, lv, cache)
        };
        let n = build.items.len().max(1);
        let items: Vec<VisualItem> = build
            .items
            .iter()
            .enumerate()
            .map(|(i, it)| {
                let span = if li == 0 {
                    spans[i]
                } else {
                    (i as f64 / n as f64, (i + 1) as f64 / n as f64)
                };
                let get = |enc: &'static str, f: Option<Field>| -> (Option<f64>, Option<f64>) {
                    match f {
                        Some(field) => {
                            let raw = it.metric(ds, lv.entity, field);
                            let ext = scales
                                .encodings
                                .get(&(li, enc))
                                .copied()
                                .unwrap_or((0.0, raw.max(1.0)));
                            (Some(normalize(raw, ext)), Some(raw))
                        }
                        None => (None, None),
                    }
                };
                let (color, raw_color) = get("color", lv.vmap.color);
                let (size, raw_size) = get("size", lv.vmap.size);
                let (x, raw_x) = get("x", lv.vmap.x);
                let (y, raw_y) = get("y", lv.vmap.y);
                let fill = resolve_color(
                    lv,
                    lv.vmap.color,
                    raw_color.unwrap_or(0.0),
                    color.unwrap_or(0.0),
                    ds,
                );
                VisualItem {
                    key: it.key.clone(),
                    rows: it.rows.clone(),
                    span,
                    color,
                    size,
                    x,
                    y,
                    raw: RawValues { color: raw_color, size: raw_size, x: raw_x, y: raw_y },
                    fill,
                }
            })
            .collect();
        rings.push(Ring { plot: lv.vmap.plot_kind(), entity: lv.entity, items, border: lv.border });
    }

    // --- ribbons ---
    let ribbons = match &spec.ribbons {
        Some(rs) => {
            let raw = bundle_links(ds, spec, rs, &ring0_build);
            let sext = scales.ribbon_size.unwrap_or((0.0, 1.0));
            let cext = scales.ribbon_color.unwrap_or((0.0, 1.0));
            raw.into_iter()
                .map(|r| Ribbon {
                    a: r.a,
                    b: r.b,
                    size: normalize(r.raw_size, sext),
                    raw_size: r.raw_size,
                    raw_color: r.raw_color,
                    color: rs.colors.sample(normalize(r.raw_color, cext)),
                })
                .collect()
        }
        None => Vec::new(),
    };

    Ok(ProjectionView { rings, ribbons, arcs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{LinkRow, TerminalRow};
    use crate::spec::LevelSpec;

    /// 2 groups × 2 routers × 2 terminals, with hand-set metrics.
    fn ds() -> DataSet {
        let mut d = DataSet { jobs: vec!["j0".into(), "j1".into()], ..DataSet::default() };
        for i in 0..8u32 {
            d.terminals.push(TerminalRow {
                terminal: i,
                router: i / 2,
                group: i / 4,
                rank: (i / 2) % 2,
                port: i % 2,
                job: i / 4, // group 0 = job0, group 1 = job1
                data_size: 100.0 * (i + 1) as f64,
                recv_bytes: 0.0,
                busy: 5.0,
                sat: i as f64 * 10.0,
                packets_finished: 1.0,
                packets_sent: 1.0,
                avg_latency: 1000.0 + i as f64,
                avg_hops: 3.0,
            });
        }
        // Local links between the two routers of each group.
        for g in 0..2u32 {
            for (a, b) in [(0u32, 1u32), (1, 0)] {
                d.local_links.push(LinkRow {
                    src_router: g * 2 + a,
                    src_group: g,
                    src_rank: a,
                    src_port: b,
                    dst_router: g * 2 + b,
                    dst_group: g,
                    dst_rank: b,
                    dst_port: a,
                    src_job: g,
                    dst_job: g,
                    traffic: 1000.0 * (g + 1) as f64,
                    sat: 50.0 * g as f64,
                });
            }
        }
        // One global link pair between the groups.
        for (sg, dg) in [(0u32, 1u32), (1, 0)] {
            d.global_links.push(LinkRow {
                src_router: sg * 2,
                src_group: sg,
                src_rank: 0,
                src_port: 0,
                dst_router: dg * 2,
                dst_group: dg,
                dst_rank: 0,
                dst_port: 0,
                src_job: sg,
                dst_job: dg,
                traffic: 5000.0,
                sat: 25.0,
            });
        }
        d
    }

    fn group_spec() -> ProjectionSpec {
        ProjectionSpec::new(vec![
            LevelSpec::new(EntityKind::Terminal)
                .aggregate(&[Field::GroupId])
                .color(Field::SatTime)
                .size(Field::DataSize),
            LevelSpec::new(EntityKind::Terminal)
                .aggregate(&[Field::GroupId, Field::RouterRank])
                .color(Field::SatTime),
        ])
        .ribbons(crate::spec::RibbonSpec::new(EntityKind::GlobalLink))
    }

    #[test]
    fn rings_and_arcs_have_expected_shapes() {
        let view = build_view(&ds(), &group_spec()).unwrap();
        assert_eq!(view.rings.len(), 2);
        assert_eq!(view.rings[0].items.len(), 2); // 2 groups
        assert_eq!(view.rings[1].items.len(), 4); // 2 groups × 2 ranks
        assert_eq!(view.arcs.len(), 2);
        // Arcs cover the full circle.
        assert!((view.arcs[0].span.0 - 0.0).abs() < 1e-9);
        assert!((view.arcs[1].span.1 - 1.0).abs() < 1e-9);
        assert_eq!(view.rings[0].plot, PlotKind::Bar);
        assert_eq!(view.rings[1].plot, PlotKind::Heatmap1D);
    }

    #[test]
    fn encodings_are_normalized() {
        let view = build_view(&ds(), &group_spec()).unwrap();
        for ring in &view.rings {
            for item in &ring.items {
                for v in [item.color, item.size, item.x, item.y].into_iter().flatten() {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }
        // Group 1 has strictly more saturation: its color must be higher.
        let r0 = &view.rings[0].items;
        assert!(r0[1].color.unwrap() > r0[0].color.unwrap());
        // The max item saturates to 1.0.
        assert_eq!(r0[1].color.unwrap(), 1.0);
    }

    #[test]
    fn ribbons_connect_groups_with_max_color_rule() {
        let view = build_view(&ds(), &group_spec()).unwrap();
        assert_eq!(view.ribbons.len(), 1);
        let r = &view.ribbons[0];
        assert_eq!((r.a, r.b), (0, 1));
        assert_eq!(r.raw_size, 10_000.0); // both directions summed
        assert_eq!(r.raw_color, 25.0); // max of the two directions
    }

    #[test]
    fn filter_restricts_rows_and_ribbons() {
        let spec = ProjectionSpec::new(vec![LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::GroupId])
            .filter(Field::GroupId, 0.0, 0.0)
            .color(Field::SatTime)])
        .ribbons(crate::spec::RibbonSpec::new(EntityKind::GlobalLink));
        let view = build_view(&ds(), &spec).unwrap();
        assert_eq!(view.rings[0].items.len(), 1);
        // Global links cross the filter boundary → no ribbons survive.
        assert!(view.ribbons.is_empty());
    }

    #[test]
    fn max_bins_rebins_and_ribbons_follow() {
        let spec = ProjectionSpec::new(vec![LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::RouterId])
            .max_bins(3)
            .color(Field::DataSize)])
        .ribbons(crate::spec::RibbonSpec::new(EntityKind::LocalLink));
        let view = build_view(&ds(), &spec).unwrap();
        // 4 routers re-binned into ≤3 histogram bins.
        assert!(view.rings[0].items.len() <= 3);
        let total_rows: usize = view.rings[0].items.iter().map(|i| i.rows.len()).sum();
        assert_eq!(total_rows, 8);
    }

    #[test]
    fn workload_color_is_categorical() {
        let spec = ProjectionSpec::new(vec![LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::GroupId])
            .color(Field::Workload)
            .colors(&["green", "orange", "brown"])]);
        let view = build_view(&ds(), &spec).unwrap();
        assert_eq!(view.rings[0].items[0].fill, Color::parse("green").unwrap());
        assert_eq!(view.rings[0].items[1].fill, Color::parse("orange").unwrap());
    }

    #[test]
    fn arc_weight_skews_spans() {
        let spec = ProjectionSpec::new(vec![LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::GroupId])
            .color(Field::SatTime)])
        .arc_weight(Field::DataSize);
        let view = build_view(&ds(), &spec).unwrap();
        let w0 = view.arcs[0].span.1 - view.arcs[0].span.0;
        let w1 = view.arcs[1].span.1 - view.arcs[1].span.0;
        // Group 1 injected more data → wider arc.
        assert!(w1 > w0);
        assert!((w0 + w1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_scales_make_views_comparable() {
        let d1 = ds();
        let mut d2 = ds();
        for t in &mut d2.terminals {
            t.sat *= 2.0; // run 2 saturates twice as hard
        }
        let spec = group_spec();
        let mut scales = compute_scales(&d1, &spec).unwrap();
        scales.merge(&compute_scales(&d2, &spec).unwrap());
        let v1 = build_view_scaled(&d1, &spec, &scales).unwrap();
        let v2 = build_view_scaled(&d2, &spec, &scales).unwrap();
        // Under the shared scale, run 1's max color is half of run 2's.
        let c1 = v1.rings[0].items[1].color.unwrap();
        let c2 = v2.rings[0].items[1].color.unwrap();
        assert!(c2 > c1);
        assert_eq!(c2, 1.0);
        assert!((c1 - 0.5).abs() < 0.01);
    }

    #[test]
    fn item_rows_support_highlighting() {
        let view = build_view(&ds(), &group_spec()).unwrap();
        let (kind, rows) = view.item_rows(0, 0);
        assert_eq!(kind, EntityKind::Terminal);
        assert_eq!(rows, &[0, 1, 2, 3]);
    }

    #[test]
    fn cached_build_matches_uncached_and_hits_on_repeat() {
        let d = ds();
        let spec = group_spec();
        let cache = AggregateCache::new();
        let key = DataKey { run: 42, generation: 1 };
        let plain = build_view(&d, &spec).unwrap();
        let cached = build_view_cached(&d, &spec, &cache, key).unwrap();
        assert_eq!(plain.rings.len(), cached.rings.len());
        for (a, b) in plain.rings.iter().zip(&cached.rings) {
            let ca: Vec<_> = a.items.iter().map(|i| (i.color, i.size, i.span)).collect();
            let cb: Vec<_> = b.items.iter().map(|i| (i.color, i.size, i.span)).collect();
            assert_eq!(ca, cb);
        }
        assert!(cache.misses() > 0);
        let before_hits = cache.hits();
        build_view_cached(&d, &spec, &cache, key).unwrap();
        assert!(cache.hits() > before_hits, "repeat view must hit the cache");
    }

    #[test]
    fn empty_dataset_builds_empty_view() {
        let d = DataSet::default();
        let view = build_view(&d, &group_spec()).unwrap();
        assert!(view.rings[0].items.is_empty());
        assert!(view.ribbons.is_empty());
    }
}
