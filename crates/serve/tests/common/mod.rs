//! Shared loopback-test plumbing: a tiny two-run store built once per
//! test process, a server started on port 0, and a raw HTTP client.

#![allow(dead_code)] // each test binary uses a subset of the helpers

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::thread::JoinHandle;
use std::time::Duration;

use hrviz_network::RoutingAlgorithm;
use hrviz_pdes::SimTime;
use hrviz_serve::{ServeConfig, ServeReport, Server, ServerHandle};
use hrviz_sweep::{RunStore, SweepEngine, SweepSpec, TopologyAxis};

/// The projection script every test posts.
pub const SCRIPT: &str = r#"{ project: "terminal", aggregate: "router_id", vmap: { color: "sat_time", size: "traffic" } }"#;

/// Build (once per process) a store holding a minimal and an adaptive run
/// of a 72-terminal Dragonfly, returning its directory and sorted run ids.
pub fn test_store() -> &'static (PathBuf, Vec<String>) {
    static STORE: OnceLock<(PathBuf, Vec<String>)> = OnceLock::new();
    STORE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!(
            "hrviz-serve-it-{}-{}",
            env!("CARGO_CRATE_NAME"),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).expect("open store");
        let spec = SweepSpec::new("it", TopologyAxis::Dragonfly { terminals: 72 })
            .routings(vec![RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
            .msgs_per_rank(2)
            .msg_bytes(1024)
            .period(SimTime::micros(1));
        let engine = SweepEngine::new(store).with_workers(1);
        engine.run(&spec).expect("sweep the test grid");
        let runs = engine.store().runs().expect("list runs");
        assert_eq!(runs.len(), 2, "two configs, two runs");
        (dir, runs)
    })
}

/// A server running on a background thread over the shared test store.
pub struct TestServer {
    /// The bound loopback address.
    pub addr: SocketAddr,
    handle: ServerHandle,
    thread: JoinHandle<ServeReport>,
}

/// Start a server on port 0 with `cfg`'s tuning (its `addr` is replaced).
pub fn start(cfg: ServeConfig) -> TestServer {
    let (dir, _) = test_store();
    start_with_store(cfg, dir)
}

/// Start a server on port 0 over an arbitrary store directory.
pub fn start_with_store(mut cfg: ServeConfig, dir: &std::path::Path) -> TestServer {
    cfg.addr = "127.0.0.1:0".into();
    let server = Server::bind(cfg, RunStore::open(dir).expect("reopen store")).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.serve().expect("serve loop"));
    TestServer { addr, handle, thread }
}

impl TestServer {
    /// Request shutdown, wait for the drain, return the report.
    pub fn stop(self) -> ServeReport {
        self.handle.shutdown();
        self.thread.join().expect("serve thread exits cleanly")
    }
}

/// A parsed HTTP reply.
#[derive(Clone, Debug)]
pub struct Reply {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Reply {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Send raw bytes, read to EOF, parse the reply.
pub fn raw(addr: SocketAddr, bytes: &[u8]) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    stream.write_all(bytes).expect("send request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read reply");
    parse_reply(&buf)
}

/// Parse a raw HTTP reply (status line, headers, body).
pub fn parse_reply(buf: &[u8]) -> Reply {
    let split =
        buf.windows(4).position(|w| w == b"\r\n\r\n").expect("reply has a header/body separator");
    let head = String::from_utf8_lossy(&buf[..split]).into_owned();
    let body = buf[split + 4..].to_vec();
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line {status_line:?}"));
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Reply { status, headers, body }
}

/// `GET path` with optional extra headers. Sends `Connection: close`
/// (the server is keep-alive by default and [`raw`] reads to EOF).
pub fn get(addr: SocketAddr, path: &str, extra: &[(&str, &str)]) -> Reply {
    let mut req = format!("GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n");
    for (k, v) in extra {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    raw(addr, req.as_bytes())
}

/// `POST path` with a body and optional extra headers. Sends
/// `Connection: close` like [`get`].
pub fn post(addr: SocketAddr, path: &str, body: &str, extra: &[(&str, &str)]) -> Reply {
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (k, v) in extra {
        req.push_str(&format!("{k}: {v}\r\n"));
    }
    req.push_str("\r\n");
    req.push_str(body);
    raw(addr, req.as_bytes())
}
