//! Fig. 12 — temporal characteristics of the three application workloads:
//! total network-link traffic over time, sampled at the paper's rates
//! (AMG 0.02 ms; AMR Boxlib / MiniFE 1 ms at full trace length — here
//! scaled to the proxy run length).
//!
//! Paper shapes: AMG shows three traffic bursts (start / middle / end);
//! AMR Boxlib is irregular; MiniFE is sustained across iterations.

use hrviz_bench::{run_app, write_csv, write_out, Expectations};
use hrviz_core::{TimelineSeries, TimelineView};
use hrviz_network::{RoutingAlgorithm, RunData};
use hrviz_pdes::SimTime;
use hrviz_render::render_timeline;
use hrviz_workloads::{AppKind, PlacementPolicy};

/// Count distinct bursts: maximal runs of bins above 25 % of peak.
fn count_bursts(values: &[f64]) -> usize {
    let peak = values.iter().cloned().fold(0.0f64, f64::max);
    if peak <= 0.0 {
        return 0;
    }
    let thresh = peak * 0.25;
    let mut bursts = 0;
    let mut inside = false;
    for &v in values {
        if v > thresh && !inside {
            bursts += 1;
            inside = true;
        } else if v <= thresh {
            inside = false;
        }
    }
    bursts
}

fn total_series(run: &RunData) -> Vec<f64> {
    let tl = TimelineView::traffic(run).expect("sampled");
    let bins = tl.num_bins();
    (0..bins)
        .map(|b| tl.series.iter().map(|s| s.values.get(b).copied().unwrap_or(0.0)).sum())
        .collect()
}

fn main() {
    hrviz_bench::obs_init("fig12_temporal");
    println!("Fig. 12: temporal characteristics of the three applications");
    let mut combined = Vec::new();
    let mut csv = vec![vec!["app".into(), "bin".into(), "traffic_bytes".into()]];
    let mut bursts = Vec::new();
    let mut bin_widths = Vec::new();
    for kind in AppKind::ALL {
        // Scale the paper's sampling rate to the proxy run duration: the
        // paper's AMG rate (0.02 ms) resolves ~100+ bins; use a width that
        // resolves the same number of bins over our 400 µs window.
        let width = SimTime::micros(4);
        let run = run_app(
            2_550,
            kind,
            RoutingAlgorithm::adaptive_default(),
            PlacementPolicy::Contiguous,
            Some((width, 2_000)),
        );
        let series = total_series(&run);
        for (b, v) in series.iter().enumerate() {
            csv.push(vec![kind.name().into(), b.to_string(), format!("{v:.0}")]);
        }
        bursts.push(count_bursts(&series));
        bin_widths.push(width);
        combined.push(TimelineSeries {
            label: format!("{} (sampling {width})", kind.name()),
            values: series,
        });
    }
    let tl = TimelineView { bin_width: bin_widths[0], series: combined, selection: None };
    write_out(
        "fig12_temporal.svg",
        &render_timeline(&tl, 780.0, 110.0, "Fig 12: network link traffic over time"),
    );
    write_csv("fig12_traffic_series.csv", &csv);

    println!("  burst counts: AMG={} AMR={} MiniFE={}", bursts[0], bursts[1], bursts[2]);
    let mut exp = Expectations::new();
    exp.check("AMG shows exactly 3 traffic bursts", bursts[0] == 3);
    exp.check("AMR Boxlib is irregular (more, smaller spurts)", bursts[1] >= 3);
    exp.check("MiniFE sustains traffic across many iterations", {
        let s = &tl.series[2].values;
        let peak = s.iter().cloned().fold(0.0f64, f64::max);
        let active = s.iter().filter(|&&v| v > 0.05 * peak).count();
        active as f64 > 0.5 * s.len() as f64
    });
    exp.check("apps differ temporally (burst counts not all equal)", {
        !(bursts[0] == bursts[1] && bursts[1] == bursts[2])
    });
    std::process::exit(i32::from(!exp.finish("fig12")));
}
