//! Structured run telemetry for the hrviz stack: counters, gauges,
//! fixed-bucket histograms, RAII span timers, JSONL trace streams, and
//! run/perf manifests — with zero external dependencies.
//!
//! # Design
//!
//! The central type is [`Collector`], a cheap cloneable handle. A *disabled*
//! collector (the default) costs one branch per operation and never reads
//! the clock, so instrumentation can stay in the code unconditionally; the
//! simulator additionally reports at phase boundaries rather than per
//! event, keeping even the enabled cost off the hot path.
//!
//! ```
//! use hrviz_obs::{Collector, LogLevel};
//!
//! let c = Collector::enabled();
//! {
//!     let _span = c.span("sim/run");
//!     c.counter_add("net/packets_delivered", 128);
//!     c.hist_record("net/vc_occupancy", 0.75);
//! }
//! let snap = c.snapshot();
//! assert_eq!(snap.counters["net/packets_delivered"], 128);
//! assert_eq!(snap.spans["sim/run"].count, 1);
//! ```
//!
//! Components that are too far from the run entry point to be handed a
//! collector (analytics, rendering) use the process-global handle:
//! [`install`] once near `main`, [`get`] at use sites. The global defaults
//! to disabled.

#![forbid(unsafe_code)]
pub mod chrome;
mod collector;
mod json;
mod manifest;
pub mod metrics;
pub mod prom;
pub mod recorder;
mod span;
mod trace;

pub use collector::{Collector, Hist, LogLevel, Snapshot, SpanStat};
pub use json::Json;
pub use manifest::{fingerprint64, PerfRecord, RunManifest};
pub use metrics::{metric, MetricDef, MetricKind, METRICS};
pub use prom::{render_prometheus, PROMETHEUS_CONTENT_TYPE};
pub use recorder::SpanRecord;
pub use span::Span;
pub use trace::TraceSink;

use std::sync::Mutex;

static GLOBAL: Mutex<Option<Collector>> = Mutex::new(None);

/// Install `c` as the process-global collector (replacing any previous one).
pub fn install(c: Collector) {
    *GLOBAL.lock().expect("global collector poisoned") = Some(c);
}

/// The process-global collector; disabled until [`install`] is called.
pub fn get() -> Collector {
    GLOBAL.lock().expect("global collector poisoned").clone().unwrap_or_else(Collector::disabled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_defaults_to_disabled_then_installs() {
        // Single test exercising the global to avoid cross-test ordering
        // dependence on shared state.
        let before = get();
        let c = Collector::enabled();
        install(c.clone());
        get().counter_add("global/x", 2);
        assert_eq!(c.counter("global/x"), 2);
        install(Collector::disabled());
        assert!(!get().is_enabled());
        drop(before);
    }
}
