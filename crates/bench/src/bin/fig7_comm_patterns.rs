//! Fig. 7 — intra-group communication patterns under adaptive routing on
//! a 5,256-terminal Dragonfly: nearest-neighbor vs uniform-random traffic,
//! correlating the saturation of local, global and terminal links.
//!
//! Paper shapes: nearest neighbor drives traffic onto one specific local
//! link per router pair and saturates specific local links; uniform random
//! spreads load evenly (all ribbons the same color) and saturates no local
//! links.

use hrviz_bench::{
    class_summary, class_summary_header, intra_group_spec, run_synthetic, write_csv, write_out,
    Expectations,
};
use hrviz_core::{compare_views, DataSet};
use hrviz_network::{LinkClass, RoutingAlgorithm};
use hrviz_pdes::SimTime;
use hrviz_render::{render_radial_row, RadialLayout};
use hrviz_workloads::SyntheticConfig;

fn main() {
    hrviz_bench::obs_init("fig7_comm_patterns");
    println!("Fig. 7: nearest neighbor vs uniform random (5,256 terminals, adaptive)");
    // ~40 % injection load: the NN hot links (all p terminals of a router
    // funnel onto the single link to the next router) oversubscribe and
    // saturate, while UR's evenly spread load stays under capacity.
    let p = 6; // terminals per router at this scale
    let nn = run_synthetic(
        5_256,
        SyntheticConfig::nearest_neighbor(16 * 1024, 48, SimTime::micros(8)).with_stride(p),
        RoutingAlgorithm::adaptive_default(),
    );
    let ur = run_synthetic(
        5_256,
        SyntheticConfig::uniform(16 * 1024, 48, SimTime::micros(8)),
        RoutingAlgorithm::adaptive_default(),
    );

    let ds_nn = DataSet::builder(&nn).build();
    let ds_ur = DataSet::builder(&ur).build();
    let spec = intra_group_spec();
    let views = compare_views(&[&ds_nn, &ds_ur], &spec).expect("views build");
    write_out(
        "fig7_comm_patterns.svg",
        &render_radial_row(
            &[(&views[0], "Nearest Neighbor"), (&views[1], "Uniform Random")],
            &RadialLayout::default(),
            "Fig 7: intra-group patterns and per-class saturation (shared scales)",
        ),
    );

    let rows = vec![
        class_summary_header(),
        class_summary("nearest_neighbor", &nn),
        class_summary("uniform_random", &ur),
    ];
    write_csv("fig7_class_summary.csv", &rows);

    let mut exp = Expectations::new();
    // Concentration: share of local traffic carried by the busiest 10 % of
    // local links (NN funnels everything onto one link per router; UR
    // spreads).
    let top_decile_share = |run: &hrviz_network::RunData| -> f64 {
        let mut t: Vec<u64> = run.local_links.iter().map(|l| l.traffic).collect();
        t.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = t.iter().sum();
        let top: u64 = t[..t.len() / 10].iter().sum();
        top as f64 / total.max(1) as f64
    };
    let nn_share = top_decile_share(&nn);
    let ur_share = top_decile_share(&ur);
    println!("  top-decile local-link share: NN {nn_share:.2} vs UR {ur_share:.2}");
    exp.check("NN concentrates traffic on specific local links", nn_share > 0.5);
    exp.check("UR balances local-link traffic", ur_share < 0.3);
    exp.check(
        "NN saturates local links more than UR",
        nn.class_sat_ns(LinkClass::Local) > ur.class_sat_ns(LinkClass::Local),
    );
    exp.check("UR has (near-)zero local saturation", {
        ur.class_sat_ns(LinkClass::Local) < nn.class_sat_ns(LinkClass::Local) / 10 + 1_000
    });
    exp.check("both views share the same color scale", {
        // Shared scales: the hottest ribbon across both views is 1.0 in
        // exactly the view that owns it.
        let m0 = views[0].ribbons.iter().map(|r| r.size).fold(0.0f64, f64::max);
        let m1 = views[1].ribbons.iter().map(|r| r.size).fold(0.0f64, f64::max);
        (m0 - 1.0).abs() < 1e-9 || (m1 - 1.0).abs() < 1e-9
    });
    std::process::exit(i32::from(!exp.finish("fig7")));
}
