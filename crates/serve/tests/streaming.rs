//! Loopback tests for the live-streaming surfaces: `/runs/{id}/progress`
//! long-poll, `/runs/{id}/stream` SSE hand-over (replay + terminal
//! event, fan-out to concurrent watchers), the `?state=` lifecycle
//! filter on `/runs`, and the watermark-stamped `/runs` cache.

mod common;

use std::path::PathBuf;
use std::sync::OnceLock;

use hrviz_network::RoutingAlgorithm;
use hrviz_pdes::SimTime;
use hrviz_serve::ServeConfig;
use hrviz_sweep::{
    AbortSpec, RunStore, StreamOptions, SweepEngine, SweepOptions, SweepSpec, TopologyAxis,
};

use common::{get, raw, start_with_store};

/// A store holding two streamed (completed) Dragonfly runs, built once
/// per process.
fn streamed_store() -> &'static (PathBuf, Vec<String>) {
    static STORE: OnceLock<(PathBuf, Vec<String>)> = OnceLock::new();
    STORE.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("hrviz-serve-stream-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = RunStore::open(&dir).expect("open store");
        let spec = SweepSpec::new("stream-it", TopologyAxis::Dragonfly { terminals: 72 })
            .routings(vec![RoutingAlgorithm::Minimal, RoutingAlgorithm::adaptive_default()])
            .msgs_per_rank(2)
            .msg_bytes(1024)
            .period(SimTime::micros(1));
        let opts = SweepOptions {
            stream: Some(StreamOptions { window: SimTime::micros(5), abort: None }),
            ..SweepOptions::default()
        };
        let engine = SweepEngine::new(store).with_workers(1);
        engine.run_with(&spec, &opts).expect("streamed sweep");
        let runs = engine.store().runs().expect("list runs");
        assert_eq!(runs.len(), 2);
        (dir, runs)
    })
}

#[test]
fn progress_endpoint_serves_the_watermark() {
    let (dir, runs) = streamed_store();
    let server = start_with_store(ServeConfig::default(), dir);
    let addr = server.addr;

    let p = get(addr, &format!("/runs/{}/progress", runs[0]), &[]);
    assert_eq!(p.status, 200, "body: {}", p.text());
    assert_eq!(p.header("Cache-Control"), Some("no-store"));
    assert!(p.text().contains("\"state\":\"completed\""), "body: {}", p.text());
    assert!(p.text().contains("\"sealed\":"), "body: {}", p.text());

    // A terminal run answers a long-poll immediately even when `since`
    // is ahead of the watermark.
    let parked = get(addr, &format!("/runs/{}/progress?since=9999&wait_ms=10000", runs[0]), &[]);
    assert_eq!(parked.status, 200, "terminal run returns without waiting");

    assert_eq!(get(addr, "/runs/ffffffffffffffff/progress", &[]).status, 404);
    let bad = get(addr, &format!("/runs/{}/progress?since=banana", runs[0]), &[]);
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("bad_since"), "body: {}", bad.text());

    server.stop();
}

#[test]
fn sse_stream_replays_slices_and_ends() {
    let (dir, runs) = streamed_store();
    let server = start_with_store(ServeConfig::default(), dir);
    let addr = server.addr;

    let req =
        format!("GET /runs/{}/stream HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", runs[0]);
    let reply = raw(addr, req.as_bytes());
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("Content-Type"), Some("text/event-stream"));
    assert!(reply.header("Content-Length").is_none(), "SSE body is not length-framed");
    let body = reply.text();
    let slices = body.matches("event: slice\n").count();
    assert!(slices >= 1, "at least one slice replayed, body:\n{body}");
    assert_eq!(body.matches("event: end\n").count(), 1, "exactly one terminal event:\n{body}");
    assert!(body.contains("\"state\":\"completed\""), "terminal event names the state:\n{body}");

    // `since` skips already-seen slices but still ends the stream.
    let req = format!(
        "GET /runs/{}/stream?since={} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        runs[0], slices
    );
    let tail = raw(addr, req.as_bytes()).text();
    assert_eq!(tail.matches("event: slice\n").count(), 0, "nothing re-replayed:\n{tail}");
    assert_eq!(tail.matches("event: end\n").count(), 1);

    // Unknown run: a plain HTTP 404, not a stream.
    let req = "GET /runs/ffffffffffffffff/stream HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    assert_eq!(raw(addr, req.as_bytes()).status, 404);

    let report = server.stop();
    assert!(report.requests >= 3, "SSE hand-overs are counted: {report:?}");
}

#[test]
fn sse_fans_out_to_concurrent_watchers_identically() {
    let (dir, runs) = streamed_store();
    let server = start_with_store(ServeConfig::default(), dir);
    let addr = server.addr;

    let req =
        format!("GET /runs/{}/stream HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", runs[0]);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let req = req.clone();
            std::thread::spawn(move || raw(addr, req.as_bytes()))
        })
        .collect();
    let replies: Vec<_> = threads.into_iter().map(|t| t.join().expect("watcher")).collect();
    let first = replies[0].text();
    assert!(first.contains("event: end\n"), "stream terminated:\n{first}");
    for reply in &replies[1..] {
        assert_eq!(reply.status, 200);
        assert_eq!(reply.text(), first, "every watcher sees the same event sequence");
    }
    server.stop();
}

#[test]
fn runs_listing_filters_by_lifecycle_state() {
    // A fresh store where an aggressive abort policy cancels every run.
    let dir = std::env::temp_dir().join(format!("hrviz-serve-abortit-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = RunStore::open(&dir).expect("open store");
    let spec = SweepSpec::new("abort-it", TopologyAxis::Dragonfly { terminals: 72 })
        .routings(vec![RoutingAlgorithm::Minimal])
        .msgs_per_rank(2)
        .msg_bytes(1024)
        .period(SimTime::micros(1));
    let opts = SweepOptions {
        stream: Some(StreamOptions {
            window: SimTime(200),
            abort: Some(AbortSpec::parse("saturation:1000:1").expect("valid policy")),
        }),
        ..SweepOptions::default()
    };
    let engine = SweepEngine::new(store).with_workers(1);
    let outcome = engine.run_with(&spec, &opts).expect("aborting sweep");
    assert_eq!(outcome.aborted, 1, "the policy cancelled the run");

    let server = start_with_store(ServeConfig::default(), &dir);
    let addr = server.addr;

    // Default listing: complete runs only, so aborted runs are invisible.
    let listing = get(addr, "/runs", &[]);
    assert_eq!(listing.status, 200);
    assert!(listing.text().contains("\"runs\":[]"), "body: {}", listing.text());

    let aborted = get(addr, "/runs?state=aborted", &[]);
    assert_eq!(aborted.status, 200);
    assert!(aborted.text().contains("\"state\":\"aborted\""), "body: {}", aborted.text());
    assert!(aborted.text().contains("saturation"), "manifest error surfaces: {}", aborted.text());

    let none = get(addr, "/runs?state=completed", &[]);
    assert!(none.text().contains("\"runs\":[]"), "body: {}", none.text());

    let bad = get(addr, "/runs?state=exploded", &[]);
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("bad_state"), "body: {}", bad.text());

    server.stop();
}

#[test]
fn runs_cache_invalidates_when_a_watermark_moves() {
    // Private store: other tests must not see the progress file we plant.
    let dir = std::env::temp_dir().join(format!("hrviz-serve-stamp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = RunStore::open(&dir).expect("open store");
    let spec = SweepSpec::new("stamp-it", TopologyAxis::Dragonfly { terminals: 72 })
        .routings(vec![RoutingAlgorithm::Minimal])
        .msgs_per_rank(2)
        .msg_bytes(1024)
        .period(SimTime::micros(1));
    let opts = SweepOptions {
        stream: Some(StreamOptions { window: SimTime::micros(5), abort: None }),
        ..SweepOptions::default()
    };
    let engine = SweepEngine::new(store).with_workers(1);
    engine.run_with(&spec, &opts).expect("streamed sweep");
    let runs = engine.store().runs().expect("list");
    let run_dir = engine.store().run_dir(&runs[0]);

    let server = start_with_store(ServeConfig::default(), &dir);
    let addr = server.addr;

    let first = get(addr, "/runs", &[]);
    let tag = first.header("ETag").expect("listing carries an ETag").to_string();
    let warm = get(addr, "/runs", &[("If-None-Match", &tag)]);
    assert_eq!(warm.status, 304, "unchanged watermark revalidates");

    // Rewrite the run's watermark (as a live sweep sealing a slice
    // would). The generation counter does not move, but the stamp in the
    // ETag must — the stale tag no longer revalidates.
    let progress = run_dir.join("progress.json");
    let text = std::fs::read_to_string(&progress).expect("read watermark");
    std::thread::sleep(std::time::Duration::from_millis(20)); // distinct mtime
    std::fs::write(&progress, text.replace("\"sealed\":", "\"sealed\":1")).expect("rewrite");

    let after = get(addr, "/runs", &[("If-None-Match", &tag)]);
    assert_eq!(after.status, 200, "moved watermark invalidates the cached listing");
    assert_ne!(after.header("ETag"), Some(tag.as_str()));

    server.stop();
}
