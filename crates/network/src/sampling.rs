//! Time-binned metric accumulation.
//!
//! The paper extends CODES instrumentation to "capture time series data for
//! any given sampling rate" (§III); [`Bins`] is that mechanism. Each link
//! and terminal optionally owns a pair of bins (traffic bytes, saturated
//! nanoseconds) whose width is the sampling period.

use crate::config::SamplingConfig;
use hrviz_pdes::SimTime;

/// A time-binned accumulator. Values past `max_bins` clamp into the final
/// bin, so pathological runs degrade gracefully instead of allocating
/// unboundedly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bins {
    width_ns: u64,
    max_bins: usize,
    values: Vec<u64>,
}

impl Bins {
    /// New accumulator with the given sampling configuration.
    pub fn new(cfg: SamplingConfig) -> Self {
        assert!(cfg.bin_width.as_nanos() > 0, "bin width must be positive");
        Bins {
            width_ns: cfg.bin_width.as_nanos(),
            max_bins: cfg.max_bins.max(1),
            values: Vec::new(),
        }
    }

    /// Bin width.
    pub fn width(&self) -> SimTime {
        SimTime(self.width_ns)
    }

    fn bin_of(&self, t: SimTime) -> usize {
        ((t.as_nanos() / self.width_ns) as usize).min(self.max_bins - 1)
    }

    fn ensure(&mut self, bin: usize) {
        if self.values.len() <= bin {
            self.values.resize(bin + 1, 0);
        }
    }

    /// Add a point quantity (e.g. bytes transmitted) at time `t`.
    pub fn add_at(&mut self, t: SimTime, amount: u64) {
        let b = self.bin_of(t);
        self.ensure(b);
        self.values[b] += amount;
    }

    /// Add a duration quantity spread across the bins it overlaps
    /// (e.g. a saturated interval `[start, end)` contributing nanoseconds).
    pub fn add_interval(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        let (s, e) = (start.as_nanos(), end.as_nanos());
        let first = self.bin_of(start);
        let last = self.bin_of(SimTime(e - 1));
        self.ensure(last);
        if first == last {
            self.values[first] += e - s;
            return;
        }
        for b in first..=last {
            let bin_start = (b as u64) * self.width_ns;
            let bin_end = if b == self.max_bins - 1 { u64::MAX } else { bin_start + self.width_ns };
            let lo = s.max(bin_start);
            let hi = e.min(bin_end);
            if hi > lo {
                self.values[b] += hi - lo;
            }
        }
    }

    /// The accumulated values (one per bin; trailing empty bins omitted).
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Replace the accumulated values (checkpoint restore). Width and bin
    /// cap stay as configured; values beyond `max_bins` fold into the final
    /// bin, preserving the clamp invariant.
    pub fn set_values(&mut self, values: Vec<u64>) {
        if values.len() <= self.max_bins {
            self.values = values;
        } else {
            let mut v = values;
            let overflow: u64 = v.drain(self.max_bins..).sum();
            v[self.max_bins - 1] += overflow;
            self.values = v;
        }
    }

    /// Sum over bins whose *start* lies in `[range_start, range_end)`.
    /// This is the granularity at which the timeline view selects data.
    pub fn sum_range(&self, range_start: SimTime, range_end: SimTime) -> u64 {
        self.values
            .iter()
            .enumerate()
            .filter(|(b, _)| {
                let t = (*b as u64) * self.width_ns;
                t >= range_start.as_nanos() && t < range_end.as_nanos()
            })
            .map(|(_, v)| *v)
            .sum()
    }

    /// Total across all bins.
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// Element-wise accumulate another `Bins` (must have the same width).
    /// Bins beyond this accumulator's `max_bins` fold into its final bin,
    /// preserving both the clamp invariant and the total.
    pub fn merge(&mut self, other: &Bins) {
        assert_eq!(self.width_ns, other.width_ns, "merging bins of different widths");
        if other.values.is_empty() {
            return;
        }
        let last = (other.values.len() - 1).min(self.max_bins - 1);
        self.ensure(last);
        for (b, &src) in other.values.iter().enumerate() {
            self.values[b.min(self.max_bins - 1)] += src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(width: u64, max: usize) -> SamplingConfig {
        SamplingConfig { bin_width: SimTime(width), max_bins: max }
    }

    #[test]
    fn point_amounts_land_in_bins() {
        let mut b = Bins::new(cfg(10, 100));
        b.add_at(SimTime(0), 5);
        b.add_at(SimTime(9), 5);
        b.add_at(SimTime(10), 7);
        assert_eq!(b.values(), &[10, 7]);
        assert_eq!(b.total(), 17);
    }

    #[test]
    fn interval_splits_across_bins() {
        let mut b = Bins::new(cfg(10, 100));
        b.add_interval(SimTime(5), SimTime(25));
        assert_eq!(b.values(), &[5, 10, 5]);
    }

    #[test]
    fn interval_within_one_bin() {
        let mut b = Bins::new(cfg(10, 100));
        b.add_interval(SimTime(2), SimTime(7));
        assert_eq!(b.values(), &[5]);
    }

    #[test]
    fn empty_interval_is_noop() {
        let mut b = Bins::new(cfg(10, 100));
        b.add_interval(SimTime(7), SimTime(7));
        b.add_interval(SimTime(9), SimTime(3));
        assert!(b.values().is_empty());
    }

    #[test]
    fn clamps_into_last_bin() {
        let mut b = Bins::new(cfg(10, 3));
        b.add_at(SimTime(1_000_000), 9);
        assert_eq!(b.values(), &[0, 0, 9]);
        b.add_interval(SimTime(15), SimTime(1_000));
        // 5 ns land in bin 1, the remaining 980 in the (clamped) last bin.
        assert_eq!(b.values()[1], 5);
        assert_eq!(b.values()[2], 9 + 980);
    }

    #[test]
    fn range_sum_selects_bins_by_start() {
        let mut b = Bins::new(cfg(10, 100));
        for i in 0..5u64 {
            b.add_at(SimTime(i * 10), i + 1);
        }
        assert_eq!(b.sum_range(SimTime(10), SimTime(40)), 2 + 3 + 4);
        assert_eq!(b.sum_range(SimTime(0), SimTime(1_000)), b.total());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Bins::new(cfg(10, 100));
        let mut b = Bins::new(cfg(10, 100));
        a.add_at(SimTime(0), 1);
        b.add_at(SimTime(0), 2);
        b.add_at(SimTime(15), 4);
        a.merge(&b);
        assert_eq!(a.values(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = Bins::new(cfg(10, 100));
        let b = Bins::new(cfg(20, 100));
        a.merge(&b);
    }

    #[test]
    fn zero_width_interval_at_bin_boundary_is_noop() {
        let mut b = Bins::new(cfg(10, 100));
        b.add_interval(SimTime(10), SimTime(10)); // exactly on a boundary
        b.add_interval(SimTime(0), SimTime(0));
        assert!(b.values().is_empty());
        assert_eq!(b.total(), 0);
    }

    #[test]
    fn interval_spanning_final_bin_boundary_conserves_total() {
        // Last real bin starts at 20 (max_bins = 3); the interval starts in
        // bin 1 and runs far past the clamp point.
        let mut b = Bins::new(cfg(10, 3));
        b.add_interval(SimTime(15), SimTime(45));
        assert_eq!(b.values(), &[0, 5, 25]);
        assert_eq!(b.total(), 30); // nothing lost at the clamp boundary
    }

    #[test]
    fn interval_entirely_past_the_clamp_lands_in_last_bin() {
        let mut b = Bins::new(cfg(10, 3));
        b.add_interval(SimTime(100), SimTime(160));
        assert_eq!(b.values(), &[0, 0, 60]);
    }

    #[test]
    fn merge_clamps_longer_source_into_final_bin() {
        // `other` legitimately has more bins than `self` allows; the excess
        // must fold into self's last bin instead of growing past max_bins.
        let mut a = Bins::new(cfg(10, 3));
        let mut b = Bins::new(cfg(10, 100));
        for i in 0..6u64 {
            b.add_at(SimTime(i * 10), 1);
        }
        assert_eq!(b.values().len(), 6);
        a.merge(&b);
        assert_eq!(a.values().len(), 3, "merge must respect max_bins");
        assert_eq!(a.values(), &[1, 1, 4]);
        assert_eq!(a.total(), b.total());
    }

    #[test]
    fn merge_from_empty_and_into_empty() {
        let mut a = Bins::new(cfg(10, 3));
        let empty = Bins::new(cfg(10, 3));
        a.merge(&empty);
        assert!(a.values().is_empty());
        let mut c = Bins::new(cfg(10, 3));
        let mut d = Bins::new(cfg(10, 3));
        d.add_at(SimTime(0), 2);
        c.merge(&d);
        assert_eq!(c.values(), &[2]);
    }

    #[test]
    fn merge_after_clamped_merge_keeps_invariant() {
        // Repeated merges through the clamp path must stay bounded.
        let mut a = Bins::new(cfg(10, 2));
        let mut b = Bins::new(cfg(10, 50));
        b.add_interval(SimTime(0), SimTime(100));
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.values().len(), 2);
        assert_eq!(a.total(), 200);
    }
}
