//! hrviz-lint — syntax-aware multi-pass workspace static analysis.
//!
//! The paper's comparison views are only meaningful because two runs of
//! the same configuration are byte-identical; PRs 2–3 made that a tested
//! contract (fault-schedule replay, parallel-vs-serial sweeps). This
//! crate keeps the contract *statically* — and, since PR 9, keeps three
//! more: the workspace's lock acquisition order is acyclic and no guard
//! outlives a blocking call, every event-handling `Lp` participates in
//! state saving, and the telemetry namespace cannot drift (write sites ↔
//! `hrviz_obs::METRICS` ↔ DESIGN.md).
//!
//! The analysis is a hand-rolled token-tree pass (no rustc plugin, no
//! registry access): [`source::SourceFile`] masks comments/strings,
//! [`tokens::TokenFile`] lexes the masked bytes and matches delimiters,
//! and the per-file passes in [`rules`], [`locks`] and [`counters`]
//! produce [`facts::FileFacts`] — the unit of the incremental cache.
//! Global passes (lock-graph cycles, counter drift) always re-run over
//! the collected facts, so cross-file rules stay correct even when every
//! per-file result came from the cache.
//!
//! ```text
//! cargo run -p hrviz-lint -- --check              # CI gate (human output)
//! cargo run -p hrviz-lint -- --check --format json
//! cargo run -p hrviz-lint -- --format sarif       # CI artifact
//! cargo run -p hrviz-lint -- --list-rules
//! cargo run -p hrviz-lint -- --fix-baseline       # drop stale entries
//! ```
//!
//! Findings are suppressed inline with `// lint:allow(rule, reason="…")`
//! (the reason is mandatory — an allow without one is itself a finding).
//! The checked-in `lint-baseline.json` must be empty: every surviving
//! entry is a `baseline_debt` finding and every entry whose code is gone
//! is a `stale_baseline` finding, and neither can be suppressed.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod cache;
pub mod counters;
pub mod diag;
pub mod facts;
pub mod locks;
pub mod rules;
pub mod sarif;
pub mod source;
pub mod tokens;

pub use baseline::{Baseline, BaselineEntry};
pub use cache::Cache;
pub use facts::{FileFacts, LockEdge, MetricWrite};
pub use rules::{check_file, rule, Finding, RuleInfo, RULES};
pub use source::SourceFile;
pub use tokens::TokenFile;

use hrviz_obs::Collector;
use rayon::IntoParallelRefIterator as _;
use std::io;
use std::path::{Path, PathBuf};

/// Everything one file contributes: the path-scoped rules, the lock
/// pass and the counter pass, all over one shared token tree.
pub fn analyze_file(src: &SourceFile) -> FileFacts {
    let tf = TokenFile::new(src);
    let mut findings = rules::check_file(src, &tf);
    let edges = locks::analyze(src, &tf, &mut findings);
    let writes = counters::collect_writes(src, &tf, &mut findings);
    FileFacts { findings, edges, writes }
}

/// Lint a single in-memory file. `path` is the workspace-relative path
/// the scoping rules see (e.g. `crates/pdes/src/engine.rs`). Includes
/// the intra-file lock-cycle pass; the cross-file passes (global lock
/// graph, counter drift) only run in [`lint_workspace_with`].
pub fn lint_text(path: &str, text: &str) -> Vec<Finding> {
    let src = SourceFile::new(path, text);
    let facts = analyze_file(&src);
    let mut findings = facts.findings;
    findings.extend(locks::cycle_findings(&facts.edges));
    sort_findings(&mut findings);
    findings
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
}

/// All files the workspace lint covers: the root `src/` plus every
/// `crates/*/src` tree. `vendor/` (external stand-ins), `target/` and
/// the crates' own `tests/`/`benches/` trees are out of scope — test
/// code is exempt from every rule anyway.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    // A wrong --root must fail loudly: an empty scan would let the CI
    // gate pass vacuously.
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no Cargo.toml)", root.display()),
        ));
    }
    let mut files = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> =
            std::fs::read_dir(&crates)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    files.sort();
    if files.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no Rust sources under {}", root.display()),
        ));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// What the driver did, for the CI warm-cache assertion and the report
/// footer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LintStats {
    /// Files in the scan set.
    pub files: usize,
    /// Files lexed + parsed this run (cache misses).
    pub parsed: usize,
    /// Files served from the incremental cache.
    pub cache_hits: usize,
}

/// A full workspace run: findings in (file, line) order plus stats.
pub struct LintRun {
    pub findings: Vec<Finding>,
    pub stats: LintStats,
}

/// Lint the whole workspace rooted at `root`.
///
/// Per-file analysis runs on the rayon pool; with `cache_path` set,
/// files whose FNV-1a content hash is unchanged skip parsing and feed
/// their cached [`FileFacts`] to the global passes. `obs` receives the
/// `lint/files_parsed` and `lint/cache_hits` counters (pass
/// [`Collector::disabled`] to record nothing).
///
/// Findings come back with `baselined` unset — apply a [`Baseline`]
/// next.
pub fn lint_workspace_with(
    root: &Path,
    cache_path: Option<&Path>,
    obs: &Collector,
) -> io::Result<LintRun> {
    let paths = workspace_files(root)?;
    let mut loaded: Vec<(String, String, u64)> = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let hash = cache::fnv1a(text.as_bytes());
        loaded.push((rel, text, hash));
    }

    let mut store = match cache_path {
        Some(p) => Cache::load(p),
        None => Cache::default(),
    };
    let mut facts: Vec<Option<FileFacts>> = Vec::with_capacity(loaded.len());
    let mut misses: Vec<usize> = Vec::new();
    for (i, (rel, _, hash)) in loaded.iter().enumerate() {
        match store.lookup(rel, *hash) {
            Some(hit) => facts.push(Some(hit.clone())),
            None => {
                facts.push(None);
                misses.push(i);
            }
        }
    }
    let computed: Vec<FileFacts> = misses
        .par_iter()
        .map(|&i| {
            let (rel, text, _) = &loaded[i];
            analyze_file(&SourceFile::new(rel, text))
        })
        .collect();
    for (&i, fresh) in misses.iter().zip(computed) {
        let (rel, _, hash) = &loaded[i];
        store.insert(rel.clone(), *hash, fresh.clone());
        facts[i] = Some(fresh);
    }
    let stats = LintStats {
        files: loaded.len(),
        parsed: misses.len(),
        cache_hits: loaded.len() - misses.len(),
    };
    obs.counter_add("lint/files_parsed", stats.parsed as u64);
    obs.counter_add("lint/cache_hits", stats.cache_hits as u64);
    if let Some(p) = cache_path {
        let live: Vec<&str> = loaded.iter().map(|(rel, _, _)| rel.as_str()).collect();
        store.retain_files(&|rel| live.contains(&rel));
        // A cache that fails to write is a slower next run, not an error.
        let _ = store.save(p);
    }

    // Global passes over the collected facts.
    let mut findings: Vec<Finding> = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut writes: Vec<MetricWrite> = Vec::new();
    for f in facts.into_iter().flatten() {
        findings.extend(f.findings);
        edges.extend(f.edges);
        writes.extend(f.writes);
    }
    findings.extend(locks::cycle_findings(&edges));
    let manifest: Vec<(&str, &str)> =
        hrviz_obs::METRICS.iter().map(|m| (m.name, m.kind.as_str())).collect();
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    let design_rows = counters::parse_design_rows(&design);
    let manifest_src = loaded
        .iter()
        .find(|(rel, _, _)| rel == "crates/obs/src/metrics.rs")
        .map(|(rel, text, _)| SourceFile::new(rel, text));
    findings.extend(counters::drift_findings(
        &writes,
        &manifest,
        &design_rows,
        manifest_src.as_ref(),
    ));

    sort_findings(&mut findings);
    Ok(LintRun { findings, stats })
}

/// [`lint_workspace_with`] with no cache and no telemetry — the simple
/// entry point tests use.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    lint_workspace_with(root, None, &Collector::disabled()).map(|r| r.findings)
}

/// The baseline meta-findings: every surviving entry is `baseline_debt`
/// (the baseline must drain to empty — fix the code or move to an inline
/// reasoned allow) and every entry matching nothing is `stale_baseline`
/// (its code is gone; run `--fix-baseline`). Neither can be suppressed
/// or baselined.
pub fn baseline_findings(baseline: &Baseline, findings: &[Finding]) -> Vec<Finding> {
    let mut out = Vec::new();
    for e in &baseline.entries {
        let covers =
            findings.iter().any(|f| e.rule == f.rule && e.file == f.file && e.snippet == f.snippet);
        out.push(Finding {
            rule: if covers { "baseline_debt" } else { "stale_baseline" },
            file: e.file.clone(),
            line: 1,
            snippet: e.snippet.clone(),
            message: if covers {
                format!(
                    "baseline entry grandfathers a live `{}` finding: fix it or carry an \
                     inline lint:allow({}, reason=\"…\") at the site",
                    e.rule, e.rule
                )
            } else {
                format!(
                    "stale baseline entry (`{}`): the code it covered is gone; \
                     run --fix-baseline",
                    e.rule
                )
            },
            baselined: false,
        });
    }
    out
}

/// Mark findings the baseline grandfathers. Meta-family findings
/// (`bad_suppression`, `stale_baseline`, `baseline_debt`) can not be
/// baselined: the escape hatches must always fail the gate.
pub fn apply_baseline(findings: &mut [Finding], baseline: &Baseline) {
    for f in findings.iter_mut() {
        let meta = rule(f.rule).is_some_and(|r| r.family == "meta");
        f.baselined = !meta && baseline.covers(f);
    }
}

/// Locate the workspace root: walk up from `start` to the first directory
/// holding both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
