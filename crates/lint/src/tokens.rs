//! Token-tree model the syntax-aware passes run against.
//!
//! A [`TokenFile`] is built over the *masked* bytes of a
//! [`crate::source::SourceFile`] (comments/strings/chars already blanked,
//! byte offsets preserved), so the lexer never sees literal contents but
//! every token's span is valid in the original text. On top of the flat
//! token list it derives:
//!
//! * `match_of` — for every `(`/`[`/`{` token the index of its matching
//!   close (and vice versa), from a single stack pass;
//! * `enclosing_brace` — for every token, the innermost `{` containing it
//!   (how lock scopes find "end of enclosing block");
//! * [`FnItem`]s — every `fn`, with its body token range and a qualified
//!   name (`Type::method` when it sits inside an `impl Type` block);
//! * [`ImplItem`]s — every `impl`, with the trait path (if any), the
//!   implementing type's last segment, and the body token range.
//!
//! This stays a *token* model, not an AST: it is exactly enough structure
//! for scope-accurate lock analysis and item-contract checks while
//! remaining a few hundred lines of dependency-free code that parses the
//! whole workspace in milliseconds.

use crate::source::SourceFile;

/// Token classes the passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (possibly with a type suffix: `3usize`).
    Num,
    /// `'a` in `&'a` position (kept distinct so it never looks like code).
    Lifetime,
    /// Single punctuation byte.
    Punct(u8),
    /// Opening delimiter: `(`, `[` or `{`.
    Open(u8),
    /// Closing delimiter: `)`, `]` or `}`.
    Close(u8),
}

/// One token with its byte span in the original text.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
}

/// A function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name (`handle`).
    pub name: String,
    /// `Type::name` inside an impl block, else the bare name.
    pub qualified: String,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// Token indices of the body `{` / `}` (absent for trait signatures).
    pub body: Option<(usize, usize)>,
}

/// An `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// Trait path segments for `impl Trait for Type` (empty for inherent).
    pub trait_path: Vec<String>,
    /// Last segment of the implementing type (`NetNode`).
    pub type_name: String,
    /// Token index of the `impl` keyword.
    pub kw: usize,
    /// Token indices of the body `{` / `}`.
    pub body: (usize, usize),
}

/// The tokenized file.
pub struct TokenFile {
    pub toks: Vec<Tok>,
    /// For delimiter tokens, the index of the matching delimiter;
    /// `usize::MAX` for everything else (and unbalanced delimiters).
    pub match_of: Vec<usize>,
    /// For every token, the index of the innermost enclosing `{` token
    /// (`usize::MAX` at top level).
    pub enclosing_brace: Vec<usize>,
    pub fns: Vec<FnItem>,
    pub impls: Vec<ImplItem>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl TokenFile {
    /// Tokenize `src.masked` and derive the structural views.
    pub fn new(src: &SourceFile) -> TokenFile {
        let toks = lex(&src.masked);
        let (match_of, enclosing_brace) = match_delims(&toks);
        let mut tf =
            TokenFile { toks, match_of, enclosing_brace, fns: Vec::new(), impls: Vec::new() };
        tf.impls = tf.find_impls(src);
        tf.fns = tf.find_fns(src);
        tf
    }

    /// The text of token `i` (idents/numbers survive masking; delimiter
    /// and punct text is reconstructed from the kind).
    pub fn text<'a>(&self, src: &'a SourceFile, i: usize) -> &'a str {
        let t = &self.toks[i];
        src.text.get(t.start..t.end).unwrap_or("")
    }

    /// Is token `i` the identifier `word`?
    pub fn is_ident(&self, src: &SourceFile, i: usize, word: &str) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokKind::Ident) && self.text(src, i) == word
    }

    /// Is token `i` the punctuation byte `p` (and, for `.`, not half of a
    /// `..` range)?
    pub fn is_punct(&self, i: usize, p: u8) -> bool {
        matches!(self.toks.get(i), Some(t) if t.kind == TokKind::Punct(p))
    }

    /// A lone `.` — method-call dot, not part of a `..` / `..=` range.
    pub fn is_method_dot(&self, i: usize) -> bool {
        self.is_punct(i, b'.')
            && !(i > 0 && self.is_punct(i - 1, b'.'))
            && !self.is_punct(i + 1, b'.')
    }

    /// For an `Open` token, the token index just past its `Close` (or
    /// `toks.len()` if unbalanced).
    pub fn after_group(&self, open: usize) -> usize {
        match self.match_of.get(open) {
            Some(&m) if m != usize::MAX => m + 1,
            _ => self.toks.len(),
        }
    }

    /// Every `impl` block with its trait/type naming.
    fn find_impls(&self, src: &SourceFile) -> Vec<ImplItem> {
        let mut out = Vec::new();
        for kw in 0..self.toks.len() {
            if !self.is_ident(src, kw, "impl") {
                continue;
            }
            let mut i = kw + 1;
            i = self.skip_generics(i);
            let Some((first_path, after_first)) = self.read_type_path(src, i) else { continue };
            i = after_first;
            let (trait_path, type_name) = if self.is_ident(src, i, "for") {
                let Some((ty, after_ty)) = self.read_type_path(src, i + 1) else { continue };
                i = after_ty;
                (first_path, ty.last().cloned().unwrap_or_default())
            } else {
                (Vec::new(), first_path.last().cloned().unwrap_or_default())
            };
            // Skip a where clause: everything up to the body `{`.
            while i < self.toks.len() && !matches!(self.toks[i].kind, TokKind::Open(b'{')) {
                i += 1;
            }
            if i >= self.toks.len() {
                continue;
            }
            let close = self.match_of[i];
            if close == usize::MAX {
                continue;
            }
            out.push(ImplItem { trait_path, type_name, kw, body: (i, close) });
        }
        out
    }

    /// Every `fn`, qualified by its enclosing impl (if any).
    fn find_fns(&self, src: &SourceFile) -> Vec<FnItem> {
        let mut out = Vec::new();
        for kw in 0..self.toks.len() {
            if !self.is_ident(src, kw, "fn") {
                continue;
            }
            let Some(name_tok) = self.toks.get(kw + 1) else { continue };
            if name_tok.kind != TokKind::Ident {
                continue; // `fn(` pointer type
            }
            let name = self.text(src, kw + 1).to_string();
            // Walk the signature: jump over `(..)` / `[..]` groups, stop at
            // the body `{` or a trailing `;` (trait method signature).
            let mut i = kw + 2;
            let mut body = None;
            while i < self.toks.len() {
                match self.toks[i].kind {
                    TokKind::Open(b'{') => {
                        let close = self.match_of[i];
                        if close != usize::MAX {
                            body = Some((i, close));
                        }
                        break;
                    }
                    TokKind::Open(_) => i = self.after_group(i),
                    TokKind::Punct(b';') | TokKind::Close(_) => break,
                    _ => i += 1,
                }
            }
            let qualified = match self.impls.iter().find(|im| im.body.0 < kw && kw < im.body.1) {
                Some(im) if !im.type_name.is_empty() => format!("{}::{name}", im.type_name),
                _ => name.clone(),
            };
            out.push(FnItem { name, qualified, kw, body });
        }
        out
    }

    /// From token `i`, read `Seg::Seg<..>::Seg` returning the segment
    /// names and the index just past the path.
    fn read_type_path(&self, src: &SourceFile, mut i: usize) -> Option<(Vec<String>, usize)> {
        // `impl &mut Type` / `impl &Type` headers: skip the sigils.
        while self.is_punct(i, b'&') || self.is_ident(src, i, "mut") || self.is_ident(src, i, "dyn")
        {
            i += 1;
        }
        let mut segs = Vec::new();
        loop {
            match self.toks.get(i) {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(self.text(src, i).to_string());
                    i += 1;
                }
                _ => break,
            }
            i = self.skip_generics(i);
            if self.is_punct(i, b':') && self.is_punct(i + 1, b':') {
                i += 2;
            } else {
                break;
            }
        }
        if segs.is_empty() {
            None
        } else {
            Some((segs, i))
        }
    }

    /// From token `i`, skip a balanced `<..>` group if one starts there.
    /// `(`/`[` groups inside jump via `match_of`, so `->` inside a
    /// parenthesized fn type cannot unbalance the count.
    fn skip_generics(&self, mut i: usize) -> usize {
        if !self.is_punct(i, b'<') {
            return i;
        }
        let mut depth = 0usize;
        while i < self.toks.len() {
            match self.toks[i].kind {
                TokKind::Punct(b'<') => {
                    depth += 1;
                    i += 1;
                }
                TokKind::Punct(b'>') => {
                    depth -= 1;
                    i += 1;
                    if depth == 0 {
                        return i;
                    }
                }
                TokKind::Open(_) => i = self.after_group(i),
                _ => i += 1,
            }
        }
        i
    }
}

/// Flat lex of the masked bytes. Strings/comments are already spaces, so
/// the only classes left are idents, numbers, lifetimes, delimiters and
/// single punctuation bytes.
fn lex(masked: &[u8]) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut i = 0;
    while i < masked.len() {
        let b = masked[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_digit() {
            let start = i;
            while i < masked.len() && (is_ident_byte(masked[i]) || masked[i] == b'.') {
                // `0..n`: the range dots are not part of the number.
                if masked[i] == b'.' && masked.get(i + 1) == Some(&b'.') {
                    break;
                }
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Num, start, end: i });
        } else if is_ident_byte(b) {
            let start = i;
            while i < masked.len() && is_ident_byte(masked[i]) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, start, end: i });
        } else if b == b'\'' && masked.get(i + 1).copied().is_some_and(is_ident_byte) {
            let start = i;
            i += 1;
            while i < masked.len() && is_ident_byte(masked[i]) {
                i += 1;
            }
            toks.push(Tok { kind: TokKind::Lifetime, start, end: i });
        } else {
            let kind = match b {
                b'(' | b'[' | b'{' => TokKind::Open(b),
                b')' | b']' | b'}' => TokKind::Close(b),
                _ => TokKind::Punct(b),
            };
            toks.push(Tok { kind, start: i, end: i + 1 });
            i += 1;
        }
    }
    toks
}

/// One stack pass: matching-delimiter map + innermost-enclosing-brace map.
fn match_delims(toks: &[Tok]) -> (Vec<usize>, Vec<usize>) {
    let mut match_of = vec![usize::MAX; toks.len()];
    let mut enclosing = vec![usize::MAX; toks.len()];
    let mut stack: Vec<(usize, u8)> = Vec::new();
    let mut brace_stack: Vec<usize> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        enclosing[i] = brace_stack.last().copied().unwrap_or(usize::MAX);
        match t.kind {
            TokKind::Open(b) => {
                stack.push((i, b));
                if b == b'{' {
                    brace_stack.push(i);
                }
            }
            TokKind::Close(b) => {
                let open = closes(b);
                // Pop unbalanced entries (defensive: masked text is real
                // rust, but the linter must never panic on torn input).
                while let Some(&(_, ob)) = stack.last() {
                    if ob == open {
                        break;
                    }
                    stack.pop();
                }
                if let Some((oi, ob)) = stack.pop() {
                    match_of[oi] = i;
                    match_of[i] = oi;
                    if ob == b'{' {
                        brace_stack.pop();
                        // The close itself belongs to the outer scope.
                        enclosing[i] = brace_stack.last().copied().unwrap_or(usize::MAX);
                    }
                }
            }
            _ => {}
        }
    }
    (match_of, enclosing)
}

fn closes(b: u8) -> u8 {
    match b {
        b')' => b'(',
        b']' => b'[',
        _ => b'{',
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tf(text: &str) -> (SourceFile, TokenFile) {
        let src = SourceFile::new("crates/x/src/lib.rs", text);
        let t = TokenFile::new(&src);
        (src, t)
    }

    #[test]
    fn nesting_matches_across_mixed_delimiters() {
        let (_, t) = tf("fn f(a: [u8; 4]) { if x { y(z[0]) } }");
        for (i, tok) in t.toks.iter().enumerate() {
            if matches!(tok.kind, TokKind::Open(_)) {
                let m = t.match_of[i];
                assert_ne!(m, usize::MAX, "open at {i} unmatched");
                assert_eq!(t.match_of[m], i, "close does not point back");
            }
        }
    }

    #[test]
    fn strings_and_comments_produce_no_tokens() {
        // Masking parity with the lexical scanner: a brace inside a string
        // or comment must not open a scope.
        let (_, t) = tf("fn f() { let s = \"{ not a scope (\"; /* } */ }");
        let opens: Vec<usize> = t
            .toks
            .iter()
            .enumerate()
            .filter(|(_, tok)| matches!(tok.kind, TokKind::Open(b'{')))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(opens.len(), 1, "only the fn body opens a brace scope");
        assert_ne!(t.match_of[opens[0]], usize::MAX);
        assert_eq!(t.fns.len(), 1);
        assert!(t.fns[0].body.is_some());
    }

    #[test]
    fn fn_extraction_qualifies_by_impl_type() {
        let (_, t) = tf("impl<P: Proto> Lp<P> for NetNode<P> {\n  fn on_event(&mut self) {}\n}\n\
                         impl NetNode<u8> { fn helper() {} }\nfn free() {}");
        let names: Vec<&str> = t.fns.iter().map(|f| f.qualified.as_str()).collect();
        assert_eq!(names, ["NetNode::on_event", "NetNode::helper", "free"]);
        assert_eq!(t.impls.len(), 2);
        assert_eq!(t.impls[0].trait_path, vec!["Lp".to_string()]);
        assert_eq!(t.impls[0].type_name, "NetNode");
        assert!(t.impls[1].trait_path.is_empty());
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let (_, t) = tf("trait T { fn required(&self); fn provided(&self) { } }");
        assert_eq!(t.fns.len(), 2);
        assert!(t.fns[0].body.is_none());
        assert!(t.fns[1].body.is_some());
    }

    #[test]
    fn enclosing_brace_tracks_innermost_block() {
        let (src, t) = tf("fn f() { let a = 1; { let b = 2; } let c = 3; }");
        let idx_of = |word: &str| {
            (0..t.toks.len()).find(|&i| t.is_ident(&src, i, word)).expect("token present")
        };
        let outer = t.enclosing_brace[idx_of("a")];
        let inner = t.enclosing_brace[idx_of("b")];
        assert_ne!(outer, inner);
        assert_eq!(t.enclosing_brace[idx_of("c")], outer);
        assert_eq!(t.enclosing_brace[inner], outer, "inner block nests in the fn body");
    }

    #[test]
    fn method_dot_excludes_ranges() {
        let (_, t) = tf("fn f() { a.lock(); for i in 0..n.len() {} }");
        let dots: Vec<usize> = (0..t.toks.len()).filter(|&i| t.is_punct(i, b'.')).collect();
        let method_dots: Vec<usize> =
            dots.iter().copied().filter(|&i| t.is_method_dot(i)).collect();
        // `a.lock` and `n.len` are method dots; the two range dots are not.
        assert_eq!(dots.len(), 4);
        assert_eq!(method_dots.len(), 2);
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let (_, t) = tf("fn f() { for i in 0..10 {} }");
        let nums: Vec<TokKind> =
            t.toks.iter().filter(|t| matches!(t.kind, TokKind::Num)).map(|t| t.kind).collect();
        assert_eq!(nums.len(), 2, "0 and 10 lex separately around the range");
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        let (_, t) = tf("fn f( { ) } ] }");
        assert!(!t.toks.is_empty());
    }
}
