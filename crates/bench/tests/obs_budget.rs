//! The disabled-collector overhead budget (≤2% of simulator event cost),
//! asserted as a unit test so a regression fails CI rather than only
//! showing up in the `obs_overhead` criterion bench.

use hrviz_network::{
    DragonflyConfig, MsgInjection, NetworkSpec, RoutingAlgorithm, Simulation, TerminalId,
};
use hrviz_obs::Collector;
use hrviz_pdes::SimTime;
use std::hint::black_box;
use std::time::Instant;

/// Per-event wall cost of the packet simulator with a disabled collector
/// attached (the production default), in seconds.
fn per_event_cost() -> f64 {
    let spec = NetworkSpec::new(DragonflyConfig::canonical(2)) // 72 terminals
        .with_routing(RoutingAlgorithm::adaptive_default());
    let mut sim = Simulation::new(spec).with_collector(Collector::disabled());
    for src in 0..72u32 {
        for k in 0..4u64 {
            sim.inject(MsgInjection {
                time: SimTime(k * 1000),
                src: TerminalId(src),
                dst: TerminalId((src + 31) % 72),
                bytes: 4096,
                job: 0,
            });
        }
    }
    let t0 = Instant::now();
    let run = sim.run();
    let wall = t0.elapsed().as_secs_f64();
    assert!(run.events_processed > 1_000, "workload too small to time");
    wall / run.events_processed as f64
}

/// Best-of-four per-iteration time of `f` over a million iterations.
fn timed(mut f: impl FnMut(u64)) -> f64 {
    const N: u64 = 1_000_000;
    let mut best = f64::INFINITY;
    for _ in 0..4 {
        let t0 = Instant::now();
        for i in 0..N {
            f(i);
        }
        best = best.min(t0.elapsed().as_secs_f64() / N as f64);
    }
    best
}

/// Cost of the telemetry calls a per-event instrumentation site would pay
/// with a disabled collector: the enabled-check branch plus a counter op.
/// (The engine itself does even less — it reports only at run boundaries.)
/// Loop/black_box overhead is measured separately and subtracted so the
/// number isolates the collector, not the harness.
fn per_disabled_op_cost() -> f64 {
    let c = Collector::disabled();
    let baseline = timed(|i| {
        black_box(i);
        black_box("pdes/events_processed");
    });
    let ops = timed(|i| {
        black_box(c.is_enabled());
        c.counter_add(black_box("pdes/events_processed"), black_box(i));
    });
    (ops - baseline).max(0.0)
}

#[test]
fn disabled_collector_overhead_within_two_percent_budget() {
    let event = per_event_cost();
    let op = per_disabled_op_cost();
    let ratio = op / event;
    // The budget from the design: a disabled collector may cost at most 2%
    // of the per-event simulation work. In practice the ratio is well under
    // 0.1% — a disabled op is a single branch with no clock read — so this
    // only trips if someone puts real work on the disabled path.
    assert!(
        ratio <= 0.02,
        "disabled telemetry ops cost {:.3e}s vs {:.3e}s per event ({:.2}% > 2% budget)",
        op,
        event,
        100.0 * ratio
    );
}
