// Fixture: Result plumbing, unwrap_or fallbacks, debug_assert, a method
// merely *named* expect_byte, and test-only unwraps must all pass.
pub fn load(path: &str) -> Result<u32, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let n: u32 = text.trim().parse().map_err(|_| "not a number".to_string())?;
    debug_assert!(n < 1_000_000);
    Ok(text.len() as u32 + n.checked_sub(1).unwrap_or(0))
}

struct Reader;
impl Reader {
    fn expect_byte(&mut self, _b: u8) -> Result<(), String> {
        Ok(())
    }
    fn go(&mut self) -> Result<(), String> {
        self.expect_byte(b'{')
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_ok_in_tests() {
        let v: Result<u32, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
        let s = "a panic! in a test string";
        assert!(s.contains("panic!"));
    }
}
