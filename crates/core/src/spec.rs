//! Projection-view specifications (paper §IV-B2, Fig. 4a / Fig. 5).
//!
//! A specification is a stack of levels (rings). Each level *projects* one
//! entity kind, *aggregates* it by attribute fields, optionally *filters*
//! and re-*bins* it, and maps metrics onto visual encodings. The plot type
//! is inferred from the number of encodings (§IV-B2): 1 → 1-D heatmap,
//! 2 → bar chart, 3 → 2-D heatmap, 4 → scatter plot.

use crate::color::ColorScale;
use crate::dataset::DataSet;
use crate::entity::{EntityKind, Field};

/// Visual-encoding assignment for one level.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct VMap {
    /// Color encoding.
    pub color: Option<Field>,
    /// Size encoding.
    pub size: Option<Field>,
    /// X (angular) position encoding.
    pub x: Option<Field>,
    /// Y (radial) position encoding.
    pub y: Option<Field>,
}

impl VMap {
    /// Number of active encodings.
    pub fn count(&self) -> usize {
        [self.color, self.size, self.x, self.y].iter().filter(|e| e.is_some()).count()
    }

    /// All (encoding name, field) pairs.
    pub fn entries(&self) -> Vec<(&'static str, Field)> {
        let mut out = Vec::new();
        if let Some(f) = self.color {
            out.push(("color", f));
        }
        if let Some(f) = self.size {
            out.push(("size", f));
        }
        if let Some(f) = self.x {
            out.push(("x", f));
        }
        if let Some(f) = self.y {
            out.push(("y", f));
        }
        out
    }
}

/// Plot type, inferred from the encoding count (§IV-B2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlotKind {
    /// One encoding (color): 1-D heatmap ring.
    Heatmap1D,
    /// Two encodings (color + size): bar-chart ring.
    Bar,
    /// Three encodings (color + x + y): 2-D heatmap ring.
    Heatmap2D,
    /// Four encodings: scatter ring.
    Scatter,
}

impl VMap {
    /// Infer the plot type.
    pub fn plot_kind(&self) -> PlotKind {
        match self.count() {
            0 | 1 => PlotKind::Heatmap1D,
            2 => PlotKind::Bar,
            3 => PlotKind::Heatmap2D,
            _ => PlotKind::Scatter,
        }
    }
}

/// Inclusive range filter on an attribute (Fig. 5b:
/// `filter: { group_id: [0, 8] }`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FilterClause {
    /// Field to test.
    pub field: Field,
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
}

impl FilterClause {
    /// Whether `v` passes.
    pub fn accepts(&self, v: f64) -> bool {
        v >= self.min && v <= self.max
    }
}

/// One ring of a projection view.
#[derive(Clone, Debug)]
pub struct LevelSpec {
    /// Entity kind to project.
    pub entity: EntityKind,
    /// Group-by fields (empty = individual entities).
    pub aggregate: Vec<Field>,
    /// Row filters applied before aggregation.
    pub filter: Vec<FilterClause>,
    /// Binned-aggregation cap (`maxBins`, §IV-B3).
    pub max_bins: Option<usize>,
    /// Visual mapping.
    pub vmap: VMap,
    /// Color scale: sequential stops for continuous metrics, palette for
    /// the categorical `workload` field.
    pub colors: ColorScale,
    /// Draw item borders (Fig. 5b sets `border: false`).
    pub border: bool,
}

impl LevelSpec {
    /// A level projecting `entity`, to be refined with builder calls.
    pub fn new(entity: EntityKind) -> LevelSpec {
        LevelSpec {
            entity,
            aggregate: Vec::new(),
            filter: Vec::new(),
            max_bins: None,
            vmap: VMap::default(),
            colors: ColorScale::default_sequential(),
            border: true,
        }
    }

    /// Builder: group-by fields.
    pub fn aggregate(mut self, fields: &[Field]) -> Self {
        self.aggregate = fields.to_vec();
        self
    }

    /// Builder: add a filter clause.
    pub fn filter(mut self, field: Field, min: f64, max: f64) -> Self {
        self.filter.push(FilterClause { field, min, max });
        self
    }

    /// Builder: binned-aggregation cap.
    pub fn max_bins(mut self, cap: usize) -> Self {
        self.max_bins = Some(cap);
        self
    }

    /// Builder: color encoding.
    pub fn color(mut self, f: Field) -> Self {
        self.vmap.color = Some(f);
        self
    }

    /// Builder: size encoding.
    pub fn size(mut self, f: Field) -> Self {
        self.vmap.size = Some(f);
        self
    }

    /// Builder: x encoding.
    pub fn x(mut self, f: Field) -> Self {
        self.vmap.x = Some(f);
        self
    }

    /// Builder: y encoding.
    pub fn y(mut self, f: Field) -> Self {
        self.vmap.y = Some(f);
        self
    }

    /// Builder: color scale from names.
    pub fn colors(mut self, names: &[&str]) -> Self {
        self.colors = ColorScale::from_names(names);
        self
    }

    /// Builder: toggle borders.
    pub fn border(mut self, on: bool) -> Self {
        self.border = on;
        self
    }
}

/// Bundled-link ribbons in the center of the radial view (§IV-B1).
#[derive(Clone, Debug)]
pub struct RibbonSpec {
    /// Which link class to bundle.
    pub entity: EntityKind,
    /// Size (ribbon width) metric — typically traffic.
    pub size: Option<Field>,
    /// Color metric — typically saturation time (the ribbon shows the
    /// maximum of its two ends' aggregate).
    pub color: Option<Field>,
    /// Color scale.
    pub colors: ColorScale,
}

impl RibbonSpec {
    /// Ribbons over `entity` (must be a link kind).
    pub fn new(entity: EntityKind) -> RibbonSpec {
        assert!(
            matches!(entity, EntityKind::LocalLink | EntityKind::GlobalLink),
            "ribbons bundle links, got {entity}"
        );
        RibbonSpec {
            entity,
            size: Some(Field::Traffic),
            color: Some(Field::SatTime),
            colors: ColorScale::default_sequential(),
        }
    }

    /// Builder: size metric.
    pub fn size(mut self, f: Field) -> Self {
        self.size = Some(f);
        self
    }

    /// Builder: color metric.
    pub fn color(mut self, f: Field) -> Self {
        self.color = Some(f);
        self
    }

    /// Builder: color scale.
    pub fn colors(mut self, names: &[&str]) -> Self {
        self.colors = ColorScale::from_names(names);
        self
    }
}

/// A full projection-view specification.
#[derive(Clone, Debug)]
pub struct ProjectionSpec {
    /// Rings, innermost first.
    pub levels: Vec<LevelSpec>,
    /// Optional center ribbons, bundled between the first level's groups.
    pub ribbons: Option<RibbonSpec>,
    /// Optional metric weighting the first ring's angular spans (Fig. 13:
    /// arc size ∝ per-job global traffic); equal spans when `None`.
    pub arc_weight: Option<Field>,
}

/// Validation failure for a specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

impl ProjectionSpec {
    /// A spec with the given levels and no ribbons.
    pub fn new(levels: Vec<LevelSpec>) -> ProjectionSpec {
        ProjectionSpec { levels, ribbons: None, arc_weight: None }
    }

    /// Builder: ribbons.
    pub fn ribbons(mut self, r: RibbonSpec) -> Self {
        self.ribbons = Some(r);
        self
    }

    /// Builder: arc weighting metric.
    pub fn arc_weight(mut self, f: Field) -> Self {
        self.arc_weight = Some(f);
        self
    }

    /// Check field/entity compatibility before building a view.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.levels.is_empty() {
            return Err(SpecError("a projection needs at least one level".into()));
        }
        for (i, lv) in self.levels.iter().enumerate() {
            for f in &lv.aggregate {
                if !f.is_attribute() {
                    return Err(SpecError(format!("level {i}: cannot aggregate by metric {f}")));
                }
                if !DataSet::has_field(lv.entity, *f) {
                    return Err(SpecError(format!("level {i}: {} has no field {f}", lv.entity)));
                }
            }
            for c in &lv.filter {
                if !DataSet::has_field(lv.entity, c.field) {
                    return Err(SpecError(format!(
                        "level {i}: {} has no field {} (filter)",
                        lv.entity, c.field
                    )));
                }
            }
            for (enc, f) in lv.vmap.entries() {
                if !DataSet::has_field(lv.entity, f) {
                    return Err(SpecError(format!(
                        "level {i}: {} has no field {f} (vmap.{enc})",
                        lv.entity
                    )));
                }
            }
        }
        if let Some(r) = &self.ribbons {
            let ring0 = &self.levels[0];
            for f in &ring0.aggregate {
                if f.dst_counterpart().is_none() {
                    return Err(SpecError(format!(
                        "ribbons need dst counterparts for ring-0 field {f}"
                    )));
                }
            }
            for f in [r.size, r.color].into_iter().flatten() {
                if !DataSet::has_field(r.entity, f) {
                    return Err(SpecError(format!("{} has no field {f} (ribbons)", r.entity)));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_kind_inference_matches_paper() {
        let mut v = VMap::default();
        assert_eq!(v.plot_kind(), PlotKind::Heatmap1D);
        v.color = Some(Field::SatTime);
        assert_eq!(v.plot_kind(), PlotKind::Heatmap1D);
        v.size = Some(Field::Traffic);
        assert_eq!(v.plot_kind(), PlotKind::Bar);
        v.x = Some(Field::AvgHops);
        assert_eq!(v.plot_kind(), PlotKind::Heatmap2D);
        v.y = Some(Field::DataSize);
        assert_eq!(v.plot_kind(), PlotKind::Scatter);
        assert_eq!(v.count(), 4);
    }

    #[test]
    fn filter_clause_is_inclusive() {
        let c = FilterClause { field: Field::GroupId, min: 0.0, max: 8.0 };
        assert!(c.accepts(0.0));
        assert!(c.accepts(8.0));
        assert!(!c.accepts(8.5));
    }

    #[test]
    fn builder_assembles_fig4_levels() {
        // Fig. 4: global-link bars, terminal heatmap, terminal scatter.
        let spec = ProjectionSpec::new(vec![
            LevelSpec::new(EntityKind::GlobalLink)
                .aggregate(&[Field::RouterRank, Field::RouterPort])
                .color(Field::SatTime)
                .size(Field::Traffic),
            LevelSpec::new(EntityKind::Terminal)
                .aggregate(&[Field::RouterRank, Field::RouterPort])
                .color(Field::BusyTime),
            LevelSpec::new(EntityKind::Terminal)
                .color(Field::Workload)
                .size(Field::AvgLatency)
                .x(Field::AvgHops)
                .y(Field::DataSize)
                .colors(&["green", "orange", "brown"]),
        ])
        .ribbons(RibbonSpec::new(EntityKind::LocalLink));
        assert!(spec.validate().is_ok());
        assert_eq!(spec.levels[0].vmap.plot_kind(), PlotKind::Bar);
        assert_eq!(spec.levels[1].vmap.plot_kind(), PlotKind::Heatmap1D);
        assert_eq!(spec.levels[2].vmap.plot_kind(), PlotKind::Scatter);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let spec =
            ProjectionSpec::new(vec![LevelSpec::new(EntityKind::Router).color(Field::AvgLatency)]);
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("avg_latency"));

        let spec = ProjectionSpec::new(vec![
            LevelSpec::new(EntityKind::Terminal).aggregate(&[Field::Traffic])
        ]);
        assert!(spec.validate().is_err());

        assert!(ProjectionSpec::new(vec![]).validate().is_err());
    }

    #[test]
    fn validation_rejects_ribbon_fields_without_dst() {
        let spec = ProjectionSpec::new(vec![LevelSpec::new(EntityKind::Terminal)
            .aggregate(&[Field::TerminalId])
            .color(Field::SatTime)])
        .ribbons(RibbonSpec::new(EntityKind::LocalLink));
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("dst counterparts"));
    }

    #[test]
    #[should_panic(expected = "ribbons bundle links")]
    fn ribbons_require_link_entity() {
        RibbonSpec::new(EntityKind::Terminal);
    }
}
