// Fixture: panicking constructs in error-boundary code must be flagged.
pub fn load(path: &str) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    let n: u32 = text.trim().parse().expect("a number");
    if n > 100 {
        panic!("too large");
    }
    match n {
        0 => unreachable!(),
        _ => text,
    }
}
